//! # Asynchronous Resource Discovery
//!
//! A full Rust reproduction of **“Asynchronous Resource Discovery”** by
//! Ittai Abraham and Danny Dolev (PODC 2003): resource discovery on
//! knowledge graphs in asynchronous networks, with message-optimal
//! algorithms for the Oblivious, Bounded and Ad-hoc problem variants, the
//! paper's two lower-bound constructions as executable adversaries, and a
//! benchmark harness regenerating every theorem and lemma as an empirical
//! table.
//!
//! This crate is an umbrella that re-exports the workspace members:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `ard-core` | the paper's algorithms (§4, §4.5, §6) |
//! | [`netsim`] | `ard-netsim` | asynchronous network simulator substrate |
//! | [`graph`] | `ard-graph` | knowledge graphs, connectivity, generators |
//! | [`union_find`] | `ard-union-find` | Tarjan union-find + inverse Ackermann |
//! | [`baselines`] | `ard-baselines` | Name-Dropper, flooding, max-id election |
//! | [`lower_bounds`] | `ard-lower-bounds` | Theorem 1 adversary, Theorem 2 reduction |
//! | [`overlay`] | `ard-overlay` | Chord-style DHT bootstrapped from discovery |
//!
//! # Quickstart
//!
//! ```
//! use asynchronous_resource_discovery::core::{Discovery, Variant};
//! use asynchronous_resource_discovery::graph::gen;
//! use asynchronous_resource_discovery::netsim::RandomScheduler;
//!
//! // 64 peers, each initially knowing a few others (weakly connected).
//! let graph = gen::random_weakly_connected(64, 128, 42);
//!
//! // Run the Ad-hoc variant under a randomized asynchronous schedule.
//! let mut discovery = Discovery::new(&graph, Variant::AdHoc);
//! let mut sched = RandomScheduler::seeded(7);
//! let outcome = discovery.run_all(&mut sched)?;
//!
//! // Exactly one leader; every node can reach it; it knows everyone.
//! assert_eq!(outcome.leaders.len(), 1);
//! discovery.check_requirements(&graph).unwrap();
//! println!(
//!     "discovered 64 peers in {} messages / {} bits",
//!     outcome.metrics.total_messages(),
//!     outcome.metrics.total_bits(),
//! );
//! # Ok::<(), asynchronous_resource_discovery::netsim::LivelockError>(())
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and experiment index, and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ard_baselines as baselines;
pub use ard_core as core;
pub use ard_graph as graph;
pub use ard_lower_bounds as lower_bounds;
pub use ard_netsim as netsim;
pub use ard_overlay as overlay;
pub use ard_union_find as union_find;
