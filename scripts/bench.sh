#!/usr/bin/env bash
# Runs the engine-throughput and explorer-scaling benches and rewrites
# BENCH_throughput.json + BENCH_explore.json in one step, from the repo root:
#
#   scripts/bench.sh            # full sweep (n = 256 ... 1048576; criterion
#                               # covers the small sizes, the JSON the full tail)
#   scripts/bench.sh --quick    # tiny sweep, for smoke-testing the harness
#
# Extra flags are passed through to the tables binary (e.g. --jobs N).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench --offline -p ard-bench --bench throughput
cargo bench --offline -p ard-bench --bench explore
cargo run --offline --release -p ard-bench --bin tables -- \
    --bench-throughput BENCH_throughput.json "$@"
cargo run --offline --release -p ard-bench --bin tables -- \
    --bench-explore BENCH_explore.json "$@"
