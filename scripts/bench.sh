#!/usr/bin/env bash
# Runs the engine-throughput and explorer-scaling benches and rewrites
# BENCH_throughput.json + BENCH_explore.json in one step, from the repo root:
#
#   scripts/bench.sh            # full sweep (n = 256 ... 1048576 plus the
#                               # multicore sharded sweep; criterion covers
#                               # the small sizes, the JSON the full tail)
#   scripts/bench.sh --quick    # dense-grid sweep only (n <= 4096), skips
#                               # criterion and the sharded sweep: seconds,
#                               # for smoke-testing the harness. Writes to
#                               # target/ so the checked-in full-sweep JSON
#                               # is never clobbered by a partial run. See
#                               # docs/testing.md for measured runtimes.
#
# Extra flags are passed through to the tables binary (e.g. --jobs N).
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
for arg in "$@"; do
    [[ "$arg" == "--quick" ]] && quick=1
done

throughput_json=BENCH_throughput.json
explore_json=BENCH_explore.json
if [[ "$quick" == 0 ]]; then
    cargo bench --offline -p ard-bench --bench throughput
    cargo bench --offline -p ard-bench --bench explore
else
    mkdir -p target
    throughput_json=target/BENCH_throughput.quick.json
    explore_json=target/BENCH_explore.quick.json
fi
cargo run --offline --release -p ard-bench --bin tables -- \
    --bench-throughput "$throughput_json" "$@"
cargo run --offline --release -p ard-bench --bin tables -- \
    --bench-explore "$explore_json" "$@"
