#!/usr/bin/env bash
# Tier-1 verification, from the repo root:
#
#   scripts/verify.sh
#
# Runs the build + test + lint gate from ROADMAP.md, then a small bounded
# `ard explore` run twice with a fixed budget and seed, asserting the two
# runs are byte-identical (the explorer is deterministic) and clean (no
# violation on a healthy build). See docs/testing.md for the tiers.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

explore=(cargo run --offline --release -p ard-cli --bin ard -- \
    explore --topology random:n=12,extra=16 --budget 16 --depth 3 --seed 7)
a="$("${explore[@]}")"
b="$("${explore[@]}")"
if [[ "$a" != "$b" ]]; then
    echo "verify: explore smoke run is not deterministic" >&2
    diff <(printf '%s\n' "$a") <(printf '%s\n' "$b") >&2 || true
    exit 1
fi
if ! grep -q "no violation found" <<<"$a"; then
    echo "verify: explore smoke run reported a violation:" >&2
    printf '%s\n' "$a" >&2
    exit 1
fi
echo "verify: OK (tier-1 green, explore smoke deterministic and clean)"
