#!/usr/bin/env bash
# Tier-1 verification, from the repo root:
#
#   scripts/verify.sh
#
# Runs the build + test + lint gate from ROADMAP.md, then a small bounded
# `ard explore` run twice with a fixed budget and seed, asserting the two
# runs are byte-identical (the explorer is deterministic) and clean (no
# violation on a healthy build), then the same exploration at --jobs 4
# (parallel search must be byte-identical to sequential) and a
# checkpoint/fork snapshot-equivalence run, then a chaos smoke: one seeded lossy
# discovery run per variant, diffed against the pinned snapshot
# scripts/chaos-smoke.snapshot (regenerate it with
# scripts/verify.sh --regen-chaos after an intentional engine change and
# review the diff), then a Byzantine smoke: the explorer must find and
# shrink the planted equivocation bug under a one-traitor plan, and a
# seeded traitor + churn run must match its pinned guarantee-survival
# report in scripts/byzantine-smoke.snapshot (regenerate with
# --regen-byzantine), then a DPOR smoke: the sleep-set-reduced DFS
# (--reduce) must find the same planted violations the unreduced DFS
# finds on the racy and equivocation fixtures, and its output must match
# the pinned snapshot scripts/dpor-smoke.snapshot (regenerate with
# --regen-dpor). See docs/testing.md for the tiers.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

explore=(cargo run --offline --release -p ard-cli --bin ard -- \
    explore --topology random:n=12,extra=16 --budget 16 --depth 3 --seed 7)
a="$("${explore[@]}")"
b="$("${explore[@]}")"
if [[ "$a" != "$b" ]]; then
    echo "verify: explore smoke run is not deterministic" >&2
    diff <(printf '%s\n' "$a") <(printf '%s\n' "$b") >&2 || true
    exit 1
fi
if ! grep -q "no violation found" <<<"$a"; then
    echo "verify: explore smoke run reported a violation:" >&2
    printf '%s\n' "$a" >&2
    exit 1
fi

# Parallel search must leave the output byte-identical to sequential.
p="$("${explore[@]}" --jobs 4)"
if [[ "$a" != "$p" ]]; then
    echo "verify: explore --jobs 4 diverged from the sequential run" >&2
    diff <(printf '%s\n' "$a") <(printf '%s\n' "$p") >&2 || true
    exit 1
fi

# Checkpoint/fork prefix reuse self-check: every resumed snapshot is
# re-verified against a from-scratch replay (panics on divergence).
snap_out="$(mktemp /tmp/ard-verify-snapshots.XXXXXX)"
cargo run --offline --release -p ard-cli --bin ard -- \
    explore --system racy:3 --budget 64 --depth 6 --seed 3 \
    --jobs 4 --check-snapshots --out "$snap_out" > /dev/null
rm -f "$snap_out"

# Chaos smoke: one seeded lossy/crashy run per variant, byte-compared
# against the pinned snapshot (everything is seeded, so the output is
# deterministic down to the metrics table).
chaos() {
    local variant
    for variant in oblivious bounded adhoc; do
        echo "=== chaos $variant ==="
        cargo run --offline --release -p ard-cli --bin ard -- \
            discover --topology random:n=16,extra=24,seed=4 --variant "$variant" \
            --scheduler random:11 --faults drop=0.1,dup=0.05,crash=1,seed=6
    done
}
snapshot=scripts/chaos-smoke.snapshot
if [[ "${1:-}" == "--regen-chaos" ]]; then
    chaos > "$snapshot"
    echo "verify: regenerated $snapshot — review the diff"
    exit 0
fi
if ! diff -u "$snapshot" <(chaos); then
    echo "verify: chaos smoke diverged from the pinned snapshot" >&2
    echo "verify: if intentional, regenerate with scripts/verify.sh --regen-chaos" >&2
    exit 1
fi

# Byzantine smoke: the explorer, searching under a one-traitor
# equivocate-only plan, must find the planted second-leader election in
# the equiv fixture and ddmin-shrink it; a seeded two-traitor + churn
# discovery run must report the pinned guarantee-survival verdicts. Both
# are fully seeded, so the combined output is byte-compared against the
# pinned snapshot.
byz_out=/tmp/ard-verify-equiv.schedule
byzantine() {
    echo "=== byzantine explore equiv:3 ==="
    cargo run --offline --release -p ard-cli --bin ard -- \
        explore --system equiv:3 --byzantine f=1,seed=3,class=equivocate \
        --budget 64 --seed 0 --out "$byz_out"
    echo "=== byzantine discover ring:12 ==="
    cargo run --offline --release -p ard-cli --bin ard -- \
        discover --topology ring:12 --scheduler random:5 \
        --byzantine f=2,seed=7 --churn rate=0.2,seed=11
}
byz_snapshot=scripts/byzantine-smoke.snapshot
if [[ "${1:-}" == "--regen-byzantine" ]]; then
    byzantine > "$byz_snapshot"
    rm -f "$byz_out"
    echo "verify: regenerated $byz_snapshot — review the diff"
    exit 0
fi
byz_actual="$(byzantine)"
rm -f "$byz_out"
if ! grep -q "violation : forged endorsements elected 2 leaders" <<<"$byz_actual"; then
    echo "verify: byzantine smoke did not find the planted equivocation bug" >&2
    printf '%s\n' "$byz_actual" >&2
    exit 1
fi
if ! grep -q "shrunk    :" <<<"$byz_actual"; then
    echo "verify: byzantine smoke found the bug but did not shrink it" >&2
    printf '%s\n' "$byz_actual" >&2
    exit 1
fi
if ! diff -u "$byz_snapshot" <(printf '%s\n' "$byz_actual"); then
    echo "verify: byzantine smoke diverged from the pinned snapshot" >&2
    echo "verify: if intentional, regenerate with scripts/verify.sh --regen-byzantine" >&2
    exit 1
fi

# DPOR smoke: a pure-DFS search (--walks 0) under sleep-set reduction
# must find the planted race and the planted equivocation, report
# non-trivial pruning on the racy fixture, and print the very same
# violation line the unreduced DFS prints — reduction prunes redundant
# interleavings, never the witnesses. The reduced output is fully seeded,
# so it is byte-compared against the pinned snapshot.
dpor_out=/tmp/ard-verify-dpor.schedule
dpor_racy=(cargo run --offline --release -p ard-cli --bin ard -- \
    explore --system racy:3 --budget 64 --walks 0 --depth 7 --seed 0 \
    --stats --out "$dpor_out")
dpor_equiv=(cargo run --offline --release -p ard-cli --bin ard -- \
    explore --system equiv:3 --byzantine f=1,seed=3,class=equivocate \
    --budget 64 --walks 0 --depth 4 --seed 0 --stats --out "$dpor_out")
dpor_reduced() {
    echo "=== dpor explore racy:3 (reduced) ==="
    "${dpor_racy[@]}" --reduce
    echo "=== dpor explore equiv:3 (reduced) ==="
    "${dpor_equiv[@]}" --reduce
}
dpor_snapshot=scripts/dpor-smoke.snapshot
if [[ "${1:-}" == "--regen-dpor" ]]; then
    dpor_reduced > "$dpor_snapshot"
    rm -f "$dpor_out"
    echo "verify: regenerated $dpor_snapshot — review the diff"
    exit 0
fi
dpor_actual="$(dpor_reduced)"
if ! grep -Eq "reduction : mode=sleep, sleep-pruned=[1-9]" <<<"$dpor_actual"; then
    echo "verify: dpor smoke pruned nothing on the racy fixture:" >&2
    printf '%s\n' "$dpor_actual" >&2
    exit 1
fi
for full in "$("${dpor_racy[@]}")" "$("${dpor_equiv[@]}")"; do
    line="$(grep '^violation :' <<<"$full" || true)"
    if [[ -z "$line" ]]; then
        echo "verify: an unreduced dpor-smoke run found no violation:" >&2
        printf '%s\n' "$full" >&2
        exit 1
    fi
    if ! grep -qF "$line" <<<"$dpor_actual"; then
        echo "verify: reduced search missed the violation the full search found:" >&2
        printf 'full:    %s\n' "$line" >&2
        printf 'reduced output:\n%s\n' "$dpor_actual" >&2
        exit 1
    fi
done
rm -f "$dpor_out"
if ! diff -u "$dpor_snapshot" <(printf '%s\n' "$dpor_actual"); then
    echo "verify: dpor smoke diverged from the pinned snapshot" >&2
    echo "verify: if intentional, regenerate with scripts/verify.sh --regen-dpor" >&2
    exit 1
fi

# Large-n smoke: a 10⁵-node discovery must complete inside a capped step
# budget, and the sharded round engine must produce byte-identical output
# at every shard count — shards=1 covers the thread-free inline path, and
# shards=4 the threaded coordinator/worker path.
bign=(cargo run --offline --release -p ard-cli --bin ard -- \
    discover --topology random:n=100000,extra=200000,seed=1 \
    --variant oblivious --scheduler fifo --max-steps 4000000)
big_seq="$("${bign[@]}")"
for shards in 1 4; do
    big_shd="$("${bign[@]}" --shards "$shards")"
    if [[ "$big_seq" != "$big_shd" ]]; then
        echo "verify: discover --shards $shards diverged from the sequential run at n=100000" >&2
        diff <(printf '%s\n' "$big_seq") <(printf '%s\n' "$big_shd") >&2 || true
        exit 1
    fi
done
if ! grep -q "requirements: satisfied" <<<"$big_seq"; then
    echo "verify: large-n smoke run failed:" >&2
    printf '%s\n' "$big_seq" >&2
    exit 1
fi

# Checked-in bench artifact schema: the throughput JSON must carry the
# payload metrics and the multicore sharded sweep that scripts/bench.sh
# writes (a stale artifact means the sweep was not regenerated).
for key in '"payload_bytes_per_event"' '"payload_peak_bytes"' '"sharded"'; do
    if ! grep -q "$key" BENCH_throughput.json; then
        echo "verify: BENCH_throughput.json is missing the $key key" >&2
        echo "verify: regenerate it with scripts/bench.sh" >&2
        exit 1
    fi
done

echo "verify: OK (tier-1 green, explore smoke deterministic, --jobs 4 byte-identical, snapshots verified, chaos smoke matches snapshot, byzantine smoke found+shrunk and matches snapshot, dpor smoke reduced=full and matches snapshot, n=100000 sharded smoke byte-identical at shards 1 and 4, bench JSON schema ok)"
