//! Property-based tests (proptest): correctness and budgets hold for
//! arbitrary random graphs, schedules and operation sequences.

use proptest::prelude::*;

use asynchronous_resource_discovery::core::{budgets, Discovery, Variant};
use asynchronous_resource_discovery::graph::{components, gen, KnowledgeGraph};
use asynchronous_resource_discovery::netsim::{NodeId, RandomScheduler};
use asynchronous_resource_discovery::union_find::{
    Compression, Op, OpSequence, UnionFind, UnionPolicy,
};

fn variant_strategy() -> impl Strategy<Value = Variant> {
    prop_oneof![
        Just(Variant::Oblivious),
        Just(Variant::Bounded),
        Just(Variant::AdHoc),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Requirements + budgets on arbitrary random weakly connected graphs
    /// under arbitrary random schedules.
    #[test]
    fn discovery_is_correct_on_random_graphs(
        n in 2usize..40,
        extra in 0usize..120,
        graph_seed in 0u64..1_000_000,
        sched_seed in 0u64..1_000_000,
        variant in variant_strategy(),
    ) {
        let graph = gen::random_weakly_connected(n, extra, graph_seed);
        let mut d = Discovery::new(&graph, variant);
        let mut sched = RandomScheduler::seeded(sched_seed);
        d.run_all(&mut sched).expect("livelock");
        d.check_requirements(&graph).map_err(TestCaseError::fail)?;
        budgets::check_all(
            d.runner().metrics(),
            n as u64,
            graph.edge_count() as u64,
            variant,
        )
        .map_err(TestCaseError::fail)?;
    }

    /// Multi-component graphs elect exactly one leader per component.
    #[test]
    fn one_leader_per_component(
        parts in 1usize..4,
        per in 2usize..10,
        seed in 0u64..100_000,
        variant in variant_strategy(),
    ) {
        let graph = gen::random_multi_component(parts, per, per, seed);
        let mut d = Discovery::new(&graph, variant);
        d.run_all(&mut RandomScheduler::seeded(seed ^ 0x55)).expect("livelock");
        prop_assert_eq!(d.leaders().len(), parts);
        d.check_requirements(&graph).map_err(TestCaseError::fail)?;
    }

    /// Arbitrary edge lists (possibly disconnected, any shape) still
    /// satisfy the requirements.
    #[test]
    fn discovery_handles_arbitrary_edge_lists(
        n in 1usize..20,
        edges in prop::collection::vec((0usize..20, 0usize..20), 0..60),
        sched_seed in 0u64..100_000,
        variant in variant_strategy(),
    ) {
        let mut graph = KnowledgeGraph::new(n);
        for (u, v) in edges {
            let (u, v) = (u % n, v % n);
            if u != v {
                graph.add_edge(NodeId::new(u), NodeId::new(v));
            }
        }
        let mut d = Discovery::new(&graph, variant);
        d.run_all(&mut RandomScheduler::seeded(sched_seed)).expect("livelock");
        d.check_requirements(&graph).map_err(TestCaseError::fail)?;
    }

    /// The number of leaders always equals the number of weak components.
    #[test]
    fn leader_count_equals_component_count(
        n in 1usize..25,
        edges in prop::collection::vec((0usize..25, 0usize..25), 0..40),
        seed in 0u64..100_000,
    ) {
        let mut graph = KnowledgeGraph::new(n);
        for (u, v) in edges {
            let (u, v) = (u % n, v % n);
            if u != v {
                graph.add_edge(NodeId::new(u), NodeId::new(v));
            }
        }
        let mut d = Discovery::new(&graph, Variant::AdHoc);
        d.run_all(&mut RandomScheduler::seeded(seed)).expect("livelock");
        let comps = components::weakly_connected_components(&graph);
        prop_assert_eq!(d.leaders().len(), comps.len());
    }

    /// Union-find agrees with a naive quadratic oracle on arbitrary
    /// operation sequences, for every policy combination.
    #[test]
    fn union_find_matches_oracle(
        n in 1usize..40,
        ops in prop::collection::vec((0usize..40, 0usize..40), 0..80),
        policy_bits in 0u8..6,
    ) {
        let (up, cp) = match policy_bits {
            0 => (UnionPolicy::ByRank, Compression::Full),
            1 => (UnionPolicy::ByRank, Compression::Halving),
            2 => (UnionPolicy::ByRank, Compression::Off),
            3 => (UnionPolicy::Naive, Compression::Full),
            4 => (UnionPolicy::Naive, Compression::Halving),
            _ => (UnionPolicy::Naive, Compression::Off),
        };
        let mut uf = UnionFind::with_policies(n, up, cp);
        // Oracle: component label vector.
        let mut labels: Vec<usize> = (0..n).collect();
        for (a, b) in ops {
            let (a, b) = (a % n, b % n);
            let merged = uf.union(a, b);
            let (la, lb) = (labels[a], labels[b]);
            prop_assert_eq!(merged, la != lb);
            if la != lb {
                for l in labels.iter_mut() {
                    if *l == lb {
                        *l = la;
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(uf.same_set(i, j), labels[i] == labels[j]);
            }
        }
    }

    /// Generated op sequences are always valid and fully merging.
    #[test]
    fn op_sequences_are_valid(n in 1usize..60, finds in 0usize..40, seed in 0u64..100_000) {
        let seq = OpSequence::random(n, finds, seed);
        prop_assert_eq!(seq.union_count(), n - 1);
        prop_assert_eq!(seq.find_count(), finds);
        let mut uf = UnionFind::new(n);
        seq.run(&mut uf); // panics internally if any union is invalid
        prop_assert_eq!(uf.set_count(), 1);
        // Finds never target out-of-range elements.
        for op in seq.ops() {
            if let Op::Find(i) = op {
                prop_assert!(*i < n);
            }
        }
    }

    /// Probes from every node return the full component, whatever the
    /// schedule.
    #[test]
    fn probes_see_everything(
        n in 2usize..25,
        extra in 0usize..50,
        seed in 0u64..100_000,
    ) {
        let graph = gen::random_weakly_connected(n, extra, seed);
        let mut d = Discovery::new(&graph, Variant::AdHoc);
        let mut sched = RandomScheduler::seeded(!seed);
        d.run_all(&mut sched).expect("livelock");
        let probe_from = NodeId::new((seed as usize) % n);
        let snap = d.probe_blocking(probe_from, &mut sched).expect("probe livelock");
        prop_assert_eq!(snap.len(), n);
    }
}
