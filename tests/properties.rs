//! Property-based tests (proptest): correctness and budgets hold for
//! arbitrary random graphs, schedules and operation sequences.

use proptest::prelude::*;

use asynchronous_resource_discovery::core::{budgets, Discovery, Variant};
use asynchronous_resource_discovery::graph::{components, gen, KnowledgeGraph};
use asynchronous_resource_discovery::netsim::explore::{fixtures, run_fork_system};
use asynchronous_resource_discovery::netsim::{
    BoundedDelayScheduler, ByzantinePlan, ChurnPlan, FaultPlan, Footprint, LifoScheduler, NodeId,
    RandomScheduler, RecordingScheduler, ReplayScheduler, Schedule, Scheduler,
};
use asynchronous_resource_discovery::union_find::{
    Compression, Op, OpSequence, UnionFind, UnionPolicy,
};

fn variant_strategy() -> impl Strategy<Value = Variant> {
    prop_oneof![
        Just(Variant::Oblivious),
        Just(Variant::Bounded),
        Just(Variant::AdHoc),
    ]
}

/// A drawn member of the scheduler family — the paper's guarantees hold for
/// *every* asynchronous schedule, so the properties sample benign, hostile
/// and partially synchronous orderings, not just uniform-random ones.
#[derive(Clone, Debug)]
enum SchedSpec {
    Random(u64),
    Lifo,
    Bounded { delay: u64, seed: u64 },
}

impl SchedSpec {
    fn build(&self) -> Box<dyn Scheduler> {
        match *self {
            SchedSpec::Random(seed) => Box::new(RandomScheduler::seeded(seed)),
            SchedSpec::Lifo => Box::new(LifoScheduler::new()),
            SchedSpec::Bounded { delay, seed } => Box::new(BoundedDelayScheduler::new(delay, seed)),
        }
    }
}

fn sched_strategy() -> impl Strategy<Value = SchedSpec> {
    prop_oneof![
        (0u64..1_000_000).prop_map(SchedSpec::Random),
        Just(SchedSpec::Lifo),
        (1u64..12, 0u64..1_000_000)
            .prop_map(|(delay, seed)| SchedSpec::Bounded { delay, seed }),
    ]
}

/// A drawn fault plan, sized to the network inside the property (crash
/// events need the node count, which is drawn separately).
#[derive(Clone, Debug)]
struct FaultSpec {
    seed: u64,
    drop: f64,
    dup: f64,
    crashes: usize,
}

impl FaultSpec {
    fn plan(&self, n: usize) -> FaultPlan {
        FaultPlan::new(self.seed)
            .with_drop(self.drop)
            .with_dup(self.dup)
            .with_spread_crashes(self.crashes, n)
    }
}

fn fault_strategy() -> impl Strategy<Value = FaultSpec> {
    (0u64..1_000_000, 0u32..31, 0u32..11, 0usize..3).prop_map(
        |(seed, drop_pct, dup_pct, crashes)| FaultSpec {
            seed,
            drop: f64::from(drop_pct) / 100.0,
            dup: f64::from(dup_pct) / 100.0,
            crashes,
        },
    )
}

/// A drawn Byzantine plan: traitor count, seed, and either a single fault
/// class or the whole alphabet at once.
#[derive(Clone, Debug)]
struct ByzantineSpec {
    seed: u64,
    f: usize,
    class: usize,
}

impl ByzantineSpec {
    const CLASSES: [&'static str; 4] = ["equivocate", "fabricate", "silence", "stale-restart"];

    fn plan(&self) -> ByzantinePlan {
        let plan = ByzantinePlan::new(self.seed, self.f);
        match Self::CLASSES.get(self.class) {
            Some(class) => plan.only(class),
            None => plan, // index 4: every class at once
        }
    }
}

fn byzantine_strategy() -> impl Strategy<Value = ByzantineSpec> {
    (0u64..1_000_000, 1usize..3, 0usize..5)
        .prop_map(|(seed, f, class)| ByzantineSpec { seed, f, class })
}

/// A drawn churn plan (or none): join/leave rate up to the 40% of nodes.
#[derive(Clone, Debug)]
struct ChurnSpec {
    seed: u64,
    rate: f64,
}

impl ChurnSpec {
    fn plan(&self) -> ChurnPlan {
        ChurnPlan::new(self.seed, self.rate)
    }
}

fn churn_strategy() -> impl Strategy<Value = Option<ChurnSpec>> {
    prop_oneof![
        Just(None),
        (0u64..1_000_000, 1u32..41)
            .prop_map(|(seed, pct)| Some(ChurnSpec { seed, rate: f64::from(pct) / 100.0 })),
    ]
}

/// Writes the recorded schedule of a failing run under
/// `target/failed-schedules/` and returns a test failure naming the
/// artifact, so any property failure is replayable via `ard replay <path>`
/// (the vendored proptest does not shrink; the replay file is the
/// minimization story — see docs/testing.md).
fn fail_with_artifact(
    topology: &str,
    variant: Variant,
    mut schedule: Schedule,
    reason: &str,
) -> TestCaseError {
    schedule.set_meta("topology", topology);
    schedule.set_meta("variant", variant.to_string());
    write_artifact(schedule, reason)
}

/// Writes `schedule` (metadata already stamped) under
/// `target/failed-schedules/` and returns a test failure naming the
/// artifact.
fn write_artifact(mut schedule: Schedule, reason: &str) -> TestCaseError {
    schedule.set_meta("reason", reason.replace('\n', " "));
    let text = schedule.to_text();
    // FNV-1a content hash: stable artifact names, no timestamp needed.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        hash = (hash ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let dir = std::path::Path::new("target").join("failed-schedules");
    let path = dir.join(format!("{hash:016x}.schedule"));
    let write = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &text));
    match write {
        Ok(()) => TestCaseError::fail(format!(
            "{reason}\nreplay artifact: {} (re-run with `ard replay <path>`, shrink per docs/testing.md)",
            path.display()
        )),
        Err(e) => TestCaseError::fail(format!("{reason}\n(could not write replay artifact: {e})")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Requirements + budgets on arbitrary random weakly connected graphs
    /// under the whole scheduler family (random, LIFO, bounded-delay).
    #[test]
    fn discovery_is_correct_on_random_graphs(
        n in 2usize..40,
        extra in 0usize..120,
        graph_seed in 0u64..1_000_000,
        sched in sched_strategy(),
        variant in variant_strategy(),
    ) {
        let topology = format!("random:n={n},extra={extra},seed={graph_seed}");
        let graph = gen::random_weakly_connected(n, extra, graph_seed);
        let mut d = Discovery::new(&graph, variant);
        let (result, schedule) = d.run_recorded(sched.build());
        result.expect("livelock");
        let check = d.check_requirements(&graph).and_then(|()| {
            budgets::check_all(
                d.runner().metrics(),
                n as u64,
                graph.edge_count() as u64,
                variant,
            )
        });
        if let Err(reason) = check {
            return Err(fail_with_artifact(&topology, variant, schedule, &reason));
        }
    }

    /// Multi-component graphs elect exactly one leader per component,
    /// whichever family member schedules them.
    #[test]
    fn one_leader_per_component(
        parts in 1usize..4,
        per in 2usize..10,
        seed in 0u64..100_000,
        sched in sched_strategy(),
        variant in variant_strategy(),
    ) {
        let graph = gen::random_multi_component(parts, per, per, seed);
        let mut d = Discovery::new(&graph, variant);
        let (result, schedule) = d.run_recorded(sched.build());
        result.expect("livelock");
        let topology = format!("components:count={parts},per={per},extra={per},seed={seed}");
        if d.leaders().len() != parts {
            let reason = format!("{} leaders for {parts} components", d.leaders().len());
            return Err(fail_with_artifact(&topology, variant, schedule, &reason));
        }
        if let Err(reason) = d.check_requirements(&graph) {
            return Err(fail_with_artifact(&topology, variant, schedule, &reason));
        }
    }

    /// Arbitrary edge lists (possibly disconnected, any shape) still
    /// satisfy the requirements.
    #[test]
    fn discovery_handles_arbitrary_edge_lists(
        n in 1usize..20,
        edges in prop::collection::vec((0usize..20, 0usize..20), 0..60),
        sched in sched_strategy(),
        variant in variant_strategy(),
    ) {
        let mut graph = KnowledgeGraph::new(n);
        for (u, v) in edges {
            let (u, v) = (u % n, v % n);
            if u != v {
                graph.add_edge(NodeId::new(u), NodeId::new(v));
            }
        }
        let mut d = Discovery::new(&graph, variant);
        let (result, _schedule) = d.run_recorded(sched.build());
        result.expect("livelock");
        d.check_requirements(&graph).map_err(TestCaseError::fail)?;
    }

    /// The number of leaders always equals the number of weak components.
    #[test]
    fn leader_count_equals_component_count(
        n in 1usize..25,
        edges in prop::collection::vec((0usize..25, 0usize..25), 0..40),
        seed in 0u64..100_000,
    ) {
        let mut graph = KnowledgeGraph::new(n);
        for (u, v) in edges {
            let (u, v) = (u % n, v % n);
            if u != v {
                graph.add_edge(NodeId::new(u), NodeId::new(v));
            }
        }
        let mut d = Discovery::new(&graph, Variant::AdHoc);
        d.run_all(&mut RandomScheduler::seeded(seed)).expect("livelock");
        let comps = components::weakly_connected_components(&graph);
        prop_assert_eq!(d.leaders().len(), comps.len());
    }

    /// Union-find agrees with a naive quadratic oracle on arbitrary
    /// operation sequences, for every policy combination.
    #[test]
    fn union_find_matches_oracle(
        n in 1usize..40,
        ops in prop::collection::vec((0usize..40, 0usize..40), 0..80),
        policy_bits in 0u8..6,
    ) {
        let (up, cp) = match policy_bits {
            0 => (UnionPolicy::ByRank, Compression::Full),
            1 => (UnionPolicy::ByRank, Compression::Halving),
            2 => (UnionPolicy::ByRank, Compression::Off),
            3 => (UnionPolicy::Naive, Compression::Full),
            4 => (UnionPolicy::Naive, Compression::Halving),
            _ => (UnionPolicy::Naive, Compression::Off),
        };
        let mut uf = UnionFind::with_policies(n, up, cp);
        // Oracle: component label vector.
        let mut labels: Vec<usize> = (0..n).collect();
        for (a, b) in ops {
            let (a, b) = (a % n, b % n);
            let merged = uf.union(a, b);
            let (la, lb) = (labels[a], labels[b]);
            prop_assert_eq!(merged, la != lb);
            if la != lb {
                for l in labels.iter_mut() {
                    if *l == lb {
                        *l = la;
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(uf.same_set(i, j), labels[i] == labels[j]);
            }
        }
    }

    /// Generated op sequences are always valid and fully merging.
    #[test]
    fn op_sequences_are_valid(n in 1usize..60, finds in 0usize..40, seed in 0u64..100_000) {
        let seq = OpSequence::random(n, finds, seed);
        prop_assert_eq!(seq.union_count(), n - 1);
        prop_assert_eq!(seq.find_count(), finds);
        let mut uf = UnionFind::new(n);
        seq.run(&mut uf); // panics internally if any union is invalid
        prop_assert_eq!(uf.set_count(), 1);
        // Finds never target out-of-range elements.
        for op in seq.ops() {
            if let Op::Find(i) = op {
                prop_assert!(*i < n);
            }
        }
    }

    /// Discovery under arbitrary drawn fault plans (lossy links, duplicate
    /// deliveries, crash/restart churn) still satisfies the requirements
    /// and the net-of-overhead budgets, across the whole scheduler family —
    /// and the recorded schedule, faults included, replays byte-exactly
    /// without any fault machinery. Failing runs land in
    /// `target/failed-schedules/` with `faults` metadata so `ard replay`
    /// rebuilds the reliable-wrapped network.
    #[test]
    fn discovery_survives_arbitrary_faults(
        n in 2usize..28,
        extra in 0usize..80,
        graph_seed in 0u64..1_000_000,
        sched in sched_strategy(),
        variant in variant_strategy(),
        fault in fault_strategy(),
    ) {
        let topology = format!("random:n={n},extra={extra},seed={graph_seed}");
        let graph = gen::random_weakly_connected(n, extra, graph_seed);
        let plan = fault.plan(n);
        let (result, schedule) =
            Discovery::run_faulty(&graph, variant, &plan, sched.build());
        let outcome = match result.and_then(|o| {
            budgets::check_all_faulty(
                &o.metrics,
                n as u64,
                graph.edge_count() as u64,
                variant,
            )
            .map(|()| o)
        }) {
            Ok(outcome) => outcome,
            Err(reason) => {
                return Err(fail_with_artifact(&topology, variant, schedule, &reason));
            }
        };
        match Discovery::replay_faulty(&graph, variant, &schedule) {
            Err(reason) => {
                let reason = format!("faulty replay diverged: {reason}");
                return Err(fail_with_artifact(&topology, variant, schedule, &reason));
            }
            Ok(replayed) => {
                if replayed.steps != outcome.steps
                    || format!("{}", replayed.metrics) != format!("{}", outcome.metrics)
                {
                    let reason = "faulty replay diverged from the recording";
                    return Err(fail_with_artifact(&topology, variant, schedule, reason));
                }
            }
        }
    }

    /// Discovery under arbitrary drawn Byzantine plans (equivocation,
    /// fabrication, silence, stale restarts — one class or the whole
    /// alphabet) and optional membership churn always quiesces, honors
    /// its plan, and the recorded schedule replays strictly and
    /// byte-exactly with no plan RNG involved. Which *guarantees* survive
    /// is a separate, pinned question (`tests/survival_matrix.rs`) — this
    /// property is about the engine, not the protocol's envelope. Failing
    /// runs land in `target/failed-schedules/` with `byzantine`/`churn`
    /// metadata so `ard replay` rebuilds the exact run.
    #[test]
    fn byzantine_runs_quiesce_and_replay_exactly(
        n in 4usize..24,
        extra in 0usize..60,
        graph_seed in 0u64..1_000_000,
        sched in sched_strategy(),
        variant in variant_strategy(),
        byz in byzantine_strategy(),
        churn in churn_strategy(),
    ) {
        let topology = format!("random:n={n},extra={extra},seed={graph_seed}");
        let graph = gen::random_weakly_connected(n, extra, graph_seed);
        let plan = byz.plan();
        let churn_plan = churn.as_ref().map(ChurnSpec::plan);
        let (result, schedule) = Discovery::run_byzantine(
            &graph,
            variant,
            Some(&plan),
            churn_plan.as_ref(),
            sched.build(),
        );
        let outcome = match result {
            Ok(outcome) => outcome,
            Err(reason) => {
                return Err(fail_with_artifact(&topology, variant, schedule, &reason));
            }
        };
        if outcome.byzantine_nodes.len() != byz.f.min(n) {
            let reason = format!(
                "plan promised {} traitors, outcome reports {}",
                byz.f.min(n),
                outcome.byzantine_nodes.len()
            );
            return Err(fail_with_artifact(&topology, variant, schedule, &reason));
        }
        if let Some(churn_plan) = &churn_plan {
            if outcome.joined.len() != churn_plan.joiners(n).len()
                || outcome.left.len() != churn_plan.leavers(n).len()
            {
                let reason = "membership churn diverged from the plan";
                return Err(fail_with_artifact(&topology, variant, schedule, reason));
            }
        }
        match Discovery::replay_byzantine(&graph, variant, &schedule) {
            Err(reason) => {
                let reason = format!("byzantine replay diverged: {reason}");
                return Err(fail_with_artifact(&topology, variant, schedule, &reason));
            }
            Ok(replayed) => {
                if replayed.steps != outcome.steps
                    || replayed.leaders != outcome.leaders
                    || replayed.byzantine != outcome.byzantine
                    || format!("{}", replayed.metrics) != format!("{}", outcome.metrics)
                {
                    let reason = "byzantine replay diverged from the recording";
                    return Err(fail_with_artifact(&topology, variant, schedule, reason));
                }
            }
        }
    }

    /// Soundness of the explorer's DPOR independence relation: swapping
    /// two adjacent recorded choices whose may-footprints do not conflict
    /// must leave the run's terminal-state digest (node state, knowledge,
    /// in-flight queues, metrics) unchanged — that commutation is exactly
    /// what sleep-set pruning assumes. Failing pairs land in
    /// `target/failed-schedules/` with the swap position in the metadata
    /// so `ard replay` can re-execute them.
    #[test]
    fn independent_adjacent_swaps_preserve_the_terminal_state(
        clients in 2usize..6,
        seed in 0u64..1_000_000,
    ) {
        // Violation-tolerant mode: every interleaving runs to quiescence,
        // so each swap compares full executions.
        let system = fixtures::RacySystem::tolerant(clients);
        let mut rec = RecordingScheduler::new(RandomScheduler::seeded(seed));
        run_fork_system(&system, &mut rec).expect("tolerant fixture cannot fail");
        let base_digest = rec.terminal_digest().expect("fixture reports a digest");
        let choices = rec.recorded().to_vec();
        for i in 0..choices.len().saturating_sub(1) {
            let (a, b) = (choices[i], choices[i + 1]);
            if a == b || Footprint::may(a).conflicts(&Footprint::may(b)) {
                continue;
            }
            let mut swapped = choices.clone();
            swapped.swap(i, i + 1);
            let mut sched = RecordingScheduler::new(ReplayScheduler::lenient(&swapped));
            run_fork_system(&system, &mut sched).expect("tolerant fixture cannot fail");
            let executed = sched.recorded().len();
            let digest = sched.terminal_digest();
            if executed != choices.len() || digest != Some(base_digest) {
                let mut schedule = Schedule::new(swapped);
                schedule.set_meta("system", format!("racy:{clients}"));
                schedule.set_meta("swapped-at", i.to_string());
                schedule.set_meta("base-digest", format!("{base_digest:016x}"));
                let reason = format!(
                    "swapping independent adjacent choices {a:?} / {b:?} at {i} changed the \
                     run: {executed}/{} choices executed, digest {digest:?} vs {base_digest:#x}",
                    choices.len()
                );
                return Err(write_artifact(schedule, &reason));
            }
        }
    }

    /// Probes from every node return the full component, whatever the
    /// schedule.
    #[test]
    fn probes_see_everything(
        n in 2usize..25,
        extra in 0usize..50,
        seed in 0u64..100_000,
    ) {
        let graph = gen::random_weakly_connected(n, extra, seed);
        let mut d = Discovery::new(&graph, Variant::AdHoc);
        let mut sched = RandomScheduler::seeded(!seed);
        d.run_all(&mut sched).expect("livelock");
        let probe_from = NodeId::new((seed as usize) % n);
        let snap = d.probe_blocking(probe_from, &mut sched).expect("probe livelock");
        prop_assert_eq!(snap.len(), n);
    }
}
