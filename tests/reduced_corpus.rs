//! The reduced (DPOR) explorer against the pinned corpus witnesses: for
//! every planted bug the corpus pins, a sleep-set-reduced DFS must still
//! find the violation, and ddmin must minimize its find exactly as it
//! minimizes the unreduced explorer's — reduction prunes *redundant*
//! interleavings, never the witnesses.

use std::collections::BTreeSet;

use asynchronous_resource_discovery::core::{ByzantineDiscovery, Variant};
use asynchronous_resource_discovery::graph::gen;
use asynchronous_resource_discovery::netsim::explore::{
    explore, explore_fork, fixtures, ExploreConfig, ReduceMode,
};
use asynchronous_resource_discovery::netsim::shrink::shrink;
use asynchronous_resource_discovery::netsim::{
    ByzantinePlan, ChurnPlan, FaultPlan, NodeId, Schedule, Scheduler,
};

fn corpus(name: &str) -> Schedule {
    let path = format!("tests/corpus/{name}");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    Schedule::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Runs `config` unreduced and reduced, asserts both find a violation,
/// and returns the two failure schedules (full, reduced).
fn both_find(
    config: &ExploreConfig,
    run: &dyn Fn(&ExploreConfig) -> asynchronous_resource_discovery::netsim::explore::ExploreReport,
) -> (Schedule, Schedule) {
    let full = run(config);
    let reduced = run(&ExploreConfig {
        reduce: ReduceMode::Sleep,
        ..config.clone()
    });
    let f = full.failure.expect("unreduced DFS finds the planted bug");
    let r = reduced.failure.expect("reduced DFS finds the planted bug");
    assert_eq!(f.reason, r.reason, "reduction changed which bug was found");
    (f.schedule, r.schedule)
}

#[test]
fn reduced_dfs_finds_and_minimizes_the_racy_witness() {
    let config = ExploreConfig {
        random_walks: 0,
        dfs_budget: 64,
        dfs_depth: 7,
        seed: 0,
        ..ExploreConfig::default()
    };
    let (full, reduced) =
        both_find(&config, &|c| explore_fork(c, &fixtures::RacySystem::new(3)));
    let sf = shrink(&full, || |s: &mut dyn Scheduler| fixtures::run_racy(3, s));
    let sr = shrink(&reduced, || |s: &mut dyn Scheduler| fixtures::run_racy(3, s));
    assert_eq!(sf.schedule.choices(), sr.schedule.choices());
    // Both minimize to exactly the pinned corpus witness.
    let witness = corpus("racy-minimized.schedule");
    assert_eq!(sr.schedule.choices(), witness.choices());
}

#[test]
fn reduced_dfs_finds_and_minimizes_the_crash_fragile_witness() {
    let config = ExploreConfig {
        random_walks: 0,
        dfs_budget: 512,
        dfs_depth: 5,
        seed: 0,
        fault: Some(FaultPlan::new(1).with_crash(NodeId::new(0), 2, 2)),
        ..ExploreConfig::default()
    };
    let (full, reduced) =
        both_find(&config, &|c| explore_fork(c, &fixtures::FragileSystem::new(1)));
    let sf = shrink(&full, || |s: &mut dyn Scheduler| fixtures::run_fragile(1, s));
    let sr = shrink(&reduced, || |s: &mut dyn Scheduler| fixtures::run_fragile(1, s));
    assert_eq!(sf.schedule.choices(), sr.schedule.choices());
    let witness = corpus("fragile-crash-minimized.schedule");
    assert_eq!(sr.schedule.choices(), witness.choices());
}

#[test]
fn reduced_dfs_finds_and_minimizes_the_equivocation_witness() {
    let config = ExploreConfig {
        random_walks: 0,
        dfs_budget: 64,
        dfs_depth: 4,
        seed: 0,
        byzantine: Some((ByzantinePlan::new(3, 1).only("equivocate"), 4)),
        ..ExploreConfig::default()
    };
    let (full, reduced) =
        both_find(&config, &|c| explore_fork(c, &fixtures::EquivSystem::new(3)));
    let sf = shrink(&full, || |s: &mut dyn Scheduler| fixtures::run_equiv(3, s));
    let sr = shrink(&reduced, || |s: &mut dyn Scheduler| fixtures::run_equiv(3, s));
    assert_eq!(sf.schedule.choices(), sr.schedule.choices());
    let witness = corpus("equiv-forge-minimized.schedule");
    assert_eq!(sr.schedule.choices(), witness.choices());
}

/// The closure the `byzantine-churn-ring-12` witness was recorded against:
/// ring of 12 under two traitors (full fault alphabet) plus join/leave
/// churn, checking the survivor-restricted guarantees.
fn run_byz_churn_ring(sched: &mut dyn Scheduler) -> Result<(), String> {
    let graph = gen::ring(12);
    let byz = ByzantinePlan::new(7, 2);
    let churn = ChurnPlan::new(11, 0.2);
    let mut bd = ByzantineDiscovery::new(&graph, Variant::AdHoc);
    let withheld: BTreeSet<NodeId> = churn.joiners(graph.len()).into_iter().collect();
    let steps = bd.run_all(sched, &withheld)?;
    let outcome = bd.outcome(steps, Some(&byz), Some(&churn));
    outcome.single_leader.clone()?;
    outcome.leader_knows_all.clone()?;
    outcome.budgets.clone()
}

#[test]
fn reduced_dfs_finds_and_minimizes_the_byzantine_churn_violation() {
    // The pinned `byzantine-churn-ring-12` run violates the survivor
    // guarantees; the reduced explorer must find a violation of the same
    // system (here via the closure contract — no fork path for the full
    // protocol) and ddmin must land on the identical minimal core.
    let config = ExploreConfig {
        random_walks: 0,
        dfs_budget: 128,
        dfs_depth: 4,
        seed: 0,
        byzantine: Some((ByzantinePlan::new(7, 2), 12)),
        churn: Some((ChurnPlan::new(11, 0.2), 12)),
        ..ExploreConfig::default()
    };
    let (full, reduced) = both_find(&config, &|c| explore(c, || run_byz_churn_ring));
    let sf = shrink(&full, || run_byz_churn_ring);
    let sr = shrink(&reduced, || run_byz_churn_ring);
    assert_eq!(sf.schedule.choices(), sr.schedule.choices());
    assert_eq!(sf.reason, sr.reason);
}

#[test]
fn reduced_reports_are_byte_identical_at_any_jobs_and_checkpointing() {
    let base = ExploreConfig {
        random_walks: 8,
        dfs_budget: 64,
        dfs_depth: 7,
        seed: 0,
        reduce: ReduceMode::Sleep,
        ..ExploreConfig::default()
    };
    let reference = explore_fork(&base, &fixtures::RacySystem::new(3));
    let ref_failure = reference.failure.as_ref().expect("reference finds the race");
    let ref_digest = ref_failure
        .schedule
        .meta("terminal-digest")
        .expect("reduced failures carry a digest")
        .to_string();
    for jobs in [2usize, 4, 8] {
        for checkpoint in [false, true] {
            let report = explore_fork(
                &ExploreConfig {
                    jobs,
                    checkpoint,
                    ..base.clone()
                },
                &fixtures::RacySystem::new(3),
            );
            assert_eq!(report.runs, reference.runs, "jobs={jobs} ckpt={checkpoint}");
            assert_eq!(
                report.sleep_pruned, reference.sleep_pruned,
                "jobs={jobs} ckpt={checkpoint}"
            );
            assert_eq!(
                report.digest_deduped, reference.digest_deduped,
                "jobs={jobs} ckpt={checkpoint}"
            );
            let failure = report.failure.expect("every grid cell finds the race");
            assert_eq!(
                failure.schedule.to_text(),
                ref_failure.schedule.to_text(),
                "jobs={jobs} ckpt={checkpoint}"
            );
            assert_eq!(
                failure.schedule.meta("terminal-digest"),
                Some(ref_digest.as_str()),
                "jobs={jobs} ckpt={checkpoint}"
            );
        }
    }
}
