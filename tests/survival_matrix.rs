//! Headline guarantee-survival matrix: which of the paper's guarantees
//! survive which Byzantine fault class, at which traitor count, with and
//! without membership churn.
//!
//! Each cell runs full discovery (Ad-hoc variant, bare Byzantine-tolerant
//! nodes — no reliable-delivery layer) on pinned random weakly-connected
//! graphs (n = 16) with a seeded [`ByzantinePlan`] restricted to one fault
//! class, across [`PROBES`] independent (plan seed, scheduler seed, graph
//! seed) triples, and classifies each *survivor* requirement — the checks
//! exclude the traitors themselves and departed nodes:
//!
//! * **survives** — the requirement held on every probed seed;
//! * **degrades** — violated on a minority of seeds (the guarantee is
//!   schedule- and placement-dependent under this fault class);
//! * **fails** — violated on at least half the seeds.
//!
//! The expected classification is pinned in [`EXPECTED`]; a diff means the
//! protocol's Byzantine envelope changed and the table (plus the copy in
//! `EXPERIMENTS.md`) must be re-derived deliberately. The two `none` rows
//! are controls: honest runs survive everything, and membership churn
//! *alone* already breaks leader safety for the bare protocol — the paper's
//! §6 dynamics cover joins, not departures. For fault classes that can
//! break leader safety, minimized explorer-found counterexamples are
//! checked into `tests/corpus/` and replayed by the `replay_corpus` suite.
//!
//! Reading the table: traitor *count* is not monotone in damage — what
//! matters is placement (which nodes the seeded plan corrupts), so
//! `fabricate f=2` can survive where `f=1` degrades. Silence is the
//! deadliest class for the bare protocol (a silenced conquest stalls its
//! whole component's merge), which is exactly why the fault-injection tier
//! wraps nodes in the reliable-delivery layer; budgets survive almost
//! everywhere because adversarial traffic is metered separately and netted
//! out.

use asynchronous_resource_discovery::core::{Discovery, Variant};
use asynchronous_resource_discovery::graph::gen;
use asynchronous_resource_discovery::netsim::{ByzantinePlan, ChurnPlan, RandomScheduler};

/// Independent probes per cell (plan, scheduler and graph seeds are all
/// derived from the probe index so cells stay independent).
const PROBES: u64 = 8;

/// Nodes per probed graph.
const N: usize = 16;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Survival {
    Survives,
    Degrades,
    Fails,
}

use Survival::{Degrades, Fails, Survives};

fn classify(violations: u64) -> Survival {
    match violations {
        0 => Survives,
        v if v < PROBES / 2 => Degrades,
        _ => Fails,
    }
}

/// The pinned matrix: (fault class, f, churn rate) → classification of
/// (single leader, leader knows all, budget lemmas).
const EXPECTED: [(Option<&str>, usize, f64, [Survival; 3]); 18] = [
    (None, 0, 0.0, [Survives, Survives, Survives]),
    (None, 0, 0.2, [Fails, Fails, Survives]),
    (Some("equivocate"), 1, 0.0, [Survives, Survives, Survives]),
    (Some("equivocate"), 1, 0.2, [Fails, Fails, Survives]),
    (Some("equivocate"), 2, 0.0, [Survives, Survives, Degrades]),
    (Some("equivocate"), 2, 0.2, [Fails, Fails, Degrades]),
    (Some("fabricate"), 1, 0.0, [Degrades, Degrades, Survives]),
    (Some("fabricate"), 1, 0.2, [Fails, Fails, Survives]),
    (Some("fabricate"), 2, 0.0, [Survives, Survives, Survives]),
    (Some("fabricate"), 2, 0.2, [Fails, Fails, Survives]),
    (Some("silence"), 1, 0.0, [Fails, Fails, Survives]),
    (Some("silence"), 1, 0.2, [Fails, Fails, Survives]),
    (Some("silence"), 2, 0.0, [Fails, Fails, Survives]),
    (Some("silence"), 2, 0.2, [Fails, Fails, Survives]),
    (Some("stale-restart"), 1, 0.0, [Degrades, Fails, Survives]),
    (Some("stale-restart"), 1, 0.2, [Fails, Fails, Survives]),
    (Some("stale-restart"), 2, 0.0, [Fails, Fails, Survives]),
    (Some("stale-restart"), 2, 0.2, [Fails, Fails, Survives]),
];

/// Runs one matrix cell: [`PROBES`] independent runs of the given fault
/// class at traitor count `f` (churn optional), returning the
/// classification of (single leader, leader knows all, budget lemmas).
fn run_cell(class: Option<&str>, f: usize, churn_rate: f64) -> [Survival; 3] {
    let mut violations = [0u64; 3];
    for probe in 0..PROBES {
        let graph = gen::random_weakly_connected(N, 2 * N, 7_000 + probe);
        let byz = class.map(|c| ByzantinePlan::new(probe, f).only(c));
        let churn = (churn_rate > 0.0).then(|| ChurnPlan::new(100 + probe, churn_rate));
        let (result, _) = Discovery::run_byzantine(
            &graph,
            Variant::AdHoc,
            byz.as_ref(),
            churn.as_ref(),
            RandomScheduler::seeded(500 + probe),
        );
        let outcome = result.unwrap_or_else(|e| {
            panic!("class={class:?} f={f} churn={churn_rate} probe={probe}: {e}")
        });
        for (slot, check) in [
            &outcome.single_leader,
            &outcome.leader_knows_all,
            &outcome.budgets,
        ]
        .into_iter()
        .enumerate()
        {
            if check.is_err() {
                violations[slot] += 1;
            }
        }
    }
    [
        classify(violations[0]),
        classify(violations[1]),
        classify(violations[2]),
    ]
}

/// The matrix matches its pinned classification, cell by cell.
#[test]
fn guarantee_survival_matrix_is_pinned() {
    let mut diffs = Vec::new();
    for (class, f, churn, expected) in EXPECTED {
        let got = run_cell(class, f, churn);
        if got != expected {
            diffs.push(format!(
                "class={class:?} f={f} churn={churn}: expected {expected:?}, measured {got:?}"
            ));
        }
    }
    assert!(
        diffs.is_empty(),
        "guarantee-survival matrix drifted from its pin — if the protocol's \
         Byzantine envelope changed on purpose, re-derive the table here and \
         in EXPERIMENTS.md:\n{}",
        diffs.join("\n")
    );
}

/// Every fault class that can break leader safety has a minimized,
/// explorer-found counterexample checked into the corpus (replayed by the
/// `replay_corpus` suite), so "fails" cells stay concrete, not just
/// statistical.
#[test]
fn fails_cells_have_corpus_witnesses() {
    let corpus = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    for witness in ["equiv-forge-minimized.schedule", "byzantine-churn-ring-12.schedule"] {
        assert!(
            corpus.join(witness).is_file(),
            "missing corpus witness {witness} for a failing matrix cell"
        );
    }
    let failing_classes: Vec<&str> = EXPECTED
        .iter()
        .filter(|(_, _, _, [single, _, _])| *single == Fails || *single == Degrades)
        .filter_map(|(class, _, _, _)| *class)
        .collect();
    assert!(
        failing_classes.contains(&"equivocate") || failing_classes.contains(&"fabricate"),
        "the forgery witness documents a forgery-driven leader-safety break"
    );
}

/// Honest control: with no plans at all the Byzantine harness changes
/// nothing — every guarantee survives on every probe.
#[test]
fn honest_baseline_survives_everything() {
    assert_eq!(run_cell(None, 0, 0.0), [Survives, Survives, Survives]);
}
