//! Large-scale soak tests, run explicitly with `cargo test -- --ignored`
//! (they take minutes in debug builds, seconds in release).

use asynchronous_resource_discovery::core::{budgets, Discovery, Variant};
use asynchronous_resource_discovery::graph::gen;
use asynchronous_resource_discovery::lower_bounds::tree_adversary;
use asynchronous_resource_discovery::netsim::RandomScheduler;

#[test]
#[ignore = "large-scale soak; run with --ignored"]
fn soak_discovery_at_sixteen_k() {
    let n = 1 << 14;
    let graph = gen::random_weakly_connected(n, 2 * n, 1);
    for variant in [Variant::Oblivious, Variant::Bounded, Variant::AdHoc] {
        let mut d = Discovery::new(&graph, variant);
        d.run_all(&mut RandomScheduler::seeded(2)).unwrap();
        d.check_requirements(&graph).unwrap();
        budgets::check_all(
            d.runner().metrics(),
            n as u64,
            graph.edge_count() as u64,
            variant,
        )
        .unwrap();
    }
}

#[test]
#[ignore = "large-scale soak; run with --ignored"]
fn soak_tree_adversary_at_depth_fourteen() {
    let r = tree_adversary::run(14);
    assert!(r.messages >= r.bound);
}

#[test]
#[ignore = "large-scale soak; run with --ignored"]
fn soak_many_seeds_small_graphs() {
    // Breadth instead of depth: thousands of schedules over small graphs.
    for seed in 0..2000u64 {
        let graph = gen::random_weakly_connected(10, 20, seed % 17);
        let variant = match seed % 3 {
            0 => Variant::Oblivious,
            1 => Variant::Bounded,
            _ => Variant::AdHoc,
        };
        let mut d = Discovery::new(&graph, variant);
        d.run_all(&mut RandomScheduler::seeded(seed)).unwrap();
        d.check_requirements(&graph)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
