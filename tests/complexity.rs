//! Integration tests for the paper's complexity results (Theorems 5–7,
//! Lemmas 5.5–5.10): measured costs stay within the analytic budgets across
//! sizes, densities and schedulers.

use asynchronous_resource_discovery::core::{budgets, Config, Discovery, Variant};
use asynchronous_resource_discovery::graph::gen;
use asynchronous_resource_discovery::netsim::{Metrics, RandomScheduler};
use asynchronous_resource_discovery::union_find::alpha;

fn run(n: usize, extra: usize, variant: Variant, seed: u64) -> (Metrics, u64) {
    let graph = gen::random_weakly_connected(n, extra, seed);
    let mut d = Discovery::new(&graph, variant);
    d.run_all(&mut RandomScheduler::seeded(seed + 1000))
        .expect("livelock");
    d.check_requirements(&graph).expect("requirements");
    (d.runner().metrics().clone(), graph.edge_count() as u64)
}

#[test]
fn budgets_hold_across_sizes_and_densities() {
    for variant in [Variant::Oblivious, Variant::Bounded, Variant::AdHoc] {
        for &n in &[16usize, 64, 256] {
            for &extra in &[n / 2, 2 * n, 6 * n] {
                let (m, e0) = run(n, extra, variant, (n + extra) as u64);
                budgets::check_all(&m, n as u64, e0, variant)
                    .unwrap_or_else(|e| panic!("{variant} n={n} extra={extra}: {e}"));
            }
        }
    }
}

#[test]
fn adhoc_is_cheapest_bounded_next_oblivious_last() {
    // The variants form a cost hierarchy: Ad-hoc (no broadcasts) ≤ Bounded
    // (one final wave) ≤ Oblivious (a wave per merge epoch).
    for seed in 0..5 {
        let (obl, _) = run(256, 512, Variant::Oblivious, seed);
        let (bnd, _) = run(256, 512, Variant::Bounded, seed);
        let (adh, _) = run(256, 512, Variant::AdHoc, seed);
        assert!(adh.total_messages() <= bnd.total_messages(), "seed {seed}");
        assert!(bnd.total_messages() <= obl.total_messages(), "seed {seed}");
    }
}

#[test]
fn per_node_cost_is_flat_for_adhoc() {
    // Theorem 6: O(n·α) presents as linear since α is constant in range.
    let rate = |n: usize| {
        let (m, _) = run(n, 2 * n, Variant::AdHoc, n as u64);
        m.total_messages() as f64 / n as f64
    };
    let small = rate(64);
    let large = rate(1024);
    assert!(
        (large - small).abs() < small * 0.5,
        "per-node cost moved too much: {small:.2} → {large:.2}"
    );
}

#[test]
fn oblivious_stays_within_n_log_n_even_when_dense() {
    for &n in &[64usize, 256] {
        let graph = gen::complete(n);
        let mut d = Discovery::new(&graph, Variant::Oblivious);
        d.run_all(&mut RandomScheduler::seeded(3))
            .expect("livelock");
        d.check_requirements(&graph).expect("requirements");
        budgets::check_theorem_5(d.runner().metrics(), n as u64).unwrap();
        // Message count must not scale with |E0| = n(n−1).
        let m = d.runner().metrics().total_messages();
        assert!(
            m < (n * n / 2) as u64,
            "messages {m} scale with edges on complete K{n}"
        );
    }
}

#[test]
fn bit_complexity_scales_with_e0_log_n_not_e0_log2_n() {
    // Fix n, grow |E0|: bits must grow ~linearly in |E0| with slope ~log n
    // (Lemma 5.9), not faster.
    let n = 256;
    let bits = |extra: usize| {
        let (m, e0) = run(n, extra, Variant::Oblivious, 11);
        (m.total_bits(), e0)
    };
    let (b1, e1) = bits(n);
    let (b2, e2) = bits(8 * n);
    let slope = (b2 - b1) as f64 / (e2 - e1) as f64;
    let log_n = (n as f64).log2();
    assert!(
        slope < 3.0 * log_n + 40.0,
        "bit slope per edge {slope:.1} too steep vs log n = {log_n:.1}"
    );
}

#[test]
fn alpha_term_is_honest() {
    // The α in our budget formulas is tiny for all test sizes; make sure
    // the checks aren't vacuously loose because of a huge α.
    for &n in &[64u64, 1024, 65536] {
        assert!(alpha(n, n) <= 4);
    }
}

#[test]
fn ablated_configs_still_satisfy_requirements() {
    // Ablations degrade complexity, not correctness.
    for config in [
        Config::without_path_compression(),
        Config::without_balanced_queries(),
    ] {
        for variant in [Variant::Oblivious, Variant::Bounded, Variant::AdHoc] {
            let graph = gen::random_weakly_connected(40, 80, 5);
            let mut d = Discovery::with_config(&graph, variant, config);
            d.run_all(&mut RandomScheduler::seeded(6))
                .expect("livelock");
            d.check_requirements(&graph).unwrap();
        }
    }
}

#[test]
fn causal_depth_is_linear_not_quadratic() {
    // Asynchronous wake-up time is Ω(n) (paper §1.2); our causal-depth
    // measure should stay O(n) with a small constant.
    let n = 512;
    let (m, _) = run(n, 2 * n, Variant::Oblivious, 13);
    assert!(m.max_causal_depth() <= 20 * n as u64);
}
