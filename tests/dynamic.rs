//! Integration tests for §6: dynamic node and link additions, and the
//! Ad-hoc probe operation (§4.5.2).

use asynchronous_resource_discovery::core::{Discovery, ProbeStatus, Variant};
use asynchronous_resource_discovery::graph::{gen, KnowledgeGraph};
use asynchronous_resource_discovery::netsim::{FifoScheduler, NodeId, RandomScheduler};

#[test]
fn nodes_join_a_finished_discovery() {
    let graph = gen::random_weakly_connected(20, 40, 1);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    let mut sched = RandomScheduler::seeded(2);
    d.run_all(&mut sched).unwrap();

    for i in 0..5 {
        let peer = NodeId::new(i * 3);
        let newcomer = d.add_node(vec![peer], &mut sched);
        d.run(&mut sched).unwrap();
        assert_eq!(newcomer.index(), 20 + i);
    }
    let final_graph = d.graph().clone();
    d.check_requirements(&final_graph).unwrap();
    assert_eq!(d.leaders().len(), 1);
    // The leader knows all 25 nodes.
    let leader = d.leaders()[0];
    assert_eq!(d.runner().node(leader).done().len(), 25);
}

#[test]
fn links_merge_separate_components() {
    // Two disjoint components; a dynamic link joins them into one.
    let graph = gen::random_multi_component(2, 10, 10, 3);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    let mut sched = RandomScheduler::seeded(4);
    d.run_all(&mut sched).unwrap();
    assert_eq!(d.leaders().len(), 2);

    d.add_link(NodeId::new(0), NodeId::new(10), &mut sched);
    d.run(&mut sched).unwrap();
    let final_graph = d.graph().clone();
    d.check_requirements(&final_graph).unwrap();
    assert_eq!(d.leaders().len(), 1, "the link must merge the components");
    let leader = d.leaders()[0];
    assert_eq!(d.runner().node(leader).done().len(), 20);
}

#[test]
fn duplicate_and_self_links_are_noops() {
    let graph = gen::path(5);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    let mut sched = FifoScheduler::new();
    d.run_all(&mut sched).unwrap();
    let before = d.runner().metrics().total_messages();
    // Already-known edge and self-edge: no traffic.
    d.add_link(NodeId::new(0), NodeId::new(1), &mut sched);
    d.add_link(NodeId::new(2), NodeId::new(2), &mut sched);
    d.run(&mut sched).unwrap();
    assert_eq!(d.runner().metrics().total_messages(), before);
}

#[test]
fn dynamic_additions_work_mid_flight() {
    // Add nodes while the initial discovery is still running.
    let graph = gen::random_weakly_connected(15, 30, 5);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    let mut sched = RandomScheduler::seeded(6);
    d.enqueue_wake_all(&mut sched);
    // Step a little, then inject.
    for _ in 0..20 {
        d.runner_mut().step(&mut sched);
    }
    let newcomer = d.add_node(vec![NodeId::new(3)], &mut sched);
    for _ in 0..10 {
        d.runner_mut().step(&mut sched);
    }
    d.add_link(NodeId::new(7), newcomer, &mut sched);
    d.run(&mut sched).unwrap();
    let final_graph = d.graph().clone();
    d.check_requirements(&final_graph).unwrap();
}

#[test]
fn marginal_cost_beats_rerun() {
    let n = 200;
    let graph = gen::random_weakly_connected(n, 2 * n, 7);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    let mut sched = RandomScheduler::seeded(8);
    d.run_all(&mut sched).unwrap();
    let base = d.runner().metrics().total_messages();
    for i in 0..10 {
        d.add_node(vec![NodeId::new(i)], &mut sched);
        d.run(&mut sched).unwrap();
    }
    let marginal = d.runner().metrics().total_messages() - base;

    let mut fresh = Discovery::new(&d.graph().clone(), Variant::AdHoc);
    fresh.run_all(&mut RandomScheduler::seeded(9)).unwrap();
    let rerun = fresh.runner().metrics().total_messages();
    assert!(
        marginal * 3 < rerun,
        "marginal {marginal} not far below re-run {rerun}"
    );
}

#[test]
fn probes_return_current_snapshots() {
    let graph = gen::random_weakly_connected(30, 60, 10);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    let mut sched = RandomScheduler::seeded(11);
    d.run_all(&mut sched).unwrap();
    for v in 0..30 {
        let snap = d.probe_blocking(NodeId::new(v), &mut sched).unwrap();
        assert_eq!(snap.len(), 30, "probe from n{v}");
    }
}

#[test]
fn leader_probe_is_immediate_and_free() {
    let graph = gen::path(6);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    let mut sched = FifoScheduler::new();
    d.run_all(&mut sched).unwrap();
    let leader = d.leaders()[0];
    let before = d.runner().metrics().total_messages();
    match d.probe(leader, &mut sched) {
        ProbeStatus::Immediate(ids) => assert_eq!(ids.len(), 6),
        ProbeStatus::InFlight => panic!("leader probes answer immediately"),
    }
    assert_eq!(d.runner().metrics().total_messages(), before);
}

#[test]
fn repeated_probes_amortize_to_two_messages() {
    let graph = gen::random_weakly_connected(50, 100, 12);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    let mut sched = RandomScheduler::seeded(13);
    d.run_all(&mut sched).unwrap();
    let v = NodeId::new(17);
    // First probe may pay for path compression…
    d.probe_blocking(v, &mut sched).unwrap();
    // …every later probe from the same node costs exactly 2 messages.
    for _ in 0..5 {
        let before = d.runner().metrics().total_messages();
        d.probe_blocking(v, &mut sched).unwrap();
        let cost = d.runner().metrics().total_messages() - before;
        assert!(cost <= 2, "probe after compression cost {cost}");
    }
}

#[test]
fn probe_snapshot_reflects_dynamic_growth() {
    let graph = gen::ring(8);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    let mut sched = FifoScheduler::new();
    d.run_all(&mut sched).unwrap();
    assert_eq!(
        d.probe_blocking(NodeId::new(0), &mut sched).unwrap().len(),
        8
    );
    d.add_node(vec![NodeId::new(2)], &mut sched);
    d.run(&mut sched).unwrap();
    assert_eq!(
        d.probe_blocking(NodeId::new(0), &mut sched).unwrap().len(),
        9
    );
}

#[test]
fn growing_from_a_single_node() {
    // Start from one node; grow the whole network dynamically.
    let graph = KnowledgeGraph::new(1);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    let mut sched = RandomScheduler::seeded(14);
    d.run_all(&mut sched).unwrap();
    for i in 0..15usize {
        d.add_node(vec![NodeId::new(i / 2)], &mut sched);
        d.run(&mut sched).unwrap();
    }
    let final_graph = d.graph().clone();
    d.check_requirements(&final_graph).unwrap();
    assert_eq!(d.leaders().len(), 1);
    assert_eq!(d.runner().node(d.leaders()[0]).done().len(), 16);
}
