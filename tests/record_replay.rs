//! Acceptance: the record→replay round-trip is *exact*. For every scheduler
//! family and n ∈ {8, 32}, a recorded run and its strict replay on a fresh
//! network produce identical `Metrics` totals (compared via the rendered
//! metrics table, which covers every counter) and identical `Trace` event
//! sequences. This is the property that makes a checked-in schedule file a
//! faithful reproduction of the execution that produced it.

use asynchronous_resource_discovery::core::{Discovery, Variant};
use asynchronous_resource_discovery::graph::gen;
use asynchronous_resource_discovery::netsim::{
    BoundedDelayScheduler, FifoScheduler, LifoScheduler, RandomScheduler, Schedule, Scheduler,
};

fn family(n: usize) -> Vec<(&'static str, Box<dyn Scheduler>)> {
    vec![
        ("fifo", Box::new(FifoScheduler::new())),
        ("lifo", Box::new(LifoScheduler::new())),
        ("random", Box::new(RandomScheduler::seeded(n as u64))),
        (
            "bounded:3",
            Box::new(BoundedDelayScheduler::new(3, n as u64 + 1)),
        ),
        (
            "bounded:9",
            Box::new(BoundedDelayScheduler::new(9, n as u64 + 2)),
        ),
    ]
}

fn record_then_replay(n: usize, label: &str, sched: Box<dyn Scheduler>, variant: Variant) {
    let graph = gen::random_weakly_connected(n, 2 * n, 17);
    let mut original = Discovery::new(&graph, variant);
    original.runner_mut().enable_trace();
    let (result, schedule) = original.run_recorded(sched);
    let recorded = result.unwrap_or_else(|e| panic!("{label} n={n}: {e}"));
    assert_eq!(
        schedule.len() as u64, recorded.steps,
        "{label} n={n}: one recorded choice per executed step"
    );

    // The text format must carry the schedule losslessly.
    let reparsed = Schedule::parse(&schedule.to_text())
        .unwrap_or_else(|e| panic!("{label} n={n}: {e}"));
    assert_eq!(reparsed, schedule, "{label} n={n}: text round-trip");

    let mut fresh = Discovery::new(&graph, variant);
    fresh.runner_mut().enable_trace();
    let replayed = fresh.run_replay(&reparsed).unwrap();

    assert_eq!(replayed.steps, recorded.steps, "{label} n={n}: steps");
    assert_eq!(replayed.leaders, recorded.leaders, "{label} n={n}: leaders");
    assert_eq!(
        replayed.leader_of, recorded.leader_of,
        "{label} n={n}: leader_of"
    );
    assert_eq!(
        format!("{}", replayed.metrics),
        format!("{}", recorded.metrics),
        "{label} n={n}: full metrics table"
    );
    assert_eq!(
        fresh.runner().trace().unwrap().events(),
        original.runner().trace().unwrap().events(),
        "{label} n={n}: trace event sequence"
    );
    fresh
        .check_requirements(&graph)
        .unwrap_or_else(|e| panic!("{label} n={n}: {e}"));
}

#[test]
fn round_trip_is_exact_for_every_scheduler_family() {
    for n in [8usize, 32] {
        for (label, sched) in family(n) {
            record_then_replay(n, label, sched, Variant::AdHoc);
        }
    }
}

#[test]
fn round_trip_holds_across_variants() {
    for variant in [Variant::Oblivious, Variant::Bounded] {
        record_then_replay(8, "random", Box::new(RandomScheduler::seeded(99)), variant);
        record_then_replay(
            32,
            "bounded:5",
            Box::new(BoundedDelayScheduler::new(5, 4)),
            variant,
        );
    }
}
