//! Determinism contract of the parallel explorer and shrinker.
//!
//! The explorer's `--jobs` knob (and the checkpoint/fork prefix reuse
//! behind it) must never change *what* is found — only how fast. These
//! tests pin that contract end to end: explorations and shrinks at
//! `jobs = 1` and `jobs ∈ {2, 4, 8}` must produce byte-identical reports,
//! failing schedules (text form, metadata included) and counters, on
//! clean and fault-injected configurations alike — including the exact
//! configuration that regenerates the corpus crash witness.

use asynchronous_resource_discovery::netsim::explore::{
    explore, explore_fork, fixtures, ExploreConfig, ExploreReport,
};
use asynchronous_resource_discovery::netsim::shrink::shrink_jobs;
use asynchronous_resource_discovery::netsim::{
    FaultPlan, NodeId, ReplayScheduler, Scheduler,
};

use proptest::prelude::*;

/// Renders everything observable about a report: counters plus the full
/// schedule text (choices + metadata) and provenance of any failure.
fn fingerprint(report: &ExploreReport) -> String {
    let failure = report.failure.as_ref().map_or_else(
        || "none".to_string(),
        |f| {
            format!(
                "run {} origin {} reason {}\n{}",
                f.run_index,
                f.origin,
                f.reason,
                f.schedule.to_text()
            )
        },
    );
    format!(
        "runs {} walks {} dfs {} failure {}",
        report.runs, report.random_walks, report.dfs_runs, failure
    )
}

fn racy_config(seed: u64, walks: u64, dfs: u64, depth: usize) -> ExploreConfig {
    ExploreConfig {
        random_walks: walks,
        dfs_budget: dfs,
        dfs_depth: depth,
        seed,
        fault: None,
        ..ExploreConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Exploring the planted-race fixture finds the same thing at any job
    /// count, on closure and checkpoint/fork paths alike.
    #[test]
    fn explore_is_byte_identical_at_any_job_count(
        clients in 2usize..5,
        seed in 0u64..32,
        walks in 0u64..24,
        dfs in 8u64..48,
        depth in 3usize..6,
    ) {
        let base = racy_config(seed, walks, dfs, depth);
        let sequential = explore_fork(&base, &fixtures::RacySystem::new(clients));
        let closure = explore(&base, || {
            |sched: &mut dyn Scheduler| fixtures::run_racy(clients, sched)
        });
        prop_assert_eq!(fingerprint(&sequential), fingerprint(&closure));
        for jobs in [2usize, 4, 8] {
            let config = ExploreConfig { jobs, ..base.clone() };
            let parallel = explore_fork(&config, &fixtures::RacySystem::new(clients));
            prop_assert_eq!(fingerprint(&sequential), fingerprint(&parallel), "jobs={}", jobs);
        }
    }

    /// Same contract under fault injection (the fragile fixture only
    /// breaks when a fault fires, so this exercises the fault layer's
    /// seeding in both search phases).
    #[test]
    fn faulty_explore_is_byte_identical_at_any_job_count(
        seed in 0u64..16,
        walks in 16u64..48,
    ) {
        let base = ExploreConfig {
            random_walks: walks,
            dfs_budget: 16,
            dfs_depth: 4,
            seed,
            fault: Some(FaultPlan::new(1).with_drop(0.25)),
            ..ExploreConfig::default()
        };
        let sequential = explore_fork(&base, &fixtures::FragileSystem::new(2));
        for jobs in [2usize, 4, 8] {
            let config = ExploreConfig { jobs, ..base.clone() };
            let parallel = explore_fork(&config, &fixtures::FragileSystem::new(2));
            prop_assert_eq!(fingerprint(&sequential), fingerprint(&parallel), "jobs={}", jobs);
        }
    }

    /// The shrinker accepts the same candidates in the same order at any
    /// job count — schedule, reason and even the attempts counter match.
    #[test]
    fn shrink_is_byte_identical_at_any_job_count(
        clients in 2usize..5,
        seed in 0u64..16,
    ) {
        let config = racy_config(seed, 32, 32, 4);
        let report = explore(&config, || {
            |sched: &mut dyn Scheduler| fixtures::run_racy(clients, sched)
        });
        let Some(failure) = report.failure else {
            // Some budgets miss the race; nothing to shrink then.
            return Ok(());
        };
        let sequential = shrink_jobs(&failure.schedule, 1, || {
            |sched: &mut dyn Scheduler| fixtures::run_racy(clients, sched)
        });
        for jobs in [2usize, 4, 8] {
            let parallel = shrink_jobs(&failure.schedule, jobs, || {
                |sched: &mut dyn Scheduler| fixtures::run_racy(clients, sched)
            });
            prop_assert_eq!(&parallel.schedule, &sequential.schedule, "jobs={}", jobs);
            prop_assert_eq!(&parallel.reason, &sequential.reason, "jobs={}", jobs);
            prop_assert_eq!(parallel.attempts, sequential.attempts, "jobs={}", jobs);
        }
    }
}

/// The exact configuration `regenerate_fault_corpus` uses to produce the
/// checked-in crash witness: a crash/restart plan searched by random
/// walks. The parallel engine must find the identical witness.
#[test]
fn corpus_crash_witness_search_is_job_count_invariant() {
    let base = ExploreConfig {
        random_walks: 256,
        dfs_budget: 0,
        dfs_depth: 0,
        seed: 0,
        fault: Some(FaultPlan::new(1).with_crash(NodeId::new(0), 2, 2)),
        ..ExploreConfig::default()
    };
    let sequential = explore(&base, || {
        |sched: &mut dyn Scheduler| fixtures::run_fragile(1, sched)
    });
    let failure = sequential
        .failure
        .as_ref()
        .expect("the crash plan must break the fragile fixture");
    let minimized = shrink_jobs(&failure.schedule, 1, || {
        |sched: &mut dyn Scheduler| fixtures::run_fragile(1, sched)
    });
    for jobs in [2usize, 4, 8] {
        let config = ExploreConfig { jobs, ..base.clone() };
        let parallel = explore(&config, || {
            |sched: &mut dyn Scheduler| fixtures::run_fragile(1, sched)
        });
        assert_eq!(fingerprint(&sequential), fingerprint(&parallel), "jobs={jobs}");
        let shrunk = shrink_jobs(
            &parallel.failure.as_ref().unwrap().schedule,
            jobs,
            || |sched: &mut dyn Scheduler| fixtures::run_fragile(1, sched),
        );
        assert_eq!(shrunk.schedule, minimized.schedule, "jobs={jobs}");
        assert_eq!(shrunk.attempts, minimized.attempts, "jobs={jobs}");
    }
}

/// Checkpoint/fork prefix reuse is transparent: on, off, and on-with-
/// verification all produce the same exploration, and the failing
/// schedule still strict-replays to the same failure.
#[test]
fn checkpointing_is_transparent_and_schedules_replay() {
    let base = ExploreConfig {
        random_walks: 0,
        dfs_budget: 96,
        dfs_depth: 6,
        seed: 0,
        fault: None,
        jobs: 4,
        ..ExploreConfig::default()
    };
    let scratch = explore_fork(
        &ExploreConfig { checkpoint: false, ..base.clone() },
        &fixtures::RacySystem::new(3),
    );
    let forked = explore_fork(&base, &fixtures::RacySystem::new(3));
    let verified = explore_fork(
        &ExploreConfig { verify_snapshots: true, ..base },
        &fixtures::RacySystem::new(3),
    );
    assert_eq!(fingerprint(&scratch), fingerprint(&forked));
    assert_eq!(fingerprint(&scratch), fingerprint(&verified));

    let failure = forked.failure.expect("depth-6 dfs finds the race");
    let mut replay = ReplayScheduler::strict(&failure.schedule);
    let err = fixtures::run_racy(3, &mut replay).unwrap_err();
    assert_eq!(err, failure.reason);
}
