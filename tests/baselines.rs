//! Integration tests comparing the paper's algorithms with the §1.1
//! baselines on shared topologies.

use asynchronous_resource_discovery::baselines::{election, flood, name_dropper};
use asynchronous_resource_discovery::core::{Discovery, Variant};
use asynchronous_resource_discovery::graph::gen;
use asynchronous_resource_discovery::netsim::RandomScheduler;

#[test]
fn all_algorithms_agree_on_membership() {
    let n = 40;
    let graph = gen::random_weakly_connected(n, 80, 1);

    // Abraham–Dolev: the leader's done set.
    let mut d = Discovery::new(&graph, Variant::Oblivious);
    d.run_all(&mut RandomScheduler::seeded(2)).unwrap();
    let leader = d.leaders()[0];
    let ard_members = d.runner().node(leader).done().len();

    // Flooding: every node's known set.
    let mut sched = RandomScheduler::seeded(3);
    let (fl, _) = flood::run(&graph, &mut sched, 100_000_000).unwrap();
    let flood_members = fl.node(leader).known().len();

    // Name-Dropper: every node's known set (whp).
    let nd = name_dropper::run(&graph, 4);
    let nd_members = nd.node(leader).known().len();

    assert_eq!(ard_members, n);
    assert_eq!(flood_members, n);
    assert_eq!(nd_members, n);
}

#[test]
fn abraham_dolev_beats_baselines_on_messages_and_bits() {
    let n = 128;
    let graph = gen::random_weakly_connected(n, 3 * n, 5);

    let mut d = Discovery::new(&graph, Variant::AdHoc);
    d.run_all(&mut RandomScheduler::seeded(6)).unwrap();
    let ard = d.runner().metrics().clone();

    let nd = name_dropper::run(&graph, 7);
    let mut sched = RandomScheduler::seeded(8);
    let (fl, _) = flood::run(&graph, &mut sched, 100_000_000).unwrap();

    assert!(ard.total_messages() * 2 < nd.metrics().total_messages());
    assert!(ard.total_messages() * 4 < fl.metrics().total_messages());
    assert!(ard.total_bits() * 10 < nd.metrics().total_bits());
    assert!(ard.total_bits() * 10 < fl.metrics().total_bits());
}

#[test]
fn name_dropper_needs_its_round_budget() {
    // With a starved budget Name-Dropper fails on hard shapes — evidence
    // that it genuinely depends on knowing n (the paper's critique).
    use asynchronous_resource_discovery::baselines::name_dropper::NameDropperNode;
    use asynchronous_resource_discovery::netsim::sync::SyncNetwork;

    let graph = gen::path(40);
    let starved_rounds = 3;
    let nodes: Vec<NameDropperNode> = graph
        .ids()
        .map(|id| NameDropperNode::new(id, graph.out_edges(id).to_vec(), starved_rounds, 1))
        .collect();
    let mut net = SyncNetwork::new(nodes, graph.initial_knowledge());
    net.run(starved_rounds + 2);
    let incomplete = net.nodes().any(|n| n.known().len() < 40);
    assert!(incomplete, "3 rounds cannot complete a 40-node path");
}

#[test]
fn election_agrees_with_discovery_on_strongly_connected_graphs() {
    // On a ring both approaches name a unique coordinator; max-id flooding
    // picks the max id, discovery picks the (phase, id) winner. Both must
    // be *unique and agreed upon*, which is the requirement.
    let graph = gen::ring(30);
    let mut sched = RandomScheduler::seeded(9);
    let runner = election::run(&graph, &mut sched, 1_000_000).unwrap();
    let elected: Vec<_> = runner.nodes().map(|n| n.leader()).collect();
    assert!(elected.windows(2).all(|w| w[0] == w[1]));

    let mut d = Discovery::new(&graph, Variant::AdHoc);
    d.run_all(&mut RandomScheduler::seeded(10)).unwrap();
    assert_eq!(d.leaders().len(), 1);
}

#[test]
fn flooding_bits_blow_up_cubically() {
    // Bits grow ~n³ for flooding vs ~n log² n for the paper's algorithm:
    // doubling n must widen the gap substantially.
    let gap = |n: usize| {
        let graph = gen::random_weakly_connected(n, 2 * n, 11);
        let mut sched = RandomScheduler::seeded(12);
        let (fl, _) = flood::run(&graph, &mut sched, 100_000_000).unwrap();
        let mut d = Discovery::new(&graph, Variant::AdHoc);
        d.run_all(&mut RandomScheduler::seeded(13)).unwrap();
        fl.metrics().total_bits() as f64 / d.runner().metrics().total_bits() as f64
    };
    let small = gap(32);
    let large = gap(128);
    assert!(
        large > 2.0 * small,
        "flooding gap should widen: {small:.1} → {large:.1}"
    );
}
