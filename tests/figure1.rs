//! Figure 1 coverage: the implementation's observed state transitions are
//! exactly the paper's diagram (plus the wake-up edge) — nothing missing,
//! nothing extra.

use std::collections::BTreeMap;

use asynchronous_resource_discovery::core::{
    Discovery, Status, Transition, Variant, EXPECTED_TRANSITIONS,
};
use asynchronous_resource_discovery::graph::gen;
use asynchronous_resource_discovery::netsim::{LifoScheduler, RandomScheduler, Scheduler};

fn collect(counts: &mut BTreeMap<Transition, u64>, d: &Discovery) {
    for node in d.runner().nodes() {
        for &tr in node.transitions() {
            *counts.entry(tr).or_default() += 1;
        }
    }
}

fn sweep() -> BTreeMap<Transition, u64> {
    let mut counts = BTreeMap::new();
    for seed in 0..40u64 {
        for variant in [Variant::Oblivious, Variant::Bounded, Variant::AdHoc] {
            let graphs = [
                gen::random_weakly_connected(20, 50, seed),
                gen::binary_tree_down(4),
                gen::star_in(10),
                gen::complete(8),
            ];
            for graph in graphs {
                let mut d = Discovery::new(&graph, variant);
                let mut sched: Box<dyn Scheduler> = if seed % 5 == 0 {
                    Box::new(LifoScheduler::new())
                } else {
                    Box::new(RandomScheduler::seeded(seed * 977 + 3))
                };
                d.run_all(sched.as_mut()).expect("livelock");
                collect(&mut counts, &d);
            }
        }
    }
    counts
}

#[test]
fn observed_transitions_match_figure_1_exactly() {
    let counts = sweep();
    for &tr in EXPECTED_TRANSITIONS {
        assert!(
            counts.get(&tr).copied().unwrap_or(0) > 0,
            "expected transition never observed: {tr}"
        );
    }
    for tr in counts.keys() {
        assert!(
            EXPECTED_TRANSITIONS.contains(tr),
            "transition outside Figure 1 observed: {tr}"
        );
    }
}

#[test]
fn terminal_states_are_terminal() {
    let counts = sweep();
    // Inactive is absorbing; Asleep is never re-entered.
    for tr in counts.keys() {
        assert_ne!(tr.from, Status::Inactive, "inactive must be terminal: {tr}");
        assert_ne!(tr.to, Status::Asleep, "asleep is never re-entered: {tr}");
    }
}

#[test]
fn every_node_wakes_exactly_once() {
    let graph = gen::random_weakly_connected(25, 50, 3);
    let mut d = Discovery::new(&graph, Variant::Oblivious);
    d.run_all(&mut RandomScheduler::seeded(4)).unwrap();
    for node in d.runner().nodes() {
        let wakes = node
            .transitions()
            .iter()
            .filter(|t| t.from == Status::Asleep)
            .count();
        assert_eq!(wakes, 1, "node {} woke {wakes} times", node.id());
    }
}

#[test]
fn leaders_end_in_wait_and_losers_in_inactive() {
    let graph = gen::random_weakly_connected(25, 50, 5);
    for variant in [Variant::Oblivious, Variant::Bounded, Variant::AdHoc] {
        let mut d = Discovery::new(&graph, variant);
        d.run_all(&mut RandomScheduler::seeded(6)).unwrap();
        for node in d.runner().nodes() {
            let last = node.transitions().last().unwrap().to;
            if node.is_leader() {
                assert_eq!(last, Status::Wait);
            } else {
                assert_eq!(last, Status::Inactive);
            }
        }
    }
}
