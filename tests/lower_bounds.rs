//! Integration tests for the executable lower bounds (Theorems 1 and 2).

use asynchronous_resource_discovery::core::{Discovery, Variant};
use asynchronous_resource_discovery::graph::gen;
use asynchronous_resource_discovery::lower_bounds::{tree_adversary, uf_reduction};
use asynchronous_resource_discovery::netsim::RandomScheduler;
use asynchronous_resource_discovery::union_find::{Op, OpSequence};

#[test]
fn theorem_1_bound_is_forced_on_every_tree() {
    for levels in 2..=10 {
        let r = tree_adversary::run(levels);
        assert!(
            r.messages >= r.bound,
            "T({levels}): {} < bound {}",
            r.messages,
            r.bound
        );
    }
}

#[test]
fn adversary_costs_more_than_benign_schedules() {
    for levels in [6u32, 9] {
        let graph = gen::binary_tree_down(levels);
        let mut d = Discovery::new(&graph, Variant::Oblivious);
        let benign = d
            .run_all(&mut RandomScheduler::seeded(levels as u64))
            .unwrap()
            .metrics
            .total_messages();
        let forced = tree_adversary::run(levels).messages;
        assert!(
            forced > benign,
            "T({levels}): forced {forced} ≤ benign {benign}"
        );
    }
}

#[test]
fn adversarial_per_node_cost_grows_logarithmically() {
    // The signature of Ω(n log n): messages/n grows ~linearly in the depth.
    let rates: Vec<f64> = (4..=10)
        .map(|levels| {
            let r = tree_adversary::run(levels);
            r.messages as f64 / r.n as f64
        })
        .collect();
    for w in rates.windows(2) {
        assert!(
            w[1] > w[0],
            "per-node cost must be strictly increasing: {rates:?}"
        );
    }
    // And roughly affine in depth: growth per level bounded both ways.
    let first_delta = rates[1] - rates[0];
    let last_delta = rates[rates.len() - 1] - rates[rates.len() - 2];
    assert!(last_delta > 0.3 * first_delta && last_delta < 3.0 * first_delta + 1.0);
}

#[test]
fn reduction_network_size_matches_lemma_3_1() {
    // N = 2n − 1 + m for n−1 unions and m finds.
    for (n, m) in [(8usize, 3usize), (32, 10), (100, 55)] {
        let seq = OpSequence::random(n, m, 1);
        let inst = uf_reduction::compile(&seq);
        assert_eq!(inst.graph.len(), 2 * n - 1 + m);
    }
}

#[test]
fn reduction_respects_separation_property() {
    // Nodes of one component never get edges into another: components in
    // the compiled graph correspond to the union-find partition reachable
    // so far. Check the *final* graph's weak components equal 1 (fully
    // merged sequence) plus nothing else.
    use asynchronous_resource_discovery::graph::components;
    let seq = OpSequence::random(30, 10, 4);
    let inst = uf_reduction::compile(&seq);
    assert_eq!(
        components::weakly_connected_components(&inst.graph).len(),
        1
    );
}

#[test]
fn reduction_executes_interleaved_sequences() {
    let seq = OpSequence::new(
        5,
        vec![
            Op::Find(0),
            Op::Union(0, 1),
            Op::Find(1),
            Op::Union(2, 3),
            Op::Find(3),
            Op::Union(1, 2),
            Op::Union(4, 0),
            Op::Find(4),
        ],
    );
    let out = uf_reduction::run(&seq);
    assert_eq!(out.network_size, 2 * 5 - 1 + 4);
    assert!(out.messages > 0);
}

#[test]
fn reduction_cost_tracks_n_alpha() {
    // messages / (N·α) stays within a constant band as N grows.
    let ratio = |n: usize| {
        let seq = OpSequence::random(n, n / 2, 2);
        let out = uf_reduction::run(&seq);
        out.messages as f64 / out.n_alpha as f64
    };
    let r1 = ratio(64);
    let r2 = ratio(512);
    assert!(r2 < 2.0 * r1 + 1.0, "ratio drifted: {r1:.2} → {r2:.2}");
}

#[test]
fn freeze_scheduler_generalizes_beyond_trees() {
    // Freezing arbitrary nodes of a random graph must not break
    // correctness — only reorder (and potentially inflate) the execution.
    use asynchronous_resource_discovery::netsim::NodeId;
    let graph = gen::random_weakly_connected(20, 40, 8);
    let thaw: Vec<NodeId> = (0..10).map(NodeId::new).collect();
    let mut sched = tree_adversary::FreezeScheduler::new(20, thaw);
    let mut d = Discovery::new(&graph, Variant::Oblivious);
    d.run_all(&mut sched).expect("livelock");
    d.check_requirements(&graph).unwrap();
}
