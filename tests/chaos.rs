//! Chaos tier: seed-pinned fault-injection matrix.
//!
//! Every cell runs full discovery on a random weakly-connected graph under
//! a [`FaultPlan`] — lossy links, duplicating links, crash/restart churn —
//! with every node wrapped in the reliable-delivery layer, and asserts the
//! paper's §1.2 requirements at quiescence plus the §5 budgets net of the
//! metered retransmission overhead. The matrix crosses:
//!
//! * fault level: drop 0.01 / 0.1 / 0.3, dup 0.05, 1–3 crash/restarts;
//! * problem variant: Oblivious, Bounded, Ad-hoc;
//! * inner scheduler: fifo, random, bounded-delay 5;
//! * network size: n ∈ {8, 32}.
//!
//! Everything is seeded from the cell index, so a failure names its exact
//! cell and reproduces deterministically.
//!
//! A second matrix crosses the *Byzantine* fault alphabet — equivocating,
//! fabricating, silent and stale-restarting traitors at f ∈ {1, 2} — with
//! membership churn (join/leave) on the bare Byzantine-tolerant protocol,
//! again at n ∈ {8, 32}. Those cells assert quiescence, plan fidelity and
//! strict byte-exact replay; which *guarantees* survive each cell is
//! pinned separately in `tests/survival_matrix.rs`.

use asynchronous_resource_discovery::core::{
    budgets, ByzantineOutcome, Discovery, FaultyOutcome, Variant,
};
use asynchronous_resource_discovery::graph::gen;
use asynchronous_resource_discovery::netsim::{
    BoundedDelayScheduler, ByzantinePlan, ChurnPlan, FaultPlan, FifoScheduler, RandomScheduler,
    Schedule, Scheduler,
};

/// Fault levels of the matrix: (drop probability, crash/restart events).
const LEVELS: [(f64, usize); 3] = [(0.01, 1), (0.1, 2), (0.3, 3)];
const VARIANTS: [Variant; 3] = [Variant::Oblivious, Variant::Bounded, Variant::AdHoc];
const SCHEDULERS: [&str; 3] = ["fifo", "random", "bounded"];

fn make_scheduler(kind: &str, seed: u64) -> Box<dyn Scheduler> {
    match kind {
        "fifo" => Box::new(FifoScheduler::new()),
        "random" => Box::new(RandomScheduler::seeded(seed)),
        "bounded" => Box::new(BoundedDelayScheduler::new(5, seed)),
        other => panic!("unknown scheduler kind {other}"),
    }
}

/// Runs one matrix cell and applies the shared assertions. Returns the
/// outcome and recorded schedule for cells that want extra checks.
fn run_cell(
    n: usize,
    drop: f64,
    crashes: usize,
    variant: Variant,
    sched_kind: &str,
    cell: u64,
) -> (FaultyOutcome, Schedule) {
    let name = format!("n={n} drop={drop} crashes={crashes} {variant} {sched_kind} cell={cell}");
    let graph = gen::random_weakly_connected(n, 2 * n, cell);
    let plan = FaultPlan::new(1000 + cell)
        .with_drop(drop)
        .with_dup(0.05)
        .with_spread_crashes(crashes, n);
    let sched = make_scheduler(sched_kind, 2000 + cell);
    let (result, schedule) = Discovery::run_faulty(&graph, variant, &plan, sched);
    let outcome = result.unwrap_or_else(|e| panic!("{name}: {e}"));

    // Requirements already checked inside run_faulty; re-assert the shape.
    assert_eq!(outcome.leaders.len(), 1, "{name}: single component");
    assert_eq!(outcome.faults.crashes as usize, crashes, "{name}: crashes");
    assert_eq!(outcome.faults.restarts as usize, crashes, "{name}: restarts");

    // Budgets hold net of the explicitly metered recovery overhead.
    budgets::check_all_faulty(
        &outcome.metrics,
        graph.len() as u64,
        graph.edge_count() as u64,
        variant,
    )
    .unwrap_or_else(|e| panic!("{name}: {e}"));

    // Retransmit-count sanity: recovery traffic reacts to injected loss but
    // stays a bounded fraction of the total (drop < 1 keeps expected
    // attempts per message O(1), and the capped backoff keeps spurious
    // retransmissions rare).
    if drop >= 0.1 {
        assert!(outcome.faults.drops > 0, "{name}: plan injected no drops");
        assert!(
            outcome.retransmits > 0,
            "{name}: sustained loss must force retransmissions"
        );
    }
    assert!(
        outcome.retransmits <= outcome.metrics.total_messages() / 2,
        "{name}: {} retransmits of {} total messages",
        outcome.retransmits,
        outcome.metrics.total_messages()
    );
    (outcome, schedule)
}

fn run_matrix(n: usize) {
    let mut cell = n as u64;
    for (drop, crashes) in LEVELS {
        for variant in VARIANTS {
            for sched_kind in SCHEDULERS {
                cell += 1;
                run_cell(n, drop, crashes, variant, sched_kind, cell);
            }
        }
    }
}

#[test]
fn chaos_matrix_small_networks() {
    run_matrix(8);
}

#[test]
fn chaos_matrix_medium_networks() {
    run_matrix(32);
}

/// The harshest cell replays byte-exactly: the recorded schedule, re-run
/// without any fault machinery or RNG, reproduces the identical step count
/// and metrics table.
#[test]
fn harshest_cell_replays_byte_exactly() {
    let n = 32;
    let (outcome, schedule) = run_cell(n, 0.3, 3, Variant::AdHoc, "random", 9_999);
    let graph = gen::random_weakly_connected(n, 2 * n, 9_999);
    let replayed = Discovery::replay_faulty(&graph, Variant::AdHoc, &schedule)
        .expect("recorded faulty schedule replays");
    assert_eq!(replayed.steps, outcome.steps);
    assert_eq!(replayed.steps, schedule.len() as u64);
    assert_eq!(replayed.leaders, outcome.leaders);
    assert_eq!(
        format!("{}", replayed.metrics),
        format!("{}", outcome.metrics),
        "metrics tables must be identical under replay"
    );
}

/// Fault classes of the Byzantine chaos matrix.
const BYZ_CLASSES: [&str; 4] = ["equivocate", "fabricate", "silence", "stale-restart"];

/// Runs one Byzantine × churn chaos cell on the *bare* protocol (no
/// reliable-delivery layer — Byzantine tolerance is a property of the
/// conquest engine itself) and applies the shared sanity assertions.
/// Guarantee survival is *not* asserted here — that classification lives
/// in `tests/survival_matrix.rs`; chaos cells assert that every run
/// quiesces, injects what its plan promises, and records a strict,
/// byte-exact replayable schedule.
fn run_byzantine_cell(
    n: usize,
    f: usize,
    class: &str,
    churn_rate: f64,
    cell: u64,
) -> (ByzantineOutcome, Schedule) {
    let name = format!("n={n} f={f} class={class} churn={churn_rate} cell={cell}");
    let graph = gen::random_weakly_connected(n, 2 * n, cell);
    let byz = ByzantinePlan::new(3_000 + cell, f).only(class);
    let churn = (churn_rate > 0.0).then(|| ChurnPlan::new(4_000 + cell, churn_rate));
    let (result, schedule) = Discovery::run_byzantine(
        &graph,
        Variant::AdHoc,
        Some(&byz),
        churn.as_ref(),
        RandomScheduler::seeded(5_000 + cell),
    );
    let outcome = result.unwrap_or_else(|e| panic!("{name}: {e}"));

    assert_eq!(outcome.steps, schedule.len() as u64, "{name}: steps");
    assert_eq!(
        outcome.byzantine_nodes.len(),
        f.min(n),
        "{name}: traitor count"
    );
    match class {
        "equivocate" | "fabricate" => assert!(
            outcome.byzantine.forged + outcome.byzantine.forge_noops > 0,
            "{name}: forgery classes must actually forge"
        ),
        "stale-restart" => assert_eq!(
            outcome.byzantine.stale_restarts as usize,
            f.min(n),
            "{name}: one stale restart per traitor"
        ),
        _ => {}
    }
    if let Some(plan) = &churn {
        assert_eq!(outcome.joined.len(), plan.joiners(n).len(), "{name}: joins");
        assert_eq!(outcome.left.len(), plan.leavers(n).len(), "{name}: leaves");
    } else {
        assert!(outcome.joined.is_empty() && outcome.left.is_empty(), "{name}");
    }
    (outcome, schedule)
}

/// The Byzantine chaos matrix: {f = 1, 2} × four fault classes × churn
/// off/on, at a given network size. Every cell quiesces and honors its
/// plan; one aggregate check makes sure the silence class actually bites
/// somewhere in the matrix (per-cell silenced counts are legitimately
/// zero when the traitor happens to send little).
fn run_byzantine_matrix(n: usize) {
    let mut cell = 600 + n as u64;
    let mut silenced_total = 0u64;
    for f in [1usize, 2] {
        for class in BYZ_CLASSES {
            for churn_rate in [0.0, 0.05] {
                cell += 1;
                let (outcome, _) = run_byzantine_cell(n, f, class, churn_rate, cell);
                silenced_total += outcome.byzantine.silenced;
            }
        }
    }
    assert!(
        silenced_total > 0,
        "n={n}: the silence class never silenced a single send across the matrix"
    );
}

#[test]
fn byzantine_matrix_small_networks() {
    run_byzantine_matrix(8);
}

#[test]
fn byzantine_matrix_medium_networks() {
    run_byzantine_matrix(32);
}

/// The harshest Byzantine cell — two traitors, all four fault classes at
/// once, plus membership churn on the medium network — replays strictly
/// and byte-exactly: same steps, same leaders, same metrics table, same
/// injected-event counts, with no plan RNG involved on the replay side.
#[test]
fn harshest_byzantine_cell_replays_byte_exactly() {
    let n = 32;
    let graph = gen::random_weakly_connected(n, 2 * n, 8_888);
    let byz = ByzantinePlan::new(8_888, 2);
    let churn = ChurnPlan::new(8_889, 0.1);
    let (result, schedule) = Discovery::run_byzantine(
        &graph,
        Variant::AdHoc,
        Some(&byz),
        Some(&churn),
        RandomScheduler::seeded(8_890),
    );
    let outcome = result.expect("harshest Byzantine cell quiesces");
    let replayed = Discovery::replay_byzantine(&graph, Variant::AdHoc, &schedule)
        .expect("recorded Byzantine schedule replays");
    assert_eq!(replayed.steps, outcome.steps);
    assert_eq!(replayed.leaders, outcome.leaders);
    assert_eq!(replayed.byzantine, outcome.byzantine);
    assert_eq!(replayed.joined, outcome.joined);
    assert_eq!(replayed.left, outcome.left);
    assert_eq!(
        format!("{}", replayed.metrics),
        format!("{}", outcome.metrics),
        "metrics tables must be identical under replay"
    );
}

/// Crash churn alone (no link faults) is survivable: messages to a crashed
/// node are discarded by the runner, so delivery still leans on the
/// retransmission layer even with loss-free links.
#[test]
fn pure_crash_churn_is_survivable() {
    for (seed, variant) in [(1u64, Variant::Oblivious), (2, Variant::Bounded), (3, Variant::AdHoc)]
    {
        let graph = gen::random_weakly_connected(16, 32, seed);
        let plan = FaultPlan::new(seed).with_spread_crashes(3, 16);
        let (result, _) =
            Discovery::run_faulty(&graph, variant, &plan, RandomScheduler::seeded(seed + 50));
        let outcome = result.unwrap_or_else(|e| panic!("variant {variant}: {e}"));
        assert_eq!(outcome.faults.crashes, 3);
        assert_eq!(outcome.faults.drops, 0, "no link faults in this plan");
    }
}
