//! Cross-crate integration tests: the §1.2 requirements hold for every
//! variant, across topologies and schedulers.

use asynchronous_resource_discovery::core::{invariants, Discovery, Variant};
use asynchronous_resource_discovery::graph::{components, gen, KnowledgeGraph};
use asynchronous_resource_discovery::netsim::{
    FifoScheduler, LifoScheduler, NodeId, RandomScheduler, Scheduler,
};

const VARIANTS: [Variant; 3] = [Variant::Oblivious, Variant::Bounded, Variant::AdHoc];

fn run_and_check(graph: &KnowledgeGraph, variant: Variant, sched: &mut dyn Scheduler) -> Discovery {
    let mut d = Discovery::new(graph, variant);
    d.run_all(sched).expect("livelock");
    d.check_requirements(graph)
        .unwrap_or_else(|e| panic!("{variant} on {graph:?}: {e}"));
    d
}

#[test]
fn all_variants_on_all_topologies_fifo() {
    let topologies: Vec<(&str, KnowledgeGraph)> = vec![
        ("singleton", KnowledgeGraph::new(1)),
        ("pair", gen::path(2)),
        ("path", gen::path(20)),
        ("ring", gen::ring(20)),
        ("star_out", gen::star_out(20)),
        ("star_in", gen::star_in(20)),
        ("tree", gen::binary_tree_down(5)),
        ("complete", gen::complete(12)),
        ("random", gen::random_weakly_connected(30, 60, 1)),
    ];
    for (name, graph) in &topologies {
        for variant in VARIANTS {
            let _ = name;
            run_and_check(graph, variant, &mut FifoScheduler::new());
        }
    }
}

#[test]
fn all_variants_survive_lifo_reordering() {
    for variant in VARIANTS {
        for graph in [
            gen::path(15),
            gen::ring(15),
            gen::random_weakly_connected(25, 50, 2),
        ] {
            run_and_check(&graph, variant, &mut LifoScheduler::new());
        }
    }
}

#[test]
fn many_random_schedules() {
    let graph = gen::random_weakly_connected(40, 100, 9);
    for variant in VARIANTS {
        for seed in 0..25 {
            run_and_check(&graph, variant, &mut RandomScheduler::seeded(seed));
        }
    }
}

#[test]
fn multi_component_networks_elect_one_leader_each() {
    for seed in 0..5 {
        let graph = gen::random_multi_component(4, 9, 12, seed);
        for variant in VARIANTS {
            let d = run_and_check(&graph, variant, &mut RandomScheduler::seeded(seed + 50));
            assert_eq!(d.leaders().len(), 4);
        }
    }
}

#[test]
fn isolated_nodes_lead_themselves() {
    // No edges at all: every node is its own component and leader.
    let graph = KnowledgeGraph::new(7);
    for variant in VARIANTS {
        let d = run_and_check(&graph, variant, &mut FifoScheduler::new());
        assert_eq!(d.leaders().len(), 7);
    }
}

#[test]
fn staggered_wakeups_match_simultaneous() {
    // Wake nodes one at a time, running to quiescence in between — the
    // algorithm must still satisfy the requirements (no global start).
    let graph = gen::random_weakly_connected(20, 40, 4);
    for variant in VARIANTS {
        let mut d = Discovery::new(&graph, variant);
        let mut sched = FifoScheduler::new();
        for v in 0..20 {
            d.wake_now(NodeId::new(v), &mut sched);
            d.run(&mut sched).expect("livelock");
        }
        d.check_requirements(&graph).unwrap();
    }
}

#[test]
fn sleeping_region_is_woken_by_messages() {
    // Only wake node 0 of a directed path: discovery must cascade through
    // message-triggered wake-ups and still satisfy the requirements.
    let graph = gen::path(12);
    for variant in VARIANTS {
        let mut d = Discovery::new(&graph, variant);
        let mut sched = FifoScheduler::new();
        d.wake_now(NodeId::new(0), &mut sched);
        d.run(&mut sched).expect("livelock");
        // Nodes with no inbound knowledge may stay asleep only if
        // unreachable; on a path from node 0 everyone is reachable.
        assert!(d.runner().ids().all(|v| d.runner().is_awake(v)));
        d.check_requirements(&graph).unwrap();
    }
}

#[test]
fn stepwise_invariants_hold_on_adversarial_lifo() {
    for variant in VARIANTS {
        let graph = gen::random_weakly_connected(15, 30, 3);
        let mut d = Discovery::new(&graph, variant);
        let mut sched = LifoScheduler::new();
        d.enqueue_wake_all(&mut sched);
        while d.runner_mut().step(&mut sched) {
            invariants::check_step_invariants(d.runner(), &graph).unwrap();
        }
        d.check_requirements(&graph).unwrap();
    }
}

#[test]
fn leader_is_the_lexicographic_maximum_on_equal_phases() {
    // On a complete graph the winner must be a node that can never lose a
    // comparison; with FIFO scheduling from a cold start this is always
    // resolved consistently, and the final leader's (phase, id) dominates.
    let graph = gen::complete(10);
    let d = run_and_check(&graph, Variant::Oblivious, &mut FifoScheduler::new());
    let leader = d.leaders()[0];
    let leader_node = d.runner().node(leader);
    for v in d.runner().nodes() {
        assert!(
            (leader_node.phase(), leader_node.id()) >= (v.phase(), v.id()),
            "leader {leader} does not dominate {}",
            v.id()
        );
    }
}

#[test]
fn quiescent_components_are_knowledge_closed() {
    // After discovery, the leader's done set equals the weak component even
    // when components have very different shapes.
    let a = gen::path(6);
    let b = gen::complete(5);
    let c = gen::star_in(4);
    let graph = a.disjoint_union(&b).disjoint_union(&c);
    let d = run_and_check(&graph, Variant::AdHoc, &mut RandomScheduler::seeded(12));
    let comps = components::weakly_connected_components(&graph);
    assert_eq!(d.leaders().len(), comps.len());
    for leader in d.leaders() {
        let members = d.runner().node(leader).done();
        let comp = comps.iter().find(|c| c.contains(&leader)).unwrap();
        assert_eq!(members.len(), comp.len());
    }
}
