//! Extension experiments beyond the paper: recovery from node resets and
//! removals (named as an open question in the paper's §7, motivated in its
//! §1: "The first step toward rebuilding such a system is discovering and
//! regrouping all the currently online nodes").

use asynchronous_resource_discovery::core::{Discovery, Variant};
use asynchronous_resource_discovery::graph::{components, gen};
use asynchronous_resource_discovery::netsim::{NodeId, RandomScheduler};

/// Run discovery, crash most nodes, restart discovery over the survivors'
/// accumulated knowledge, and verify the survivors regroup.
#[test]
fn survivors_regroup_after_mass_crash() {
    let n = 60;
    let graph = gen::random_weakly_connected(n, 2 * n, 1);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    d.run_all(&mut RandomScheduler::seeded(2)).unwrap();

    // Crash two thirds of the nodes; every third node survives.
    let survivors: Vec<NodeId> = (0..n).step_by(3).map(NodeId::new).collect();
    let (survivor_graph, mapping) = d.survivor_graph(&survivors);
    assert_eq!(survivor_graph.len(), survivors.len());
    assert_eq!(mapping, survivors);

    let mut recovery = Discovery::new(&survivor_graph, Variant::AdHoc);
    recovery.run_all(&mut RandomScheduler::seeded(3)).unwrap();
    recovery.check_requirements(&survivor_graph).unwrap();

    // Because the pre-crash leader knew everyone, survivors that belonged to
    // the same pre-crash component stay findable: components of the
    // survivor graph partition them, and each gets exactly one new leader.
    let comps = components::weakly_connected_components(&survivor_graph);
    assert_eq!(recovery.leaders().len(), comps.len());
}

/// If the pre-crash leader survives, its knowledge keeps the survivor graph
/// connected, so recovery always ends with a single leader.
#[test]
fn surviving_leader_guarantees_one_component() {
    let n = 40;
    let graph = gen::random_weakly_connected(n, n, 4);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    d.run_all(&mut RandomScheduler::seeded(5)).unwrap();
    let leader = d.leaders()[0];

    // Survivors: the leader plus every fourth node.
    let mut survivors: Vec<NodeId> = (0..n).step_by(4).map(NodeId::new).collect();
    if !survivors.contains(&leader) {
        survivors.push(leader);
    }
    let (survivor_graph, _) = d.survivor_graph(&survivors);
    // The leader knows every survivor, so the graph is weakly connected.
    assert!(components::is_weakly_connected(&survivor_graph));

    let mut recovery = Discovery::new(&survivor_graph, Variant::AdHoc);
    recovery.run_all(&mut RandomScheduler::seeded(6)).unwrap();
    recovery.check_requirements(&survivor_graph).unwrap();
    assert_eq!(recovery.leaders().len(), 1);
}

/// Repeated crash/recover cycles keep working (each run's knowledge feeds
/// the next).
#[test]
fn repeated_crash_cycles() {
    let mut graph = gen::random_weakly_connected(48, 96, 7);
    let mut population: Vec<NodeId> = (0..48).map(NodeId::new).collect();
    for round in 0..3 {
        let mut d = Discovery::new(&graph, Variant::AdHoc);
        d.run_all(&mut RandomScheduler::seeded(round)).unwrap();
        d.check_requirements(&graph).unwrap();
        // Keep the even-indexed half.
        let survivors: Vec<NodeId> = (0..graph.len()).step_by(2).map(NodeId::new).collect();
        let (next_graph, mapping) = d.survivor_graph(&survivors);
        population = mapping.iter().map(|v| population[v.index()]).collect();
        graph = next_graph;
    }
    assert_eq!(graph.len(), 6);
    assert_eq!(population.len(), 6);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    d.run_all(&mut RandomScheduler::seeded(99)).unwrap();
    d.check_requirements(&graph).unwrap();
}

/// Recovery cost is a fresh run over the (smaller) survivor set — far below
/// the original discovery when few nodes survive.
#[test]
fn recovery_cost_scales_with_survivors() {
    let n = 200;
    let graph = gen::random_weakly_connected(n, 3 * n, 8);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    d.run_all(&mut RandomScheduler::seeded(9)).unwrap();
    let full_cost = d.runner().metrics().total_messages();

    let survivors: Vec<NodeId> = (0..n).step_by(10).map(NodeId::new).collect();
    let (survivor_graph, _) = d.survivor_graph(&survivors);
    let mut recovery = Discovery::new(&survivor_graph, Variant::AdHoc);
    recovery.run_all(&mut RandomScheduler::seeded(10)).unwrap();
    let recovery_cost = recovery.runner().metrics().total_messages();
    assert!(
        recovery_cost * 5 < full_cost,
        "recovering {} survivors cost {recovery_cost}, original {full_cost}",
        survivors.len()
    );
}
