//! Seed-pinned regression suite: replays every checked-in schedule file
//! under `tests/corpus/` and asserts the recorded behavior still holds.
//!
//! Three kinds of corpus entries, dispatched on metadata:
//!
//! * **discovery schedules** (`topology` + `variant` meta) — complete
//!   recorded runs of the discovery protocol; replay must quiesce, satisfy
//!   the §1.2 requirements and the §5 budgets, and (when pinned) execute
//!   exactly the recorded number of steps;
//! * **fault schedules** (additionally `faults` meta) — recorded runs
//!   under fault injection (drops, duplicates, crash/restart churn) with
//!   every node wrapped in the reliable-delivery layer; replay is strict
//!   and byte-exact — the fault choices are in the schedule, no fault
//!   machinery or RNG is involved — and must satisfy the requirements and
//!   the budgets net of the metered retransmission overhead;
//! * **failure schedules** (`system racy:K` / `system fragile:K` /
//!   `system equiv:K` meta) — minimized schedules of the planted-bug
//!   fixtures, found by `ard explore` and shrunk; replay must still
//!   reproduce the violation, proving the explorer/shrinker pipeline's
//!   artifacts stay valid. The fragile entry is a *crash-triggered*
//!   witness (its minimized choice sequence still contains the crash that
//!   loses the planted ping); the equiv entry is a *forgery-triggered*
//!   witness — a `forge` choice is what elects the second leader;
//! * **Byzantine schedules** (`byzantine` and/or `churn` meta alongside
//!   `topology`) — recorded guarantee-violation witnesses of the bare
//!   protocol under traitors and membership churn; replay is strict (all
//!   injected events are in the choice stream) and must reproduce at
//!   least one survivor-guarantee violation, backing the "fails" cells of
//!   the survival matrix (`tests/survival_matrix.rs`).
//!
//! To regenerate the discovery, fault and Byzantine entries after an
//! intentional engine change:
//! `cargo test --test replay_corpus regenerate -- --ignored`,
//! then review the diff. The racy entry is regenerated with
//! `ard explore --system racy:3 --out tests/corpus/racy-minimized.schedule`.

use std::path::PathBuf;

use ard_cli::spec;
use asynchronous_resource_discovery::core::{budgets, Discovery};
use asynchronous_resource_discovery::netsim::explore::fixtures;
use asynchronous_resource_discovery::netsim::{Choice, ReplayScheduler, Schedule, Scheduler};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "schedule"))
        .collect();
    files.sort();
    files
}

fn load(path: &PathBuf) -> Schedule {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    Schedule::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn corpus_is_present_and_mixed() {
    let files = corpus_files();
    assert!(
        files.len() >= 9,
        "expected a seeded corpus, found {} files",
        files.len()
    );
    let schedules: Vec<Schedule> = files.iter().map(load).collect();
    assert!(
        schedules.iter().any(|s| s.meta("system").is_some()),
        "corpus needs at least one minimized failure schedule"
    );
    assert!(
        schedules.iter().any(|s| s.meta("topology").is_some()),
        "corpus needs at least one discovery schedule"
    );
    assert!(
        schedules.iter().any(|s| s.meta("faults").is_some()),
        "corpus needs at least one fault schedule"
    );
    assert!(
        schedules
            .iter()
            .any(|s| s.meta("system").is_some_and(|v| v.starts_with("fragile:"))),
        "corpus needs the crash-triggered fragile witness"
    );
    assert!(
        schedules
            .iter()
            .any(|s| s.meta("system").is_some_and(|v| v.starts_with("equiv:"))),
        "corpus needs the forgery-triggered equivocation witness"
    );
    assert!(
        schedules
            .iter()
            .any(|s| s.meta("byzantine").is_some() && s.meta("churn").is_some()),
        "corpus needs a Byzantine + churn guarantee-violation witness"
    );
}

/// Format back-compat: every corpus file round-trips byte-identically
/// through parse → serialize, and the pre-PR v1 entries stay v1 — the v2
/// Byzantine/churn alphabet must not disturb schedules that use none of
/// its choices.
#[test]
fn corpus_files_round_trip_byte_identically() {
    for path in corpus_files() {
        let name = path.display();
        let text = std::fs::read_to_string(&path).unwrap();
        let schedule = Schedule::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            schedule.to_text(),
            text,
            "{name}: parse → to_text must be the identity on checked-in files"
        );
        let uses_v2 = schedule.choices().iter().any(|c| {
            matches!(
                c,
                Choice::Forge { .. }
                    | Choice::Silence { .. }
                    | Choice::StaleRestart(_)
                    | Choice::Join(_)
                    | Choice::Leave(_)
            )
        });
        let header = text.lines().next().unwrap_or_default();
        if uses_v2 {
            assert_eq!(header, "ard-schedule v2", "{name}: v2 choices need the v2 header");
        } else {
            assert_eq!(
                header, "ard-schedule v1",
                "{name}: schedules without v2 choices must stay in format v1"
            );
        }
    }
}

#[test]
fn every_corpus_schedule_replays_and_still_holds() {
    for path in corpus_files() {
        let name = path.display();
        let schedule = load(&path);
        if let Some(system) = schedule.meta("system") {
            let (kind, clients) = system
                .split_once(':')
                .unwrap_or_else(|| panic!("{name}: bad system meta `{system}`"));
            let clients: usize = clients
                .parse()
                .unwrap_or_else(|_| panic!("{name}: bad system meta `{system}`"));
            let mut sched = ReplayScheduler::strict(&schedule);
            let (violation, needle) = match kind {
                "racy" => (
                    fixtures::run_racy(clients, &mut sched)
                        .expect_err("a checked-in failure schedule must still fail"),
                    "highest-id client",
                ),
                "fragile" => {
                    assert!(
                        schedule
                            .choices()
                            .iter()
                            .any(|c| matches!(c, Choice::Crash(_))),
                        "{name}: the fragile witness must stay crash-triggered"
                    );
                    (
                        fixtures::run_fragile(clients, &mut sched)
                            .expect_err("a checked-in failure schedule must still fail"),
                        "pong",
                    )
                }
                "equiv" => {
                    assert!(
                        schedule
                            .choices()
                            .iter()
                            .any(|c| matches!(c, Choice::Forge { .. })),
                        "{name}: the equivocation witness must stay forgery-triggered"
                    );
                    (
                        fixtures::run_equiv(clients, &mut sched)
                            .expect_err("a checked-in failure schedule must still fail"),
                        "forged endorsements",
                    )
                }
                other => panic!("{name}: unknown fixture `{other}`"),
            };
            assert!(
                violation.contains(needle),
                "{name}: unexpected violation `{violation}`"
            );
            continue;
        }
        let topology = schedule
            .meta("topology")
            .unwrap_or_else(|| panic!("{name}: discovery schedule without topology meta"));
        let variant = spec::parse_variant(schedule.meta("variant").expect("variant meta"))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let graph = spec::parse_topology(topology).unwrap_or_else(|e| panic!("{name}: {e}"));
        if schedule.meta("byzantine").is_some() || schedule.meta("churn").is_some() {
            let outcome = Discovery::replay_byzantine(&graph, variant, &schedule)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(
                outcome.steps,
                schedule.len() as u64,
                "{name}: Byzantine replay executed every recorded choice"
            );
            if let Some(steps) = schedule.meta("steps") {
                assert_eq!(steps, outcome.steps.to_string(), "{name}: pinned step count");
            }
            assert!(
                !outcome.survives_all(),
                "{name}: a Byzantine corpus witness must reproduce a guarantee violation"
            );
            assert!(
                outcome.byzantine.forged > 0
                    || outcome.byzantine.silenced > 0
                    || !outcome.left.is_empty(),
                "{name}: the witness should actually contain adversarial events"
            );
            continue;
        }
        if schedule.meta("faults").is_some() {
            let outcome = Discovery::replay_faulty(&graph, variant, &schedule)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(
                outcome.steps,
                schedule.len() as u64,
                "{name}: faulty replay executed every recorded choice"
            );
            if let Some(steps) = schedule.meta("steps") {
                assert_eq!(steps, outcome.steps.to_string(), "{name}: pinned step count");
            }
            assert!(
                outcome.faults.any(),
                "{name}: a fault schedule should actually contain faults"
            );
            budgets::check_all_faulty(
                &outcome.metrics,
                graph.len() as u64,
                graph.edge_count() as u64,
                variant,
            )
            .unwrap_or_else(|e| panic!("{name}: faulty budgets: {e}"));
            continue;
        }
        let mut d = Discovery::new(&graph, variant);
        let outcome = d
            .run_replay(&schedule)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            outcome.steps,
            schedule.len() as u64,
            "{name}: replay executed every recorded choice"
        );
        if let Some(steps) = schedule.meta("steps") {
            assert_eq!(steps, outcome.steps.to_string(), "{name}: pinned step count");
        }
        d.check_requirements(&graph)
            .unwrap_or_else(|e| panic!("{name}: requirements: {e}"));
        budgets::check_all(
            &outcome.metrics,
            graph.len() as u64,
            graph.edge_count() as u64,
            variant,
        )
        .unwrap_or_else(|e| panic!("{name}: budgets: {e}"));
    }
}

/// The discovery entries of the corpus: name, topology spec, variant and a
/// scheduler constructor. Kept in one place so regeneration and review stay
/// trivial.
fn discovery_corpus() -> Vec<(&'static str, &'static str, &'static str, Box<dyn Scheduler>)> {
    use asynchronous_resource_discovery::netsim::{
        BoundedDelayScheduler, LifoScheduler, RandomScheduler,
    };
    vec![
        (
            "ring-12-adhoc-random.schedule",
            "ring:12",
            "adhoc",
            Box::new(RandomScheduler::seeded(7)),
        ),
        (
            "random-16-oblivious-bounded.schedule",
            "random:n=16,extra=24,seed=2",
            "oblivious",
            Box::new(BoundedDelayScheduler::new(3, 5)),
        ),
        (
            "components-2x5-bounded-lifo.schedule",
            "components:count=2,per=5,extra=5,seed=1",
            "bounded",
            Box::new(LifoScheduler::new()),
        ),
        (
            "tree-4-adhoc-random.schedule",
            "tree:4",
            "adhoc",
            Box::new(RandomScheduler::seeded(23)),
        ),
    ]
}

/// Regenerates the discovery corpus files in place. Ignored by default:
/// run it deliberately after an intentional engine change and review the
/// resulting diff like any other pinned-output update.
/// Regenerates the fault-schedule corpus entries in place: a complete
/// recorded lossy/duplicating/crashy discovery run, and the minimized
/// crash-triggered witness of the planted fragile bug (found by
/// exploration under a crash-only fault plan, then shrunk). Ignored by
/// default, like [`regenerate_discovery_corpus`].
#[test]
#[ignore = "writes tests/corpus; run explicitly to regenerate"]
fn regenerate_fault_corpus() {
    use asynchronous_resource_discovery::core::Variant;
    use asynchronous_resource_discovery::netsim::explore::{explore, ExploreConfig};
    use asynchronous_resource_discovery::netsim::shrink::shrink;
    use asynchronous_resource_discovery::netsim::{FaultPlan, NodeId, RandomScheduler};

    let topology = "random:n=12,extra=20,seed=3";
    let graph = spec::parse_topology(topology).unwrap();
    let plan = FaultPlan::new(9)
        .with_drop(0.15)
        .with_dup(0.05)
        .with_spread_crashes(2, graph.len());
    let (result, mut schedule) =
        Discovery::run_faulty(&graph, Variant::AdHoc, &plan, RandomScheduler::seeded(3));
    let outcome = result.expect("faulty corpus run must complete");
    schedule.set_meta("topology", topology);
    schedule.set_meta("steps", outcome.steps.to_string());
    let path = corpus_dir().join("faulty-random-12-adhoc-random.schedule");
    std::fs::write(&path, schedule.to_text()).unwrap();
    println!("wrote {} ({} choices)", path.display(), schedule.len());

    let plan = FaultPlan::new(1).with_crash(NodeId::new(0), 2, 2);
    let config = ExploreConfig {
        random_walks: 256,
        dfs_budget: 0,
        dfs_depth: 0,
        seed: 0,
        fault: Some(plan),
        ..ExploreConfig::default()
    };
    let report = explore(&config, || {
        |sched: &mut dyn Scheduler| fixtures::run_fragile(1, sched)
    });
    let failure = report
        .failure
        .expect("the planted fragile bug must be found");
    let shrunk = shrink(&failure.schedule, || {
        |sched: &mut dyn Scheduler| fixtures::run_fragile(1, sched)
    });
    let mut schedule = shrunk.schedule;
    assert!(
        schedule
            .choices()
            .iter()
            .any(|c| matches!(c, Choice::Crash(_))),
        "witness must stay crash-triggered"
    );
    schedule.set_meta("system", "fragile:1");
    let path = corpus_dir().join("fragile-crash-minimized.schedule");
    std::fs::write(&path, schedule.to_text()).unwrap();
    println!("wrote {} ({} choices)", path.display(), schedule.len());
}

/// Regenerates the Byzantine corpus entries in place:
///
/// * `equiv-forge-minimized.schedule` — the planted equivocation bug of
///   the `equiv:3` fixture, found by exploration under a one-traitor
///   equivocate-only plan (seed 3 — its forge targets hit both spare
///   candidates) and ddmin-shrunk; the minimized witness must stay at
///   most 6 choices and keep its `forge`;
/// * `byzantine-churn-ring-12.schedule` — a complete recorded ring run
///   under two traitors (all fault classes) plus 20% membership churn
///   that violates survivor leader safety, pinning a "fails" matrix cell
///   end to end.
///
/// Ignored by default, like the other regeneration tests.
#[test]
#[ignore = "writes tests/corpus; run explicitly to regenerate"]
fn regenerate_byzantine_corpus() {
    use asynchronous_resource_discovery::core::Variant;
    use asynchronous_resource_discovery::netsim::explore::{explore_fork, ExploreConfig};
    use asynchronous_resource_discovery::netsim::shrink::shrink;
    use asynchronous_resource_discovery::netsim::{ByzantinePlan, ChurnPlan, RandomScheduler};

    let candidates = 3;
    let plan = ByzantinePlan::new(3, 1).only("equivocate");
    let config = ExploreConfig {
        random_walks: 32,
        dfs_budget: 32,
        dfs_depth: 4,
        seed: 0,
        byzantine: Some((plan, candidates + 1)),
        ..ExploreConfig::default()
    };
    let report = explore_fork(&config, &fixtures::EquivSystem::new(candidates));
    let failure = report
        .failure
        .expect("the planted equivocation bug must be found");
    let shrunk = shrink(&failure.schedule, || {
        move |sched: &mut dyn Scheduler| fixtures::run_equiv(candidates, sched)
    });
    let mut schedule = shrunk.schedule;
    assert!(
        schedule.len() <= 6,
        "equivocation witness must minimize to ≤ 6 choices, got {}",
        schedule.len()
    );
    assert!(
        schedule
            .choices()
            .iter()
            .any(|c| matches!(c, Choice::Forge { .. })),
        "witness must stay forgery-triggered"
    );
    schedule.set_meta("system", format!("equiv:{candidates}"));
    let path = corpus_dir().join("equiv-forge-minimized.schedule");
    std::fs::write(&path, schedule.to_text()).unwrap();
    println!("wrote {} ({} choices)", path.display(), schedule.len());

    let topology = "ring:12";
    let graph = spec::parse_topology(topology).unwrap();
    let byz = ByzantinePlan::new(7, 2);
    let churn = ChurnPlan::new(11, 0.2);
    let (result, mut schedule) = Discovery::run_byzantine(
        &graph,
        Variant::AdHoc,
        Some(&byz),
        Some(&churn),
        RandomScheduler::seeded(5),
    );
    let outcome = result.expect("Byzantine corpus run must quiesce");
    assert!(
        !outcome.survives_all(),
        "the churn witness must violate a survivor guarantee"
    );
    schedule.set_meta("topology", topology);
    schedule.set_meta("steps", outcome.steps.to_string());
    let path = corpus_dir().join("byzantine-churn-ring-12.schedule");
    std::fs::write(&path, schedule.to_text()).unwrap();
    println!("wrote {} ({} choices)", path.display(), schedule.len());
}

#[test]
#[ignore = "writes tests/corpus; run explicitly to regenerate"]
fn regenerate_discovery_corpus() {
    for (file, topology, variant_name, sched) in discovery_corpus() {
        let variant = spec::parse_variant(variant_name).unwrap();
        let graph = spec::parse_topology(topology).unwrap();
        let mut d = Discovery::new(&graph, variant);
        let (result, mut schedule) = d.run_recorded(sched);
        let outcome = result.unwrap_or_else(|e| panic!("{file}: {e}"));
        d.check_requirements(&graph)
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        schedule.set_meta("topology", topology);
        schedule.set_meta("steps", outcome.steps.to_string());
        let path = corpus_dir().join(file);
        std::fs::write(&path, schedule.to_text()).unwrap();
        println!("wrote {} ({} choices)", path.display(), schedule.len());
    }
}
