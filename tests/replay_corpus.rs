//! Seed-pinned regression suite: replays every checked-in schedule file
//! under `tests/corpus/` and asserts the recorded behavior still holds.
//!
//! Two kinds of corpus entries, dispatched on metadata:
//!
//! * **discovery schedules** (`topology` + `variant` meta) — complete
//!   recorded runs of the discovery protocol; replay must quiesce, satisfy
//!   the §1.2 requirements and the §5 budgets, and (when pinned) execute
//!   exactly the recorded number of steps;
//! * **failure schedules** (`system racy:K` meta) — minimized schedules of
//!   the planted-race fixture, found by `ard explore` and shrunk; replay
//!   must still reproduce the violation, proving the explorer/shrinker
//!   pipeline's artifacts stay valid.
//!
//! To regenerate the discovery entries after an intentional engine change:
//! `cargo test --test replay_corpus regenerate -- --ignored`, then review
//! the diff. The racy entry is regenerated with
//! `ard explore --system racy:3 --out tests/corpus/racy-minimized.schedule`.

use std::path::PathBuf;

use ard_cli::spec;
use asynchronous_resource_discovery::core::{budgets, Discovery};
use asynchronous_resource_discovery::netsim::explore::fixtures;
use asynchronous_resource_discovery::netsim::{ReplayScheduler, Schedule, Scheduler};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "schedule"))
        .collect();
    files.sort();
    files
}

fn load(path: &PathBuf) -> Schedule {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    Schedule::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn corpus_is_present_and_mixed() {
    let files = corpus_files();
    assert!(
        files.len() >= 4,
        "expected a seeded corpus, found {} files",
        files.len()
    );
    let schedules: Vec<Schedule> = files.iter().map(load).collect();
    assert!(
        schedules.iter().any(|s| s.meta("system").is_some()),
        "corpus needs at least one minimized failure schedule"
    );
    assert!(
        schedules.iter().any(|s| s.meta("topology").is_some()),
        "corpus needs at least one discovery schedule"
    );
}

#[test]
fn every_corpus_schedule_replays_and_still_holds() {
    for path in corpus_files() {
        let name = path.display();
        let schedule = load(&path);
        if let Some(system) = schedule.meta("system") {
            let clients: usize = system
                .strip_prefix("racy:")
                .and_then(|k| k.parse().ok())
                .unwrap_or_else(|| panic!("{name}: bad system meta `{system}`"));
            let mut sched = ReplayScheduler::strict(&schedule);
            let violation = fixtures::run_racy(clients, &mut sched)
                .expect_err("a checked-in failure schedule must still fail");
            assert!(
                violation.contains("highest-id client"),
                "{name}: unexpected violation `{violation}`"
            );
            continue;
        }
        let topology = schedule
            .meta("topology")
            .unwrap_or_else(|| panic!("{name}: discovery schedule without topology meta"));
        let variant = spec::parse_variant(schedule.meta("variant").expect("variant meta"))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let graph = spec::parse_topology(topology).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut d = Discovery::new(&graph, variant);
        let outcome = d
            .run_replay(&schedule)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            outcome.steps,
            schedule.len() as u64,
            "{name}: replay executed every recorded choice"
        );
        if let Some(steps) = schedule.meta("steps") {
            assert_eq!(steps, outcome.steps.to_string(), "{name}: pinned step count");
        }
        d.check_requirements(&graph)
            .unwrap_or_else(|e| panic!("{name}: requirements: {e}"));
        budgets::check_all(
            &outcome.metrics,
            graph.len() as u64,
            graph.edge_count() as u64,
            variant,
        )
        .unwrap_or_else(|e| panic!("{name}: budgets: {e}"));
    }
}

/// The discovery entries of the corpus: name, topology spec, variant and a
/// scheduler constructor. Kept in one place so regeneration and review stay
/// trivial.
fn discovery_corpus() -> Vec<(&'static str, &'static str, &'static str, Box<dyn Scheduler>)> {
    use asynchronous_resource_discovery::netsim::{
        BoundedDelayScheduler, LifoScheduler, RandomScheduler,
    };
    vec![
        (
            "ring-12-adhoc-random.schedule",
            "ring:12",
            "adhoc",
            Box::new(RandomScheduler::seeded(7)),
        ),
        (
            "random-16-oblivious-bounded.schedule",
            "random:n=16,extra=24,seed=2",
            "oblivious",
            Box::new(BoundedDelayScheduler::new(3, 5)),
        ),
        (
            "components-2x5-bounded-lifo.schedule",
            "components:count=2,per=5,extra=5,seed=1",
            "bounded",
            Box::new(LifoScheduler::new()),
        ),
        (
            "tree-4-adhoc-random.schedule",
            "tree:4",
            "adhoc",
            Box::new(RandomScheduler::seeded(23)),
        ),
    ]
}

/// Regenerates the discovery corpus files in place. Ignored by default:
/// run it deliberately after an intentional engine change and review the
/// resulting diff like any other pinned-output update.
#[test]
#[ignore = "writes tests/corpus; run explicitly to regenerate"]
fn regenerate_discovery_corpus() {
    for (file, topology, variant_name, sched) in discovery_corpus() {
        let variant = spec::parse_variant(variant_name).unwrap();
        let graph = spec::parse_topology(topology).unwrap();
        let mut d = Discovery::new(&graph, variant);
        let (result, mut schedule) = d.run_recorded(sched);
        let outcome = result.unwrap_or_else(|e| panic!("{file}: {e}"));
        d.check_requirements(&graph)
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        schedule.set_meta("topology", topology);
        schedule.set_meta("steps", outcome.steps.to_string());
        let path = corpus_dir().join(file);
        std::fs::write(&path, schedule.to_text()).unwrap();
        println!("wrote {} ({} choices)", path.display(), schedule.len());
    }
}
