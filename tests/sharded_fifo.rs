//! Determinism contract of the sharded event loop.
//!
//! `Discovery::run_all_sharded` (and the CLI's `--shards`) must never
//! change *what* a FIFO run produces — only which threads execute it.
//! These tests pin the contract end to end against the real protocol:
//! for `shards ∈ {1, 2, 4, 8}` the metrics (value and `Display` text),
//! trace events, final knowledge, outcome, and recorded schedule must be
//! byte-identical to the sequential FIFO run, on every variant — and a
//! capped run must livelock at exactly the same step on both engines.

use asynchronous_resource_discovery::core::{Discovery, Variant};
use asynchronous_resource_discovery::graph::gen;
use asynchronous_resource_discovery::netsim::trace::TraceEvent;
use asynchronous_resource_discovery::netsim::FifoScheduler;

use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs discovery sequentially and sharded and asserts every observable
/// matches.
fn assert_sharded_matches(n: usize, extra: usize, seed: u64, variant: Variant) {
    let graph = gen::random_weakly_connected(n, extra, seed);

    let mut seq = Discovery::new(&graph, variant);
    seq.runner_mut().enable_trace();
    let seq_outcome = seq.run_all(&mut FifoScheduler::new()).unwrap();
    let seq_trace: Vec<TraceEvent> = seq.runner().trace().unwrap().events().to_vec();
    seq.check_requirements(&graph).unwrap();

    for shards in SHARD_COUNTS {
        let mut shd = Discovery::new(&graph, variant);
        shd.runner_mut().enable_trace();
        let shd_outcome = shd.run_all_sharded(shards).unwrap();

        assert_eq!(shd_outcome.steps, seq_outcome.steps, "steps at --shards {shards}");
        assert_eq!(shd_outcome.leaders, seq_outcome.leaders, "leaders at --shards {shards}");
        assert_eq!(shd_outcome.leader_of, seq_outcome.leader_of);
        assert_eq!(shd_outcome.metrics, seq_outcome.metrics, "metrics at --shards {shards}");
        assert_eq!(
            shd_outcome.metrics.to_string(),
            seq_outcome.metrics.to_string(),
            "metrics text at --shards {shards}"
        );
        assert_eq!(
            shd.runner().trace().unwrap().events(),
            &seq_trace[..],
            "trace at --shards {shards}"
        );
        // The canonical state digest (the explorer's terminal-state /
        // dedup hash) must agree too: sharding may not perturb anything
        // the digest can see — node state, knowledge, queues, metrics.
        assert_eq!(
            shd.runner().state_digest(),
            seq.runner().state_digest(),
            "state digest at --shards {shards}"
        );
        shd.check_requirements(&graph).unwrap();
    }
}

#[test]
fn sharded_terminal_state_digest_matches_sequential() {
    let graph = gen::random_weakly_connected(40, 80, 13);
    let mut seq = Discovery::new(&graph, Variant::AdHoc);
    seq.run_all(&mut FifoScheduler::new()).unwrap();
    let expected = seq.runner().state_digest();
    for shards in SHARD_COUNTS {
        let mut shd = Discovery::new(&graph, Variant::AdHoc);
        shd.run_all_sharded(shards).unwrap();
        assert_eq!(shd.runner().state_digest(), expected, "--shards {shards}");
    }
}

#[test]
fn sharded_discovery_is_byte_identical_across_variants() {
    for variant in [Variant::Oblivious, Variant::Bounded, Variant::AdHoc] {
        assert_sharded_matches(48, 96, 7, variant);
    }
}

#[test]
fn sharded_recording_matches_sequential_recording() {
    let graph = gen::random_weakly_connected(32, 64, 3);

    let mut seq = Discovery::new(&graph, Variant::AdHoc);
    let (seq_result, seq_schedule) = seq.run_recorded(FifoScheduler::new());
    let seq_outcome = seq_result.unwrap();

    for shards in SHARD_COUNTS {
        let mut shd = Discovery::new(&graph, Variant::AdHoc);
        let (shd_result, shd_schedule) = shd.run_sharded_recorded(shards);
        let shd_outcome = shd_result.unwrap();
        assert_eq!(shd_outcome.steps, seq_outcome.steps);
        assert_eq!(shd_outcome.metrics, seq_outcome.metrics);
        assert_eq!(
            shd_schedule.to_text(),
            seq_schedule.to_text(),
            "recorded schedule diverged at --shards {shards}"
        );
    }
}

#[test]
fn sharded_replay_of_a_sharded_recording_reproduces_the_run() {
    let graph = gen::random_weakly_connected(24, 48, 11);
    let mut rec = Discovery::new(&graph, Variant::Oblivious);
    let (result, schedule) = rec.run_sharded_recorded(4);
    let recorded = result.unwrap();

    let mut rep = Discovery::new(&graph, Variant::Oblivious);
    let replayed = rep.run_replay(&schedule).unwrap();
    assert_eq!(replayed.steps, recorded.steps);
    assert_eq!(replayed.metrics, recorded.metrics);
}

#[test]
fn sharded_livelock_cuts_off_at_the_same_step() {
    let graph = gen::random_weakly_connected(32, 64, 5);

    let mut seq = Discovery::new(&graph, Variant::Oblivious);
    let mut sched = FifoScheduler::new();
    seq.enqueue_wake_all(&mut sched);
    let seq_err = seq.runner_mut().run(&mut sched, 40).unwrap_err();

    for shards in SHARD_COUNTS {
        let mut shd = Discovery::new(&graph, Variant::Oblivious);
        let shd_err = shd.run_all_sharded_capped(shards, 40).unwrap_err();
        assert_eq!(shd_err.steps, seq_err.steps, "cutoff at --shards {shards}");
        assert_eq!(
            shd.runner().metrics(),
            seq.runner().metrics(),
            "partial metrics at --shards {shards}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random topologies and sizes: the contract is not shape-specific.
    #[test]
    fn sharded_runs_match_on_random_topologies(
        n in 2usize..40,
        extra_per_node in 0usize..3,
        seed in 0u64..1000,
    ) {
        assert_sharded_matches(n, n * extra_per_node, seed, Variant::AdHoc);
    }
}
