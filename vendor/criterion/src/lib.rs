//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no access to a crates registry, so this
//! workspace-local crate provides the benchmarking surface the workspace
//! uses: [`criterion_group!`] / [`criterion_main!`], [`Criterion`] with
//! benchmark groups, `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], [`Throughput`] and [`Bencher::iter`].
//!
//! Measurement is deliberately simple: each benchmark is warmed up, an
//! iteration count is calibrated to fill a fixed measurement window, and
//! the mean wall-clock time per iteration is reported (with elements/sec
//! when a [`Throughput`] is set). There are no statistical comparisons or
//! HTML reports. Under `cargo test` (`--test` mode) each benchmark runs a
//! single iteration as a smoke test, matching upstream behaviour.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many logical items one iteration processes; enables rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (e.g. events, operations) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier, rendered as `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, `name/param`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs the measured closure; handed to benchmark functions.
pub struct Bencher<'a> {
    /// Filled in by [`Bencher::iter`].
    result: &'a mut Option<Duration>,
    test_mode: bool,
}

impl Bencher<'_> {
    /// Measures `routine`, storing the mean wall-clock time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            *self.result = Some(Duration::ZERO);
            return;
        }
        // Warm-up and calibration: time single calls until 10ms elapses.
        let calib_start = Instant::now();
        let mut calls = 0u32;
        while calib_start.elapsed() < Duration::from_millis(10) || calls == 0 {
            black_box(routine());
            calls += 1;
        }
        let per_call = calib_start.elapsed() / calls;
        // Fill a ~300ms measurement window, capped for very slow routines.
        let target = Duration::from_millis(300);
        let iters = (target.as_nanos() / per_call.as_nanos().max(1))
            .clamp(1, 5_000_000) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        *self.result = Some(start.elapsed() / iters);
    }
}

/// Shared measurement settings and the benchmark registry entry point.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
}

impl Criterion {
    /// Builds a `Criterion` from the process arguments (`--test` enables
    /// single-iteration smoke mode; positional args filter by substring).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                "--bench" | "--quiet" | "--noplot" => {}
                s if s.starts_with('-') => {}
                s => c.filters.push(s.to_string()),
            }
        }
        c
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a single free-standing routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let full = id.to_string();
        self.run_one(&full, None, f);
        self
    }

    /// Called by [`criterion_main!`] after all groups have run.
    pub fn final_summary(&self) {}

    fn matches_filter(&self, full_id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_id.contains(f))
    }

    fn run_one<F>(&mut self, full_id: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if !self.matches_filter(full_id) {
            return;
        }
        let mut result = None;
        let mut bencher = Bencher {
            result: &mut result,
            test_mode: self.test_mode,
        };
        f(&mut bencher);
        let Some(mean) = result else {
            println!("{full_id:<40} (no measurement: Bencher::iter not called)");
            return;
        };
        if self.test_mode {
            println!("{full_id:<40} ok (test mode)");
            return;
        }
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => format!(
                " thrpt: {:.0} elem/s",
                n as f64 / mean.as_secs_f64()
            ),
            Throughput::Bytes(n) => format!(
                " thrpt: {:.0} B/s",
                n as f64 / mean.as_secs_f64()
            ),
        });
        println!(
            "{full_id:<40} time: {:>12}{}",
            format_duration(mean),
            rate.unwrap_or_default()
        );
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness auto-calibrates
    /// iteration counts instead of sampling.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a routine under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into());
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, f);
        self
    }

    /// Benchmarks a routine over a borrowed input under `group_name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, |b| f(b, input));
        self
    }

    /// Ends the group (upstream reports summaries here; a no-op).
    pub fn finish(self) {}
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns/iter")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs/iter", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms/iter", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s/iter", nanos as f64 / 1e9)
    }
}

/// Declares a group function running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_upstream() {
        assert_eq!(BenchmarkId::new("f", 64).to_string(), "f/64");
        assert_eq!(BenchmarkId::from_parameter(1024).to_string(), "1024");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }

    #[test]
    fn bencher_measures_and_groups_run() {
        let mut c = Criterion::default();
        c.test_mode = true; // keep the unit test fast
        let mut ran = 0;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(10);
            group.throughput(Throughput::Elements(100));
            group.bench_function("a", |b| b.iter(|| ran += 1));
            group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            group.finish();
        }
        c.bench_function("free", |b| b.iter(|| 1 + 1));
        assert!(ran >= 1);
    }

    #[test]
    fn filters_skip_nonmatching() {
        let mut c = Criterion {
            test_mode: true,
            filters: vec!["match_me".into()],
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("match_me/64", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns/iter");
        assert!(format_duration(Duration::from_micros(12)).contains("µs"));
        assert!(format_duration(Duration::from_millis(12)).contains("ms"));
    }
}
