//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to a crates registry, so this
//! workspace-local crate provides the (small) surface of `rand` the
//! reproduction actually uses: a seedable deterministic [`rngs::StdRng`],
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — statistically solid and fully deterministic per seed, which
//! is all the simulator's reproducible schedules and generators require.
//! It does **not** promise the same byte streams as upstream `rand`.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level uniform 64-bit generator, the base trait of [`Rng`].
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the generator's full range
/// (the subset of `rand`'s `Standard` distribution the workspace uses).
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types `gen_range` can sample over a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`; `high > low` is the caller's duty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u64) - (low as u64);
                // Debiased multiply-shift (Lemire); the retry loop is
                // astronomically rare for the span sizes used here.
                loop {
                    let x = rng.next_u64();
                    let hi = ((x as u128 * span as u128) >> 64) as u64;
                    let lo = x.wrapping_mul(span);
                    if lo >= span || lo >= (span.wrapping_neg() % span) {
                        return low + hi as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_uint!(usize, u64, u32, u16, u8);

/// User-facing generator methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, as upstream `rand` does.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(5u64..6);
            assert_eq!(v, 5);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(3usize..3);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle is virtually never identity");
    }
}
