//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no access to a crates registry, so this
//! workspace-local crate provides the surface of `proptest` the
//! reproduction's property tests actually use: the [`proptest!`] macro,
//! composable [`strategy::Strategy`] values (integer ranges, tuples,
//! [`strategy::Just`], `prop_map`, [`prop_oneof!`] unions), the
//! [`collection`] strategies (`vec`, `btree_set`), [`arbitrary::any`], and
//! the [`prop_assert!`] / [`prop_assert_eq!`] assertion macros.
//!
//! Semantics are plain random testing: each `#[test]` body runs
//! `ProptestConfig::cases` times with inputs drawn from a generator seeded
//! deterministically from the test's full path, so failures reproduce
//! across runs. Shrinking is not implemented — a failing case reports the
//! case index and message instead of a minimised input.

#![forbid(unsafe_code)]

pub mod test_runner {
    use std::fmt;

    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Per-test configuration; only `cases` is interpreted.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case (always a failure; rejection is not used).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps any displayable reason as a case failure.
        pub fn fail<R: fmt::Display>(reason: R) -> Self {
            TestCaseError(reason.to_string())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic generator for one property, seeded from its path
    /// (FNV-1a) so every run draws the same case sequence.
    pub fn rng_for(test_path: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;

    /// A generator of values of `Self::Value`.
    ///
    /// Mirrors `proptest::strategy::Strategy`, minus shrinking: `sample`
    /// draws one value from the deterministic test generator.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, map: f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        base: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.map)(self.base.sample(rng))
        }
    }

    /// A uniform choice between boxed alternatives
    /// (what [`prop_oneof!`](crate::prop_oneof) builds).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A half-open size range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_excl: exact + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.min..self.max_excl)
        }
    }

    /// `Vec` strategy: a length from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `BTreeSet` strategy: draws elements until the target size is hit
    /// (bounded retries guard against under-sized element domains).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(100) + 100 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::{Rng, Standard};
    use std::marker::PhantomData;

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Standard> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen()
        }
    }

    /// A strategy for any value of `T` (uniform over `T`'s full range).
    pub fn any<T: Standard>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prelude {
    //! Everything a `use proptest::prelude::*;` test file expects.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Map, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Alias so `prop::collection::vec(...)` paths resolve.
    pub use crate as prop;
}

/// Defines property tests.
///
/// Each `#[test] fn name(pat in strategy, ...) { body }` item expands to a
/// normal test running `cases` random cases; the body runs in a closure
/// returning `Result<(), TestCaseError>` so `prop_assert!` and `?` work.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::rng_for(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut rng);
                )+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("property {} failed at case {}/{}: {}",
                           stringify!($name), case, config.cases, e);
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property body, failing the case (not the
/// whole process) so the harness can report which case broke.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property body, reporting both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}: `{:?}` == `{:?}`", format!($($fmt)+), left, right
        );
    }};
}

/// A strategy drawing uniformly from several alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_sample_in_bounds() {
        let mut rng = crate::test_runner::rng_for("self::smoke");
        let strat = (1usize..10, 0u64..5).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..200 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((1..15).contains(&v), "v={v}");
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::test_runner::rng_for("self::collections");
        let vs = crate::collection::vec(0usize..100, 3..7);
        let ss = crate::collection::btree_set(0usize..500, 1..40);
        for _ in 0..100 {
            let v = Strategy::sample(&vs, &mut rng);
            assert!((3..7).contains(&v.len()));
            let s = Strategy::sample(&ss, &mut rng);
            assert!((1..40).contains(&s.len()));
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let mut rng = crate::test_runner::rng_for("self::oneof");
        let strat = prop_oneof![Just(1u64), Just(2u64), Just(3u64)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(Strategy::sample(&strat, &mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, asserts pass, `?` works.
        #[test]
        fn macro_end_to_end(a in 0usize..50, (b, c) in (0u64..4, any::<bool>())) {
            prop_assert!(a < 50);
            prop_assert_eq!(b < 4, true, "b={}", b);
            let _ = c;
            Ok::<(), String>(()).map_err(TestCaseError::fail)?;
        }
    }
}
