//! Observability: record and analyze a full execution trace — per-node and
//! per-link traffic, hot spots, and a filtered event view.
//!
//! On scale-free topologies (realistic P2P bootstrap lists) the final
//! leader and the hubs dominate the traffic — this is how you'd find out.
//!
//! ```text
//! cargo run --release --example trace_inspection
//! ```

use asynchronous_resource_discovery::core::{Discovery, Variant};
use asynchronous_resource_discovery::graph::gen;
use asynchronous_resource_discovery::netsim::{LivelockError, RandomScheduler};

fn main() -> Result<(), LivelockError> {
    let n = 80;
    let graph = gen::scale_free(n, 2, 11);
    let mut discovery = Discovery::new(&graph, Variant::AdHoc);
    discovery.runner_mut().enable_trace();
    let mut sched = RandomScheduler::seeded(3);
    let outcome = discovery.run_all(&mut sched)?;
    let leader = outcome.leaders[0];
    println!(
        "scale-free network of {n} peers discovered under {leader}: {} messages\n",
        outcome.metrics.total_messages()
    );

    let trace = discovery.runner().trace().expect("tracing enabled");
    let stats = trace.stats();

    println!("top senders:");
    for (node, count) in stats.top_senders(5) {
        let role = if node == leader {
            " (the final leader)"
        } else {
            ""
        };
        println!("  {node:<5} {count:>5} messages{role}");
    }
    if let Some(((src, dst), count)) = stats.busiest_link() {
        println!("busiest link: {src} → {dst} carried {count} messages");
    }

    println!("\nthe leader's first ten events:");
    for event in trace.involving(leader).take(10) {
        println!("  {event}");
    }

    println!("\ntotal events logged: {}", trace.len());
    Ok(())
}
