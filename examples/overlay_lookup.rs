//! End-to-end pipeline from the paper's introduction: peers *discover* each
//! other, then use the membership to *form a distributed hash table* and
//! serve lookups in `O(log n)` hops.
//!
//! ```text
//! cargo run --release --example overlay_lookup
//! ```

use asynchronous_resource_discovery::core::{Discovery, Variant};
use asynchronous_resource_discovery::graph::gen;
use asynchronous_resource_discovery::netsim::{LivelockError, NodeId, RandomScheduler};
use asynchronous_resource_discovery::overlay::{bootstrap, Key};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), LivelockError> {
    let n = 200;
    // Phase 1: asynchronous resource discovery on a sparse knowledge graph.
    let graph = gen::random_weakly_connected(n, 2 * n, 1234);
    let mut discovery = Discovery::new(&graph, Variant::AdHoc);
    let mut sched = RandomScheduler::seeded(5);
    let outcome = discovery.run_all(&mut sched)?;
    let leader = outcome.leaders[0];
    let members: Vec<NodeId> = discovery
        .runner()
        .node(leader)
        .done()
        .iter()
        .copied()
        .collect();
    println!(
        "discovery: {} peers regrouped under {leader} in {} messages",
        members.len(),
        outcome.metrics.total_messages()
    );

    // Phase 2: bootstrap a Chord-style ring from the discovered membership.
    let mut overlay = bootstrap(&members);
    println!(
        "overlay: ring of {} members, fingers precomputed from the membership list",
        overlay.len()
    );

    // Phase 3: serve random lookups.
    let mut rng = StdRng::seed_from_u64(6);
    let trials = 500;
    let mut total_hops = 0u64;
    let mut worst = 0u32;
    for _ in 0..trials {
        let key = Key::new(rng.gen());
        let from = members[rng.gen_range(0..members.len())];
        let result = overlay.lookup_blocking(from, key, &mut sched)?;
        assert_eq!(result.owner, overlay.ring().owner(key));
        total_hops += u64::from(result.hops);
        worst = worst.max(result.hops);
    }
    println!(
        "lookups: {trials} keys resolved, avg {:.2} hops, worst {worst} (log2 n = {:.1})",
        total_hops as f64 / trials as f64,
        (n as f64).log2()
    );

    // Phase 4: use the ring as a distributed hash table.
    for i in 0..100u64 {
        let from = members[rng.gen_range(0..members.len())];
        overlay.put_blocking(from, Key::new(i * 977), i, &mut sched)?;
    }
    let mut hits = 0;
    for i in 0..100u64 {
        let from = members[rng.gen_range(0..members.len())];
        let got = overlay.get_blocking(from, Key::new(i * 977), &mut sched)?;
        if got.value == Some(i) {
            hits += 1;
        }
    }
    let m = overlay.runner().metrics();
    println!(
        "store: 100 puts + 100 gets, {hits}/100 round-tripped, {} pairs spread over the ring",
        overlay.stored_total()
    );
    println!(
        "overlay traffic: {} messages / {} bits",
        m.total_messages(),
        m.total_bits()
    );
    assert_eq!(hits, 100);
    Ok(())
}
