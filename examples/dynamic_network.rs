//! Dynamic growth (§6 of the paper): nodes and links join a live Ad-hoc
//! discovery without restarting it, at near-constant marginal cost.
//!
//! ```text
//! cargo run --release --example dynamic_network
//! ```

use asynchronous_resource_discovery::core::{Discovery, Variant};
use asynchronous_resource_discovery::graph::gen;
use asynchronous_resource_discovery::netsim::{LivelockError, NodeId, RandomScheduler};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), LivelockError> {
    let base = 100;
    let graph = gen::random_weakly_connected(base, 2 * base, 3);
    let mut discovery = Discovery::new(&graph, Variant::AdHoc);
    let mut sched = RandomScheduler::seeded(11);

    discovery.run_all(&mut sched)?;
    let base_msgs = discovery.runner().metrics().total_messages();
    println!("base network of {base} nodes discovered with {base_msgs} messages");

    // Nodes trickle in, each knowing one or two random existing nodes.
    let mut rng = StdRng::seed_from_u64(23);
    let mut last = base_msgs;
    for round in 0..10 {
        let n_now = discovery.graph().len();
        let peer = NodeId::new(rng.gen_range(0..n_now));
        let newcomer = discovery.add_node(vec![peer], &mut sched);
        discovery.run(&mut sched)?;

        // And an extra link between two existing nodes.
        let u = NodeId::new(rng.gen_range(0..n_now));
        let v = NodeId::new(rng.gen_range(0..n_now));
        if u != v {
            discovery.add_link(u, v, &mut sched);
            discovery.run(&mut sched)?;
        }

        let now = discovery.runner().metrics().total_messages();
        println!(
            "round {round}: node {newcomer} joined via {peer}, link {u}->{v} added; marginal cost {} messages",
            now - last
        );
        last = now;
    }

    let final_graph = discovery.graph().clone();
    discovery
        .check_requirements(&final_graph)
        .expect("requirements hold after dynamic growth");

    // The newest node can pull the full membership with one probe.
    let newest = NodeId::new(final_graph.len() - 1);
    let snapshot = discovery.probe_blocking(newest, &mut sched)?;
    println!(
        "\nfinal network: {} nodes; total {} messages ({} marginal for all additions)",
        final_graph.len(),
        last,
        last - base_msgs
    );
    println!(
        "probe from newest node {newest} sees {} members",
        snapshot.len()
    );
    assert_eq!(snapshot.len(), final_graph.len());
    Ok(())
}
