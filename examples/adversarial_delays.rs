//! The Theorem 1 adversary in action: the same algorithm on the same
//! topology costs `Θ(n)` messages under a benign schedule and
//! `Θ(n log n)` under the subtree-freezing adversary.
//!
//! ```text
//! cargo run --release --example adversarial_delays
//! ```

use asynchronous_resource_discovery::core::{Discovery, Variant};
use asynchronous_resource_discovery::graph::gen;
use asynchronous_resource_discovery::lower_bounds::tree_adversary;
use asynchronous_resource_discovery::netsim::{LivelockError, RandomScheduler};

fn main() -> Result<(), LivelockError> {
    println!("complete rooted binary trees T(i), edges toward the leaves; Oblivious algorithm\n");
    println!(
        "{:>7} {:>7} {:>14} {:>14} {:>12} {:>14}",
        "levels", "n", "benign msgs", "forced msgs", "bound", "forced/benign"
    );
    for levels in 4..=11u32 {
        let graph = gen::binary_tree_down(levels);
        let n = graph.len();

        // Benign: uniformly random delays.
        let mut discovery = Discovery::new(&graph, Variant::Oblivious);
        let mut sched = RandomScheduler::seeded(levels as u64);
        let benign = discovery.run_all(&mut sched)?.metrics.total_messages();
        discovery
            .check_requirements(&graph)
            .expect("benign run failed");

        // Adversarial: freeze each internal node until its subtrees quiesce.
        let result = tree_adversary::run(levels);
        assert!(result.messages >= result.bound, "below the Theorem 1 bound");

        println!(
            "{:>7} {:>7} {:>14} {:>14} {:>12} {:>14.2}",
            levels,
            n,
            benign,
            result.messages,
            result.bound,
            result.messages as f64 / benign as f64
        );
    }
    println!(
        "\nbound = i·2^(i-1) − 2 (Theorem 1); the adversary forces it, a benign schedule does not"
    );
    Ok(())
}
