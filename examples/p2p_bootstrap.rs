//! The paper's motivating scenario (§1): repairing a damaged peer-to-peer
//! system.
//!
//! A structured overlay (here, a Chord-style ring) collapses when most of
//! its nodes are reset: the survivors hold stale, partial neighbour lists —
//! a weakly connected knowledge graph. The first step of recovery is
//! resource discovery: regroup every surviving peer under one coordinator
//! that knows all of them, then rebuild the overlay from the discovered
//! membership list.
//!
//! ```text
//! cargo run --release --example p2p_bootstrap
//! ```

use asynchronous_resource_discovery::core::{Discovery, Variant};
use asynchronous_resource_discovery::graph::{components, KnowledgeGraph};
use asynchronous_resource_discovery::netsim::{LivelockError, NodeId, RandomScheduler};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Builds the knowledge graph of a crashed ring overlay: of `total` original
/// peers, only `survivors` remain; each survivor still remembers its
/// successor list and finger-ish shortcuts, but only the entries that
/// survived.
fn crashed_overlay(total: usize, survivors: usize, seed: u64) -> (Vec<usize>, KnowledgeGraph) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut alive: Vec<usize> = (0..total).collect();
    alive.shuffle(&mut rng);
    alive.truncate(survivors);
    alive.sort_unstable();

    // Survivor i's old neighbour set: successors and power-of-two fingers on
    // the *original* ring; keep only the surviving ones.
    let index_of: std::collections::HashMap<usize, usize> =
        alive.iter().enumerate().map(|(i, &p)| (p, i)).collect();
    let mut graph = KnowledgeGraph::new(survivors);
    for (i, &peer) in alive.iter().enumerate() {
        let mut offsets = vec![1usize, 2, 3];
        let mut f = 4;
        while f < total {
            offsets.push(f);
            f *= 2;
        }
        for off in offsets {
            let neighbour = (peer + off) % total;
            if let Some(&j) = index_of.get(&neighbour) {
                if j != i {
                    graph.add_edge(NodeId::new(i), NodeId::new(j));
                }
            }
        }
    }
    (alive, graph)
}

fn main() -> Result<(), LivelockError> {
    let total = 512;
    let survivors = 160;
    let (alive, graph) = crashed_overlay(total, survivors, 99);
    let comps = components::weakly_connected_components(&graph);
    println!(
        "crash: {total} peers -> {survivors} survivors, stale knowledge graph has {} edges, {} weakly connected component(s)",
        graph.edge_count(),
        comps.len()
    );

    // Phase 1: resource discovery regroups each component under a leader.
    let mut discovery = Discovery::new(&graph, Variant::AdHoc);
    let mut sched = RandomScheduler::seeded(5);
    let outcome = discovery.run_all(&mut sched)?;
    discovery
        .check_requirements(&graph)
        .expect("discovery failed");
    println!(
        "discovery: {} leader(s) elected with {} messages / {} bits",
        outcome.leaders.len(),
        outcome.metrics.total_messages(),
        outcome.metrics.total_bits()
    );

    // Phase 2: any survivor can now pull the full membership from its
    // leader (Ad-hoc probe) and rebuild the ring locally.
    let prober = NodeId::new(sched_pick(survivors));
    let membership = discovery.probe_blocking(prober, &mut sched)?;
    let mut ring: Vec<usize> = membership.iter().map(|id| alive[id.index()]).collect();
    ring.sort_unstable();
    println!(
        "rebuild: survivor {} (peer {}) probed its leader and got {} members; new ring: {} .. {}",
        prober,
        alive[prober.index()],
        ring.len(),
        ring[0],
        ring[ring.len() - 1]
    );
    assert_eq!(
        ring.len(),
        comps
            .iter()
            .find(|c| c.contains(&prober))
            .map(Vec::len)
            .unwrap_or(0),
        "the probe returned its whole component"
    );
    // Every consecutive pair in `ring` becomes successor links of the
    // repaired overlay; from here a DHT can re-stabilize.
    println!("done: overlay repaired from one discovery pass + one probe per joining peer");
    Ok(())
}

fn sched_pick(n: usize) -> usize {
    // A fixed "random" survivor for reproducibility.
    let mut rng = StdRng::seed_from_u64(17);
    rng.gen_range(0..n)
}
