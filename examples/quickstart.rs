//! Quickstart: run all three algorithm variants on one random peer-to-peer
//! knowledge graph and compare their costs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use asynchronous_resource_discovery::core::{Discovery, Variant};
use asynchronous_resource_discovery::graph::gen;
use asynchronous_resource_discovery::netsim::{LivelockError, RandomScheduler};

fn main() -> Result<(), LivelockError> {
    let n = 128;
    // Each peer initially knows a handful of other peers; the union of that
    // knowledge is weakly connected but far from complete.
    let graph = gen::random_weakly_connected(n, 3 * n, 2024);
    println!(
        "knowledge graph: {} nodes, {} directed edges\n",
        graph.len(),
        graph.edge_count()
    );

    for variant in [Variant::Oblivious, Variant::Bounded, Variant::AdHoc] {
        let mut discovery = Discovery::new(&graph, variant);
        let mut sched = RandomScheduler::seeded(7);
        let outcome = discovery.run_all(&mut sched)?;
        discovery
            .check_requirements(&graph)
            .expect("discovery requirements violated");

        let leader = outcome.leaders[0];
        let m = &outcome.metrics;
        println!("{variant} variant:");
        println!("  leader: {leader} (knows all {n} ids)");
        println!(
            "  cost: {} messages, {} bits, causal depth {}",
            m.total_messages(),
            m.total_bits(),
            m.max_causal_depth()
        );
        for (kind, counts) in m.kinds() {
            println!(
                "    {:<12} {:>6} msgs {:>9} bits",
                kind, counts.messages, counts.bits
            );
        }
        println!();
    }
    Ok(())
}
