//! The Lemma 3.1 / Theorem 2 reduction: Union–Find ⇒ Ad-hoc resource
//! discovery.
//!
//! Given a sequence of `n − 1` unions and `m` finds over `n` sets, build a
//! knowledge graph:
//!
//! * one node `sᵢ` per set (no initial edges);
//! * one node `u` per union `U(i, j)`, with edges `u → sᵢ` and `u → sⱼ`;
//! * one node `f` per find `F(i)`, with one edge `f → sᵢ`;
//!
//! then wake the operation nodes **in sequence order, running the algorithm
//! to quiescence between wake-ups**. The Ad-hoc requirements force every
//! `u` wake-up to end with `sᵢ` and `sⱼ` under one leader (a union) and
//! every `f` wake-up to reach the current leader (a find). An
//! `h(N)`-message algorithm therefore yields an `h(2n−1+m)`-time union-find
//! algorithm on a separation-property pointer machine, and Tarjan's
//! `Ω(N·α)` bound transfers.

use ard_core::{Discovery, Variant};
use ard_graph::KnowledgeGraph;
use ard_netsim::{FifoScheduler, Metrics, NodeId};
use ard_union_find::{alpha, Op, OpSequence};

/// The compiled reduction instance: the graph plus the staged wake order.
#[derive(Clone, Debug)]
pub struct ReductionInstance {
    /// The knowledge graph (`sᵢ` nodes first, then one node per op).
    pub graph: KnowledgeGraph,
    /// The operation nodes, in sequence order.
    pub wake_order: Vec<NodeId>,
    /// Universe size `n` of the original union-find instance.
    pub n_sets: usize,
}

/// Compiles an operation sequence into its knowledge graph and wake order.
pub fn compile(seq: &OpSequence) -> ReductionInstance {
    let n = seq.n();
    let mut graph = KnowledgeGraph::new(n);
    let mut wake_order = Vec::with_capacity(seq.len());
    for op in seq.ops() {
        let node = graph.add_node();
        match *op {
            Op::Union(i, j) => {
                graph.add_edge(node, NodeId::new(i));
                graph.add_edge(node, NodeId::new(j));
            }
            Op::Find(i) => {
                graph.add_edge(node, NodeId::new(i));
            }
        }
        wake_order.push(node);
    }
    ReductionInstance {
        graph,
        wake_order,
        n_sets: n,
    }
}

/// Result of executing the reduction.
#[derive(Clone, Debug)]
pub struct ReductionOutcome {
    /// Total network size `N = 2n − 1 + m` (sets + ops).
    pub network_size: u64,
    /// Messages the Ad-hoc algorithm sent over the whole staged execution.
    pub messages: u64,
    /// `N · α(N, N)` — the shape the count should track (Theorems 2 and 6).
    pub n_alpha: u64,
    /// Full metrics.
    pub metrics: Metrics,
}

/// Executes the reduction for `seq`: wakes each operation node in order,
/// running the Ad-hoc algorithm to quiescence in between, and verifies that
/// every union actually unified its arguments' leaders (the simulation
/// faithfulness argument of Lemma 3.1).
///
/// # Panics
///
/// Panics if the execution livelocks or an operation fails to simulate —
/// both would be implementation bugs.
pub fn run(seq: &OpSequence) -> ReductionOutcome {
    run_with_config(seq, ard_core::Config::paper())
}

/// As [`run`], with an explicit (possibly ablated) configuration — used by
/// the path-compression ablation, for which the staged find-heavy workload
/// is the discriminating case.
///
/// # Panics
///
/// As [`run`].
pub fn run_with_config(seq: &OpSequence, config: ard_core::Config) -> ReductionOutcome {
    let instance = compile(seq);
    let mut discovery = Discovery::with_config(&instance.graph, Variant::AdHoc, config);
    let mut sched = FifoScheduler::new();
    for (op, &node) in seq.ops().iter().zip(&instance.wake_order) {
        discovery.wake_now(node, &mut sched);
        discovery
            .run(&mut sched)
            .expect("reduction stage livelocked");
        match *op {
            Op::Union(i, j) => {
                let li = discovery.leader_of(NodeId::new(i));
                let lj = discovery.leader_of(NodeId::new(j));
                assert_eq!(li, lj, "U({i},{j}) left two leaders: {li} vs {lj}");
            }
            Op::Find(i) => {
                // The find node must have reached a leader that knows it —
                // requirement 2 means the leader's `done` will contain it at
                // quiescence; spot-check via pointer resolution.
                let leader = discovery.leader_of(node);
                assert_eq!(leader, discovery.leader_of(NodeId::new(i)));
            }
        }
    }
    // Any never-woken set nodes are singleton components; wake them so the
    // final state satisfies the global requirements.
    discovery
        .run_all(&mut sched)
        .expect("final stage livelocked");
    discovery
        .check_requirements(&instance.graph.clone())
        .expect("reduction violated requirements");
    let metrics = discovery.runner().metrics().clone();
    let network_size = instance.graph.len() as u64;
    ReductionOutcome {
        network_size,
        messages: metrics.total_messages(),
        n_alpha: network_size * alpha(network_size, network_size),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_shapes_the_graph() {
        let seq = OpSequence::new(3, vec![Op::Union(0, 1), Op::Find(1), Op::Union(2, 0)]);
        let inst = compile(&seq);
        // 3 sets + 3 ops.
        assert_eq!(inst.graph.len(), 6);
        // 2 + 1 + 2 edges.
        assert_eq!(inst.graph.edge_count(), 5);
        assert_eq!(
            inst.wake_order,
            vec![NodeId::new(3), NodeId::new(4), NodeId::new(5)]
        );
    }

    #[test]
    fn reduction_simulates_small_sequences() {
        let seq = OpSequence::new(
            4,
            vec![
                Op::Union(0, 1),
                Op::Find(0),
                Op::Union(2, 3),
                Op::Union(1, 3),
                Op::Find(2),
            ],
        );
        let out = run(&seq);
        assert_eq!(out.network_size, 4 + 5);
        assert!(out.messages > 0);
    }

    #[test]
    fn reduction_simulates_random_sequences() {
        for seed in 0..4 {
            let seq = OpSequence::random(24, 12, seed);
            let out = run(&seq);
            // N = 2n − 1 + m.
            assert_eq!(out.network_size, 2 * 24 - 1 + 12);
            assert!(out.messages > 0);
        }
    }

    #[test]
    fn message_cost_stays_near_linear() {
        // The point of Theorem 2 + Theorem 6 together: cost per operation is
        // (inverse-Ackermann) constant-ish, not logarithmic.
        let cost_per_node = |n: usize| {
            let seq = OpSequence::random(n, n / 2, 7);
            let out = run(&seq);
            out.messages as f64 / out.network_size as f64
        };
        let small = cost_per_node(32);
        let large = cost_per_node(256);
        assert!(
            large < small * 2.0,
            "per-node cost should be ~flat: {small:.2} → {large:.2}"
        );
    }

    #[test]
    fn adversarial_sequences_also_stay_near_linear() {
        let seq = OpSequence::adversarial_deep(64, 16);
        let out = run(&seq);
        // Generous constant: measured runs sit well below 16·N·(α+1).
        assert!(out.messages <= 16 * (out.n_alpha + out.network_size));
    }
}
