//! Executable versions of the paper's two lower-bound constructions.
//!
//! Lower bounds are statements about adversaries, and in an asynchronous
//! network the adversary *is* the message schedule. Both constructions are
//! therefore ordinary drivers over the simulator:
//!
//! * [`tree_adversary`] — Theorem 1: on the complete rooted binary tree
//!   `T(i)` (`n = 2^i − 1`, edges toward the leaves), delaying every
//!   internal node's messages until its subtrees have quiesced forces any
//!   oblivious resource-discovery algorithm to send at least
//!   `i·2^(i−1) − 2 ≈ 0.5·n·log n` messages.
//! * [`uf_reduction`] — Lemma 3.1 / Theorem 2: a sequence of `n − 1` unions
//!   and `m` finds compiles into a knowledge graph of `2n − 1 + m` nodes
//!   plus a staged wake-up schedule, such that an Ad-hoc resource-discovery
//!   execution simulates the union/find sequence; Tarjan's pointer-machine
//!   lower bound then transfers, giving `Ω(n·α(n,n))` messages.
//!
//! # Example
//!
//! ```
//! use ard_lower_bounds::tree_adversary;
//!
//! let result = tree_adversary::run(4); // T(4): 15 nodes
//! assert!(result.messages >= tree_adversary::theorem1_bound(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod tree_adversary;
pub mod uf_reduction;
