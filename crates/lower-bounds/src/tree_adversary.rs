//! The Theorem 1 adversary: subtree freezing on rooted binary trees.
//!
//! The proof's induction stalls "all messages sent by the root until both
//! subtrees have no more messages to send", recursively. Operationally that
//! is a [`Scheduler`] that holds every message whose *source* is a frozen
//! internal node and thaws internal nodes bottom-up, one at a time, each
//! time the rest of the network quiesces. Before the root speaks, each
//! subtree must believe it is the whole component and elect a leader that
//! knows all of it; every merge then forces the winner to re-inform the
//! loser's nodes, which is where the `Σ level · n/2` ≈ `0.5·n·log n`
//! messages come from.

use std::collections::VecDeque;

use ard_core::{Discovery, Variant};
use ard_graph::gen;
use ard_netsim::{Choice, Metrics, NodeId, Scheduler, SendToken};

/// A scheduler that holds all messages originating at *frozen* nodes and
/// thaws nodes one by one (in the given order) whenever every deliverable
/// event has been consumed.
///
/// This generalizes the Theorem 1 adversary to any freeze set/order; the
/// tree experiment freezes internal tree nodes in bottom-up order.
#[derive(Debug)]
pub struct FreezeScheduler {
    frozen: Vec<bool>,
    thaw_order: Vec<NodeId>,
    next_thaw: usize,
    enabled: VecDeque<Choice>,
    held: Vec<VecDeque<Choice>>,
    held_total: usize,
}

impl FreezeScheduler {
    /// Creates a scheduler for `n` nodes where every node in `thaw_order`
    /// starts frozen and thaws in that order.
    pub fn new(n: usize, thaw_order: Vec<NodeId>) -> Self {
        let mut frozen = vec![false; n];
        for &v in &thaw_order {
            assert!(!frozen[v.index()], "node {v} listed twice in thaw order");
            frozen[v.index()] = true;
        }
        FreezeScheduler {
            frozen,
            thaw_order,
            next_thaw: 0,
            enabled: VecDeque::new(),
            held: (0..n).map(|_| VecDeque::new()).collect(),
            held_total: 0,
        }
    }

    /// Number of nodes still frozen.
    pub fn frozen_count(&self) -> usize {
        self.thaw_order.len() - self.next_thaw
    }

    fn thaw_next(&mut self) -> bool {
        let Some(&v) = self.thaw_order.get(self.next_thaw) else {
            return false;
        };
        self.next_thaw += 1;
        self.frozen[v.index()] = false;
        let released = std::mem::take(&mut self.held[v.index()]);
        self.held_total -= released.len();
        self.enabled.extend(released);
        true
    }
}

impl Scheduler for FreezeScheduler {
    fn note_wake(&mut self, node: NodeId) {
        // Wake-ups are local events, not messages: never frozen.
        self.enabled.push_back(Choice::Wake(node));
    }

    fn note_send(&mut self, token: SendToken) {
        let choice = Choice::Deliver {
            src: token.src,
            dst: token.dst,
        };
        if self.frozen[token.src.index()] {
            self.held[token.src.index()].push_back(choice);
            self.held_total += 1;
        } else {
            self.enabled.push_back(choice);
        }
    }

    fn note_tick(&mut self, node: NodeId) {
        // Ticks are local events, like wake-ups: never frozen.
        self.enabled.push_back(Choice::Tick(node));
    }

    fn choose(&mut self) -> Option<Choice> {
        loop {
            if let Some(c) = self.enabled.pop_front() {
                return Some(c);
            }
            if !self.thaw_next() {
                return None;
            }
        }
    }

    fn pending(&self) -> usize {
        self.enabled.len() + self.held_total
    }
}

/// Result of one adversarial tree run.
#[derive(Clone, Debug)]
pub struct TreeRunResult {
    /// Tree depth `i` (so `n = 2^i − 1`).
    pub levels: u32,
    /// Number of nodes.
    pub n: u64,
    /// Total messages the algorithm was forced to send.
    pub messages: u64,
    /// The analytic lower bound `i·2^(i−1) − 2`.
    pub bound: u64,
    /// Full metrics of the run.
    pub metrics: Metrics,
}

/// The Theorem 1 bound for `T(levels)`: `levels · 2^(levels−1) − 2`.
pub fn theorem1_bound(levels: u32) -> u64 {
    (levels as u64) * (1u64 << (levels - 1)) - 2
}

/// Internal nodes of `T(levels)` in bottom-up (deepest first) order — the
/// thaw order of the proof's recursion.
pub fn bottom_up_internal_nodes(levels: u32) -> Vec<NodeId> {
    let n = (1usize << levels) - 1;
    let first_leaf = n / 2;
    // Heap layout: node i is at depth ⌊log₂(i+1)⌋; internal nodes are
    // 0..first_leaf. Reverse index order = deepest first.
    (0..first_leaf).rev().map(NodeId::new).collect()
}

/// Runs the generic (Oblivious) algorithm on `T(levels)` under the
/// subtree-freezing adversary and returns the forced message count.
///
/// # Panics
///
/// Panics if the run livelocks or ends violating the paper's requirements
/// (both would be implementation bugs).
pub fn run(levels: u32) -> TreeRunResult {
    run_variant(levels, Variant::Oblivious)
}

/// As [`run`], for an arbitrary variant (the Theorem 1 bound is a statement
/// about the Oblivious problem; other variants are informative only).
pub fn run_variant(levels: u32, variant: Variant) -> TreeRunResult {
    assert!(levels >= 2, "the bound needs at least 3 nodes");
    let graph = gen::binary_tree_down(levels);
    let n = graph.len() as u64;
    let mut sched = FreezeScheduler::new(graph.len(), bottom_up_internal_nodes(levels));
    let mut discovery = Discovery::new(&graph, variant);
    discovery
        .run_all(&mut sched)
        .expect("adversarial tree run livelocked");
    discovery
        .check_requirements(&graph)
        .expect("adversarial tree run violated requirements");
    let metrics = discovery.runner().metrics().clone();
    TreeRunResult {
        levels,
        n,
        messages: metrics.total_messages(),
        bound: theorem1_bound(levels),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_values() {
        assert_eq!(theorem1_bound(2), 2);
        assert_eq!(theorem1_bound(3), 10);
        assert_eq!(theorem1_bound(4), 30);
        assert_eq!(theorem1_bound(10), 10 * 512 - 2);
    }

    #[test]
    fn bottom_up_order_is_deepest_first() {
        let order = bottom_up_internal_nodes(3);
        // Internal nodes of a 7-node heap: 0, 1, 2; deepest (1, 2) first.
        assert_eq!(order, vec![NodeId::new(2), NodeId::new(1), NodeId::new(0)]);
    }

    #[test]
    fn freeze_scheduler_holds_and_thaws() {
        let mut s = FreezeScheduler::new(2, vec![NodeId::new(0)]);
        s.note_send(SendToken {
            src: NodeId::new(0),
            dst: NodeId::new(1),
            seq: 0,
            kind: "x",
        });
        s.note_send(SendToken {
            src: NodeId::new(1),
            dst: NodeId::new(0),
            seq: 1,
            kind: "x",
        });
        // The unfrozen node's message comes first even though sent second.
        assert_eq!(
            s.choose(),
            Some(Choice::Deliver {
                src: NodeId::new(1),
                dst: NodeId::new(0)
            })
        );
        // Then thawing releases the held message.
        assert_eq!(
            s.choose(),
            Some(Choice::Deliver {
                src: NodeId::new(0),
                dst: NodeId::new(1)
            })
        );
        assert_eq!(s.choose(), None);
    }

    #[test]
    fn adversary_forces_the_theorem_1_bound() {
        for levels in 2..=8 {
            let result = run(levels);
            assert!(
                result.messages >= result.bound,
                "T({levels}): forced only {} messages, bound {}",
                result.messages,
                result.bound
            );
        }
    }

    #[test]
    fn forced_messages_grow_superlinearly() {
        let small = run(5);
        let large = run(10);
        let small_rate = small.messages as f64 / small.n as f64;
        let large_rate = large.messages as f64 / large.n as f64;
        assert!(
            large_rate > small_rate + 1.0,
            "per-node cost should grow with depth: {small_rate:.2} vs {large_rate:.2}"
        );
    }
}
