//! A reliable-delivery envelope over an unreliable (lossy, duplicating,
//! crash-prone) network.
//!
//! The paper assumes reliable asynchronous links. The fault layer of
//! [`ard_netsim::fault`] breaks that assumption — messages can be dropped or
//! duplicated and nodes can crash and restart. [`Reliable`] restores the
//! paper's link model on top of the faulty one so the discovery algorithms
//! run unchanged:
//!
//! * every logical message gets a **per-destination sequence number** and is
//!   retransmitted on a timeout until acknowledged (loss recovery);
//! * receivers **acknowledge** every data message and deliver each sequence
//!   number **exactly once, in order**, buffering out-of-order arrivals
//!   (duplicate suppression and FIFO restoration — a retransmission can
//!   overtake a younger message, so per-link FIFO must be re-established);
//! * timeouts use **capped exponential backoff** measured in scheduler
//!   virtual time: each [`Choice::Tick`](ard_netsim::Choice) the scheduler
//!   grants advances the node's clock by one.
//!
//! Crash/restart is the *fail-recover* model: a node's protocol state
//! survives the crash (stable storage), it just stops sending and receiving
//! while down. Messages delivered to a down node are lost; the sender's
//! retransmission loop covers them. [`Reliable::on_restart`] re-arms the
//! retransmission timer, so liveness survives a tick discarded mid-crash.
//!
//! Under any per-message drop probability `p < 1` and finitely many
//! crash/restart events, every logical message is eventually delivered
//! exactly once: each retransmission is an independent Bernoulli trial, so
//! non-delivery has probability 0, and the ack loop terminates because the
//! timer only re-arms while unacknowledged messages remain. At quiescence
//! the inner protocol has seen exactly the message sequence some
//! fault-free schedule would have produced.
//!
//! Metering: a first-attempt data message is metered under its **payload's
//! kind** with 32 extra aux bits (the sequence number), so the paper's
//! per-kind budgets still see every logical send exactly once.
//! Retransmissions and acks are metered under the dedicated kinds
//! `"retransmit"` and `"rd-ack"` ([`OVERHEAD_KINDS`](crate::budgets::OVERHEAD_KINDS)),
//! which the faulty budget checks subtract as explicit overhead.

use std::collections::BTreeMap;

use ard_netsim::{Context, Envelope, NodeId, Protocol, StateDigest};

/// Wire format of the reliable-delivery layer: the inner protocol's message
/// wrapped with a sequence number, or a bare acknowledgement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReliableMsg<M> {
    /// A (re)transmission of logical message `seq` on this sender→receiver
    /// pair.
    Data {
        /// Per-(sender, receiver) sequence number, starting at 0.
        seq: u32,
        /// 0 for the first transmission; `k` for the `k`-th retransmission.
        /// Bookkeeping only — not charged as bits (a real implementation
        /// would not send it).
        attempt: u32,
        /// The inner protocol's message.
        payload: M,
    },
    /// Acknowledges receipt of `Data { seq, .. }` from the addressee.
    Ack {
        /// The acknowledged sequence number.
        seq: u32,
    },
}

impl<M: Envelope> Envelope for ReliableMsg<M> {
    fn kind(&self) -> &'static str {
        match self {
            // First transmissions keep the payload's kind so the paper's
            // per-kind message budgets count each logical send exactly once.
            ReliableMsg::Data {
                attempt: 0,
                payload,
                ..
            } => payload.kind(),
            ReliableMsg::Data { .. } => "retransmit",
            ReliableMsg::Ack { .. } => "rd-ack",
        }
    }

    fn for_each_carried_id(&self, f: &mut dyn FnMut(NodeId)) {
        match self {
            ReliableMsg::Data { payload, .. } => payload.for_each_carried_id(f),
            ReliableMsg::Ack { .. } => {}
        }
    }

    fn carried_id_count(&self) -> usize {
        match self {
            ReliableMsg::Data { payload, .. } => payload.carried_id_count(),
            ReliableMsg::Ack { .. } => 0,
        }
    }

    fn aux_bits(&self) -> u64 {
        match self {
            ReliableMsg::Data { payload, .. } => payload.aux_bits() + 32,
            ReliableMsg::Ack { .. } => 32,
        }
    }

    fn digest(&self, d: &mut StateDigest) {
        // The default digest cannot see `seq` (aux bits are a constant 32),
        // and two data envelopes with the same payload but different
        // sequence numbers are delivered very differently (in-order cursor
        // vs reorder buffer). `attempt` stays out: the receiver ignores it
        // and metering is charged at send time, so it cannot influence any
        // future step.
        match self {
            ReliableMsg::Data { seq, payload, .. } => {
                d.mix_bytes(b"rd-data");
                d.mix(u64::from(*seq));
                payload.digest(d);
            }
            ReliableMsg::Ack { seq } => {
                d.mix_bytes(b"rd-ack");
                d.mix(u64::from(*seq));
            }
        }
    }
}

/// An unacknowledged transmission awaiting its retransmission deadline.
#[derive(Clone, Debug)]
struct Outstanding<M> {
    dst: NodeId,
    seq: u32,
    attempt: u32,
    due: u64,
    payload: M,
}

/// Per-source receive state: the cursor of in-order delivery plus a reorder
/// buffer for sequence numbers that arrived early.
#[derive(Debug)]
struct RecvState<M> {
    next_expected: u32,
    buffered: BTreeMap<u32, M>,
}

impl<M> Default for RecvState<M> {
    fn default() -> Self {
        RecvState {
            next_expected: 0,
            buffered: BTreeMap::new(),
        }
    }
}

/// The reliable-delivery envelope: wraps any [`Protocol`] so it runs
/// correctly over lossy, duplicating, crash-prone links.
///
/// The inner protocol's handlers execute against a staging [`Context`];
/// every message they send is wrapped in a [`ReliableMsg::Data`] envelope
/// and tracked until acknowledged.
#[derive(Debug)]
pub struct Reliable<P: Protocol> {
    inner: P,
    staging: Vec<(NodeId, P::Message)>,
    next_seq: BTreeMap<NodeId, u32>,
    unacked: Vec<Outstanding<P::Message>>,
    clock: u64,
    tick_outstanding: bool,
    inner_wants_tick: bool,
    recv: BTreeMap<NodeId, RecvState<P::Message>>,
}

/// Retransmission backoff cap, in ticks.
const MAX_BACKOFF: u64 = 16;

impl<P: Protocol> Reliable<P> {
    /// Wraps `inner` in the reliable-delivery envelope.
    pub fn new(inner: P) -> Self {
        Reliable {
            inner,
            staging: Vec::new(),
            next_seq: BTreeMap::new(),
            unacked: Vec::new(),
            clock: 0,
            tick_outstanding: false,
            inner_wants_tick: false,
            recv: BTreeMap::new(),
        }
    }

    /// The wrapped protocol node.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Number of transmissions currently awaiting acknowledgement.
    pub fn unacked_len(&self) -> usize {
        self.unacked.len()
    }

    /// The node's retransmission clock (ticks granted by the scheduler).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Capped exponential backoff: 2, 4, 8, 16, 16, … ticks. Starting at 2
    /// gives a round-trip's worth of slack before the first retransmission:
    /// under a benign scheduler the ack arrives before the second tick, so a
    /// fault-free run retransmits nothing.
    fn timeout(attempt: u32) -> u64 {
        (2u64 << attempt.min(62)).min(MAX_BACKOFF)
    }

    /// Runs an inner-protocol handler against a staging outbox, then wraps
    /// and sends everything it staged.
    fn run_inner(
        &mut self,
        ctx: &mut Context<'_, ReliableMsg<P::Message>>,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Message>),
    ) {
        debug_assert!(self.staging.is_empty());
        let mut staging = std::mem::take(&mut self.staging);
        let mut inner_ctx = Context::new(ctx.me(), &mut staging);
        f(&mut self.inner, &mut inner_ctx);
        if inner_ctx.tick_armed() {
            self.inner_wants_tick = true;
        }
        for (dst, payload) in staging.drain(..) {
            let seq = self.next_seq.entry(dst).or_insert(0);
            let s = *seq;
            *seq += 1;
            self.unacked.push(Outstanding {
                dst,
                seq: s,
                attempt: 0,
                due: self.clock + Self::timeout(0),
                payload: payload.clone(),
            });
            ctx.send(
                dst,
                ReliableMsg::Data {
                    seq: s,
                    attempt: 0,
                    payload,
                },
            );
        }
        self.staging = staging;
    }

    /// Arms the retransmission timer if anything needs one and no tick is
    /// already pending.
    fn ensure_tick(&mut self, ctx: &mut Context<'_, ReliableMsg<P::Message>>) {
        if (!self.unacked.is_empty() || self.inner_wants_tick) && !self.tick_outstanding {
            ctx.arm_tick();
            self.tick_outstanding = true;
        }
    }

    /// Pops the next in-order payload from `src`, if it has arrived.
    fn take_next(&mut self, src: NodeId) -> Option<P::Message> {
        let st = self.recv.get_mut(&src)?;
        let payload = st.buffered.remove(&st.next_expected)?;
        st.next_expected += 1;
        Some(payload)
    }
}

impl<P: Protocol + crate::node::AsArdNode> crate::node::AsArdNode for Reliable<P> {
    fn ard(&self) -> &crate::node::ArdNode {
        self.inner.ard()
    }
}

impl<P: Protocol> Protocol for Reliable<P> {
    type Message = ReliableMsg<P::Message>;

    fn on_wake(&mut self, ctx: &mut Context<'_, Self::Message>) {
        self.run_inner(ctx, |n, c| n.on_wake(c));
        self.ensure_tick(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Message, ctx: &mut Context<'_, Self::Message>) {
        match msg {
            ReliableMsg::Data { seq, payload, .. } => {
                // Always ack — the previous ack may have been lost.
                ctx.send(from, ReliableMsg::Ack { seq });
                let st = self.recv.entry(from).or_default();
                if seq >= st.next_expected {
                    // A duplicate of a buffered message overwrites it with
                    // an identical payload; old sequence numbers are spent.
                    st.buffered.insert(seq, payload);
                }
                while let Some(p) = self.take_next(from) {
                    self.run_inner(ctx, |n, c| n.on_message(from, p, c));
                }
            }
            ReliableMsg::Ack { seq } => {
                self.unacked.retain(|o| !(o.dst == from && o.seq == seq));
            }
        }
        self.ensure_tick(ctx);
    }

    fn on_tick(&mut self, ctx: &mut Context<'_, Self::Message>) {
        self.tick_outstanding = false;
        self.clock += 1;
        for i in 0..self.unacked.len() {
            if self.unacked[i].due <= self.clock {
                let o = &mut self.unacked[i];
                o.attempt += 1;
                o.due = self.clock + Self::timeout(o.attempt);
                let (dst, msg) = (
                    o.dst,
                    ReliableMsg::Data {
                        seq: o.seq,
                        attempt: o.attempt,
                        payload: o.payload.clone(),
                    },
                );
                ctx.send(dst, msg);
            }
        }
        if self.inner_wants_tick {
            self.inner_wants_tick = false;
            self.run_inner(ctx, |n, c| n.on_tick(c));
        }
        self.ensure_tick(ctx);
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, Self::Message>) {
        // The armed tick may have fired (and been discarded) while we were
        // down; conservatively re-arm. A resulting spurious extra tick just
        // advances the clock, which the backoff schedule tolerates.
        self.tick_outstanding = false;
        self.run_inner(ctx, |n, c| n.on_restart(c));
        self.ensure_tick(ctx);
    }

    fn on_stale_restart(&mut self, ctx: &mut Context<'_, Self::Message>) {
        // The amnesia extends to the transport: sequence numbers, reorder
        // buffers and retransmission state all reset with the inner
        // protocol, as if the process image were reloaded from its boot
        // snapshot. Peers that kept *their* cursors will now see this node
        // restart at seq 0 — exactly the stale-transport hazard the
        // Byzantine matrix wants on the table.
        self.staging.clear();
        self.next_seq.clear();
        self.unacked.clear();
        self.tick_outstanding = false;
        self.inner_wants_tick = false;
        self.recv.clear();
        self.run_inner(ctx, |n, c| n.on_stale_restart(c));
        self.ensure_tick(ctx);
    }

    fn digest_state(&self, d: &mut StateDigest) {
        self.inner.digest_state(d);
        d.mix(self.next_seq.len() as u64);
        for (dst, seq) in &self.next_seq {
            d.mix(dst.index() as u64);
            d.mix(u64::from(*seq));
        }
        d.mix(self.unacked.len() as u64);
        for o in &self.unacked {
            d.mix(o.dst.index() as u64);
            d.mix(u64::from(o.seq));
            d.mix(u64::from(o.attempt));
            d.mix(o.due);
            o.payload.digest(d);
        }
        d.mix(self.clock);
        d.mix(u64::from(self.tick_outstanding));
        d.mix(u64::from(self.inner_wants_tick));
        d.mix(self.recv.len() as u64);
        for (src, st) in &self.recv {
            d.mix(src.index() as u64);
            d.mix(u64::from(st.next_expected));
            d.mix(st.buffered.len() as u64);
            for (seq, p) in &st.buffered {
                d.mix(u64::from(*seq));
                p.digest(d);
            }
        }
        // `staging` is empty between events (`run_inner` drains it), so it
        // carries no state worth mixing.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ard_netsim::{FaultPlan, FaultScheduler, FifoScheduler, RandomScheduler, Runner};

    /// A chatty fixture: node 0 sends `count` numbered payloads to node 1,
    /// which records the order it sees them in.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Num(u32);

    impl Envelope for Num {
        fn kind(&self) -> &'static str {
            "num"
        }
        fn for_each_carried_id(&self, _f: &mut dyn FnMut(NodeId)) {}
        fn aux_bits(&self) -> u64 {
            32
        }
    }

    struct Chat {
        count: u32,
        seen: Vec<u32>,
    }

    impl Protocol for Chat {
        type Message = Num;
        fn on_wake(&mut self, ctx: &mut Context<'_, Num>) {
            for i in 0..self.count {
                ctx.send(NodeId::new(1), Num(i));
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: Num, _ctx: &mut Context<'_, Num>) {
            self.seen.push(msg.0);
        }
    }

    fn chat_pair(count: u32) -> Runner<Reliable<Chat>> {
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        Runner::new(
            vec![
                Reliable::new(Chat { count, seen: vec![] }),
                Reliable::new(Chat { count: 0, seen: vec![] }),
            ],
            vec![vec![b], vec![a]],
        )
    }

    #[test]
    fn lossless_run_delivers_in_order_with_acks() {
        let mut runner = chat_pair(5);
        let mut sched = FifoScheduler::new();
        runner.enqueue_wake(NodeId::new(0), &mut sched);
        runner.run(&mut sched, 1_000).unwrap();
        assert_eq!(runner.node(NodeId::new(1)).inner().seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(runner.node(NodeId::new(0)).unacked_len(), 0);
        assert_eq!(runner.metrics().kind("num").messages, 5);
        assert_eq!(runner.metrics().kind("rd-ack").messages, 5);
        assert_eq!(runner.metrics().kind("retransmit").messages, 0);
    }

    #[test]
    fn heavy_loss_still_delivers_everything_in_order() {
        for seed in 0..20u64 {
            let mut runner = chat_pair(8);
            let plan = FaultPlan::new(seed).with_drop(0.4).with_dup(0.1);
            let mut sched = FaultScheduler::new(RandomScheduler::seeded(seed), Some(plan));
            runner.enqueue_wake(NodeId::new(0), &mut sched);
            runner.run(&mut sched, 100_000).unwrap();
            assert_eq!(
                runner.node(NodeId::new(1)).inner().seen,
                (0..8).collect::<Vec<_>>(),
                "seed {seed}"
            );
            assert_eq!(runner.node(NodeId::new(0)).unacked_len(), 0, "seed {seed}");
            // Exactly-once: the logical kind is metered once per payload.
            assert_eq!(runner.metrics().kind("num").messages, 8, "seed {seed}");
        }
    }

    #[test]
    fn receiver_crash_window_is_covered_by_retransmission() {
        for seed in 0..10u64 {
            let mut runner = chat_pair(6);
            let plan = FaultPlan::new(seed)
                .with_drop(0.1)
                .with_crash(NodeId::new(1), 4, 10);
            let mut sched = FaultScheduler::new(RandomScheduler::seeded(seed ^ 0x9e37), Some(plan));
            runner.enqueue_wake(NodeId::new(0), &mut sched);
            runner.run(&mut sched, 100_000).unwrap();
            assert_eq!(
                runner.node(NodeId::new(1)).inner().seen,
                (0..6).collect::<Vec<_>>(),
                "seed {seed}"
            );
            assert!(runner.metrics().faults().crashes >= 1, "seed {seed}");
        }
    }

    #[test]
    fn backoff_is_capped_exponential() {
        assert_eq!(Reliable::<Chat>::timeout(0), 2);
        assert_eq!(Reliable::<Chat>::timeout(1), 4);
        assert_eq!(Reliable::<Chat>::timeout(2), 8);
        assert_eq!(Reliable::<Chat>::timeout(3), 16);
        assert_eq!(Reliable::<Chat>::timeout(30), 16);
    }

    #[test]
    fn envelope_metering_charges_seq_overhead() {
        let data = ReliableMsg::Data {
            seq: 3,
            attempt: 0,
            payload: Num(7),
        };
        assert_eq!(data.kind(), "num");
        assert_eq!(data.aux_bits(), 32 + 32);
        let retx = ReliableMsg::Data {
            seq: 3,
            attempt: 2,
            payload: Num(7),
        };
        assert_eq!(retx.kind(), "retransmit");
        let ack: ReliableMsg<Num> = ReliableMsg::Ack { seq: 3 };
        assert_eq!(ack.kind(), "rd-ack");
        assert_eq!(ack.aux_bits(), 32);
        assert_eq!(ack.carried_id_count(), 0);
    }
}
