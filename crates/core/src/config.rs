use std::fmt;

/// Which of the paper's three problem variants to run (§1.2, §4.5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Variant {
    /// *Oblivious Resource Discovery*: nodes do not know their component's
    /// size. Runs the full generic algorithm with `conquer` broadcasts after
    /// every merge — `O(n log n)` messages, which Theorem 1 proves optimal.
    #[default]
    Oblivious,
    /// *Bounded Resource Discovery*: every node knows the size of its
    /// weakly connected component. No per-merge broadcasts; the final leader
    /// detects `|done| = n`, broadcasts one `conquer` wave and terminates —
    /// `O(n·α(n,n))` messages (Theorems 4 and 6).
    Bounded,
    /// *Ad-hoc Resource Discovery*: non-leaders only maintain a pointer
    /// path to their leader (requirement 3a/3b); snapshots are pulled on
    /// demand via probes with path compression — `O(n·α(n,n))` messages,
    /// optimal by Theorem 2, and dynamic-addition friendly (§6).
    AdHoc,
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Variant::Oblivious => "oblivious",
            Variant::Bounded => "bounded",
            Variant::AdHoc => "ad-hoc",
        };
        f.write_str(name)
    }
}

impl Variant {
    /// Whether this variant maintains the `unaware` set and broadcasts
    /// `conquer` after every merge (only the generic/Oblivious algorithm
    /// does; the variants of §4.5 drop it).
    pub fn broadcasts_each_merge(self) -> bool {
        matches!(self, Variant::Oblivious)
    }
}

/// Tuning knobs for the reproduction's ablation experiments. The default
/// configuration is the paper's algorithm; every switch degrades one design
/// choice that DESIGN.md calls out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Config {
    /// Release and probe-reply messages re-point every relay's `next` at the
    /// answering leader (§4.2). Disabling it (ablation A1) loses the
    /// union-find amortization and inflates `search`/`release` traffic.
    pub path_compression: bool,
    /// Queries request only `|more| + |done| + 1` ids (§4.1). Disabling it
    /// (ablation A2) requests everything at once, inflating bit complexity
    /// toward `O(|E₀| log² n)`.
    pub balanced_queries: bool,
    /// Tolerate protocol-impossible messages instead of panicking. The
    /// paper's algorithm treats an unexpected message (a release for a
    /// search never sent, a conqueror absent from `unaware`, …) as a local
    /// bug and asserts; under Byzantine faults such messages are *forged*,
    /// so Byzantine runs set this to drop them instead. Off by default —
    /// honest runs must keep their bug-catching asserts.
    pub byzantine_tolerant: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            path_compression: true,
            balanced_queries: true,
            byzantine_tolerant: false,
        }
    }
}

impl Config {
    /// The paper's algorithm, with every optimization on.
    pub fn paper() -> Self {
        Config::default()
    }

    /// Ablation A1: no path compression on releases/probe replies.
    pub fn without_path_compression() -> Self {
        Config {
            path_compression: false,
            ..Config::default()
        }
    }

    /// Ablation A2: queries fetch the member's whole `local` set at once.
    pub fn without_balanced_queries() -> Self {
        Config {
            balanced_queries: false,
            ..Config::default()
        }
    }

    /// The paper's algorithm hardened for Byzantine runs: impossible
    /// messages are dropped instead of tripping asserts.
    pub fn byzantine() -> Self {
        Config {
            byzantine_tolerant: true,
            ..Config::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_paper() {
        let c = Config::default();
        assert!(c.path_compression);
        assert!(c.balanced_queries);
        assert!(!c.byzantine_tolerant);
        assert_eq!(Config::paper(), c);
    }

    #[test]
    fn byzantine_config_only_relaxes_asserts() {
        let c = Config::byzantine();
        assert!(c.byzantine_tolerant);
        assert!(c.path_compression && c.balanced_queries);
    }

    #[test]
    fn ablations_flip_one_knob() {
        assert!(!Config::without_path_compression().path_compression);
        assert!(Config::without_path_compression().balanced_queries);
        assert!(!Config::without_balanced_queries().balanced_queries);
        assert!(Config::without_balanced_queries().path_compression);
    }

    #[test]
    fn only_oblivious_broadcasts() {
        assert!(Variant::Oblivious.broadcasts_each_merge());
        assert!(!Variant::Bounded.broadcasts_each_merge());
        assert!(!Variant::AdHoc.broadcasts_each_merge());
    }

    #[test]
    fn variant_display() {
        assert_eq!(Variant::AdHoc.to_string(), "ad-hoc");
    }
}
