//! Checkers for the paper's requirements (§1.2) and execution invariants
//! (§5.1, Lemma 5.1, Lemma 5.10).
//!
//! [`check_requirements`] verifies the quiescent-state requirements; the
//! remaining functions are *always-true* invariants that tests assert after
//! every simulation step.

use std::collections::BTreeSet;

use ard_graph::{components, KnowledgeGraph};
use ard_netsim::{NodeId, Protocol, Runner};

use crate::node::AsArdNode;
use crate::status::Status;
use crate::Variant;

/// Checks the resource-discovery requirements at quiescence:
///
/// 1. exactly one leader per weakly connected component, idle in `Wait`,
///    with every other node `Inactive`;
/// 2. the leader knows the ids of all the nodes in its component
///    (`done` = component, `more`/`unaware`/`unexplored` empty);
/// 3. every non-leader knows its leader — directly (`next == leader`) for
///    the Oblivious/Bounded variants, via the pointer path (3a/3b) for
///    Ad-hoc;
/// 4. liveness bookkeeping: no deferred or relayed messages remain, and for
///    Bounded every node has terminated.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn check_requirements<P: Protocol + AsArdNode>(
    runner: &Runner<P>,
    graph: &KnowledgeGraph,
    variant: Variant,
) -> Result<(), String> {
    if !runner.links_empty() {
        return Err("messages still in flight".into());
    }
    for node in runner.nodes().map(AsArdNode::ard) {
        if node.deferred_len() != 0 {
            return Err(format!("{} still has deferred messages", node.id()));
        }
        if node.previous_len() != 0 {
            return Err(format!("{} still relays unanswered requests", node.id()));
        }
        if node.probes_outstanding() != 0 {
            return Err(format!("{} has unanswered probes", node.id()));
        }
    }

    for component in components::weakly_connected_components(graph) {
        let members: BTreeSet<NodeId> = component.iter().copied().collect();
        let leaders: Vec<NodeId> = component
            .iter()
            .copied()
            .filter(|&v| runner.node(v).ard().is_leader())
            .collect();
        // Requirement 1: exactly one leader.
        if leaders.len() != 1 {
            return Err(format!(
                "component of {} has {} leaders: {:?}",
                component[0],
                leaders.len(),
                leaders
            ));
        }
        let leader = leaders[0];
        let lnode = runner.node(leader).ard();
        if lnode.status() != Status::Wait {
            return Err(format!(
                "leader {leader} not idle in wait: {}",
                lnode.status()
            ));
        }
        if !lnode.more().is_empty() || !lnode.unaware().is_empty() || !lnode.unexplored().is_empty()
        {
            return Err(format!("leader {leader} quiesced with unfinished work"));
        }
        // Requirement 2: the leader knows everyone.
        if lnode.done() != &members {
            let missing: Vec<_> = members.difference(lnode.done()).collect();
            let extra: Vec<_> = lnode.done().difference(&members).collect();
            return Err(format!(
                "leader {leader} knowledge mismatch: missing {missing:?}, extra {extra:?}"
            ));
        }
        for &v in &component {
            if v == leader {
                continue;
            }
            let node = runner.node(v).ard();
            // Non-leaders end inactive.
            if node.status() != Status::Inactive {
                return Err(format!(
                    "{v} ended in {} instead of inactive",
                    node.status()
                ));
            }
            // Requirement 3 / 3a–3b.
            match variant {
                Variant::Oblivious | Variant::Bounded => {
                    if node.next_pointer() != leader {
                        return Err(format!(
                            "{v} points at {} instead of its leader {leader}",
                            node.next_pointer()
                        ));
                    }
                }
                Variant::AdHoc => {
                    if resolve_leader(runner, v)? != leader {
                        return Err(format!("{v}'s pointer path does not reach {leader}"));
                    }
                }
            }
            if variant == Variant::Bounded && !node.is_terminated() {
                return Err(format!("{v} did not terminate in the bounded variant"));
            }
        }
        if variant == Variant::Bounded && !lnode.is_terminated() {
            return Err(format!(
                "leader {leader} did not terminate in the bounded variant"
            ));
        }
    }
    Ok(())
}

/// Requirement 1 restricted to the *honest survivors*: among each
/// component's nodes outside `excluded` (Byzantine nodes, departed nodes),
/// exactly one is in a leader state. Components with no honest member are
/// skipped.
///
/// This is the single-leader cell of the Byzantine guarantee-survival
/// matrix: it deliberately drops the full checker's quiescence bookkeeping
/// (requirement 4) — forged traffic and mid-protocol departures can
/// legitimately strand deferred messages and relays, which the matrix
/// reports as degradation separately.
///
/// # Errors
///
/// Returns a description of the first component without a unique honest
/// leader.
pub fn check_survivor_single_leader<P: Protocol + AsArdNode>(
    runner: &Runner<P>,
    graph: &KnowledgeGraph,
    excluded: &BTreeSet<NodeId>,
) -> Result<(), String> {
    for component in components::weakly_connected_components(graph) {
        let honest: Vec<NodeId> = component
            .iter()
            .copied()
            .filter(|v| !excluded.contains(v))
            .collect();
        if honest.is_empty() {
            continue;
        }
        let leaders: Vec<NodeId> = honest
            .iter()
            .copied()
            .filter(|&v| runner.node(v).ard().is_leader())
            .collect();
        if leaders.len() != 1 {
            return Err(format!(
                "component of {} has {} honest leaders: {:?}",
                component[0],
                leaders.len(),
                leaders
            ));
        }
    }
    Ok(())
}

/// Requirement 2 restricted to the *honest survivors*: each component's
/// unique honest leader holds every other honest member in its cluster sets
/// (`more ∪ done ∪ unaware`). Extra entries — Byzantine nodes, departed
/// nodes, fabricated ids — are tolerated: knowing too much is not a safety
/// violation, claiming members you never discovered is.
///
/// # Errors
///
/// Returns the first component whose honest leader is missing an honest
/// member (or which has no unique honest leader, without which "the leader
/// knows all" is not even well-posed).
pub fn check_survivor_leader_knows_all<P: Protocol + AsArdNode>(
    runner: &Runner<P>,
    graph: &KnowledgeGraph,
    excluded: &BTreeSet<NodeId>,
) -> Result<(), String> {
    for component in components::weakly_connected_components(graph) {
        let honest: Vec<NodeId> = component
            .iter()
            .copied()
            .filter(|v| !excluded.contains(v))
            .collect();
        if honest.is_empty() {
            continue;
        }
        let leaders: Vec<NodeId> = honest
            .iter()
            .copied()
            .filter(|&v| runner.node(v).ard().is_leader())
            .collect();
        let &[leader] = leaders.as_slice() else {
            return Err(format!(
                "component of {}: leader-knows-all undefined with {} honest leaders",
                component[0],
                leaders.len()
            ));
        };
        let lnode = runner.node(leader).ard();
        for &v in &honest {
            if v == leader {
                continue;
            }
            if !(lnode.done().contains(&v)
                || lnode.more().contains(&v)
                || lnode.unaware().contains(&v))
            {
                return Err(format!(
                    "honest leader {leader} does not know honest member {v}"
                ));
            }
        }
    }
    Ok(())
}

/// Follows `next` pointers from `v` to a fixed point.
///
/// # Errors
///
/// Returns an error if the chain cycles (forest invariant violated).
pub fn resolve_leader<P: Protocol + AsArdNode>(
    runner: &Runner<P>,
    v: NodeId,
) -> Result<NodeId, String> {
    let mut cur = v;
    for _ in 0..=runner.len() {
        let next = runner.node(cur).ard().next_pointer();
        if next == cur {
            return Ok(cur);
        }
        cur = next;
    }
    Err(format!("next-pointer chain from {v} cycles"))
}

/// Lemma 5.1: at any stage of execution, every weakly connected component
/// retains at least one node that can still become (or is) a leader —
/// i.e. a node whose state is a leader state or `Asleep`.
///
/// # Errors
///
/// Returns the offending component's smallest member on violation.
pub fn check_leader_exists<P: Protocol + AsArdNode>(
    runner: &Runner<P>,
    graph: &KnowledgeGraph,
) -> Result<(), String> {
    for component in components::weakly_connected_components(graph) {
        let ok = component.iter().any(|&v| {
            let s = runner.node(v).ard().status();
            s.is_leader() || s == Status::Asleep
        });
        if !ok {
            return Err(format!("component of {} lost all leaders", component[0]));
        }
    }
    Ok(())
}

/// The `next` pointers always form a forest: following them from any node
/// terminates at a self-pointing root.
///
/// # Errors
///
/// Returns the node whose chain cycles.
pub fn check_forest<P: Protocol + AsArdNode>(runner: &Runner<P>) -> Result<(), String> {
    for v in runner.ids() {
        resolve_leader(runner, v)?;
    }
    Ok(())
}

/// Lemma 5.10's invariant: every node's cluster satisfies
/// `|more| + |done| + |unaware| < 2^(phase+1)`.
///
/// # Errors
///
/// Returns the offending node.
pub fn check_phase_bound<P: Protocol + AsArdNode>(runner: &Runner<P>) -> Result<(), String> {
    for node in runner.nodes().map(AsArdNode::ard) {
        let size = (node.more().len() + node.done().len() + node.unaware().len()) as u64;
        let bound = 1u64 << (node.phase() + 1);
        // Only meaningful while the node owns its sets (leaders and
        // transitional conquered nodes; inactive nodes shipped theirs).
        if node.status() != Status::Inactive && size >= bound {
            return Err(format!(
                "{}: cluster size {size} ≥ 2^(phase+1) = {bound}",
                node.id()
            ));
        }
    }
    Ok(())
}

/// Phases never decrease and ids never collide: leaders' `(phase, id)` pairs
/// are unique among current leaders of one component. (Uniqueness of ids is
/// structural; this checks the pair ordering sanity used for conquests.)
///
/// # Errors
///
/// Returns a description of the duplicate pair on violation.
pub fn check_leader_pairs_distinct<P: Protocol + AsArdNode>(
    runner: &Runner<P>,
    graph: &KnowledgeGraph,
) -> Result<(), String> {
    for component in components::weakly_connected_components(graph) {
        let mut pairs = BTreeSet::new();
        for &v in &component {
            let node = runner.node(v).ard();
            if node.is_leader() && !pairs.insert((node.phase(), node.id())) {
                return Err(format!(
                    "duplicate leader pair ({}, {})",
                    node.phase(),
                    node.id()
                ));
            }
        }
    }
    Ok(())
}

/// Runs every always-true invariant; convenient per-step hook for tests.
///
/// # Errors
///
/// Propagates the first violation.
pub fn check_step_invariants<P: Protocol + AsArdNode>(
    runner: &Runner<P>,
    graph: &KnowledgeGraph,
) -> Result<(), String> {
    check_leader_exists(runner, graph)?;
    check_forest(runner)?;
    check_phase_bound(runner)?;
    check_leader_pairs_distinct(runner, graph)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Discovery, Variant};
    use ard_graph::gen;
    use ard_netsim::RandomScheduler;

    /// Step a discovery one event at a time, asserting the always-true
    /// invariants after each step.
    fn run_with_invariant_checks(graph: &KnowledgeGraph, variant: Variant, seed: u64) {
        let mut d = Discovery::new(graph, variant);
        let mut sched = RandomScheduler::seeded(seed);
        d.enqueue_wake_all(&mut sched);
        let mut steps = 0u64;
        while d.runner_mut().step(&mut sched) {
            steps += 1;
            assert!(steps < 1_000_000, "livelock");
            check_step_invariants(d.runner(), graph).unwrap_or_else(|e| {
                panic!("invariant violated after step {steps} (seed {seed}): {e}")
            });
        }
        check_requirements(d.runner(), graph, variant).unwrap();
    }

    #[test]
    fn invariants_hold_stepwise_random_graphs() {
        for seed in 0..8 {
            let graph = gen::random_weakly_connected(12, 20, seed);
            run_with_invariant_checks(&graph, Variant::Oblivious, seed);
            run_with_invariant_checks(&graph, Variant::Bounded, seed + 100);
            run_with_invariant_checks(&graph, Variant::AdHoc, seed + 200);
        }
    }

    #[test]
    fn invariants_hold_stepwise_extreme_shapes() {
        for (name, graph) in [
            ("path", gen::path(10)),
            ("ring", gen::ring(10)),
            ("star_out", gen::star_out(10)),
            ("star_in", gen::star_in(10)),
            ("tree", gen::binary_tree_down(4)),
            ("complete", gen::complete(8)),
        ] {
            for seed in 0..3 {
                for variant in [Variant::Oblivious, Variant::Bounded, Variant::AdHoc] {
                    let _ = name;
                    run_with_invariant_checks(&graph, variant, seed);
                }
            }
        }
    }

    #[test]
    fn requirement_checker_rejects_in_flight_messages() {
        let graph = gen::path(4);
        let mut d = Discovery::new(&graph, Variant::Oblivious);
        let mut sched = RandomScheduler::seeded(0);
        d.enqueue_wake_all(&mut sched);
        // Step only a few events: messages are still in flight.
        for _ in 0..3 {
            d.runner_mut().step(&mut sched);
        }
        assert!(check_requirements(d.runner(), &graph, Variant::Oblivious).is_err());
    }
}
