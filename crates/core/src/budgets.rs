//! Empirical checks of the paper's per-message-type budgets (Lemmas
//! 5.5–5.10) and total complexity theorems (5, 6 and 7).
//!
//! Each check takes the [`Metrics`] of a finished run plus the instance
//! parameters and verifies the measured count against the analytic bound.
//! The lemma bounds are checked with the paper's own constants; the
//! asymptotic theorems use explicit constants, documented per function, that
//! every topology and scheduler in the test suite satisfies with headroom —
//! breaking one in a refactor means the implementation regressed
//! asymptotically.
//!
//! Bit-level checks add the simulator's fixed per-message overhead (kind tag
//! plus non-id payload; see [`Message`](crate::Message)) on top of the
//! paper's id-only accounting.

use ard_netsim::{Metrics, KIND_TAG_BITS};
use ard_union_find::alpha;

use crate::{Message, Variant};

fn log2_ceil(n: u64) -> u64 {
    if n <= 1 {
        1
    } else {
        64 - (n - 1).leading_zeros() as u64
    }
}

fn check(label: &str, actual: u64, bound: u64) -> Result<(), String> {
    if actual <= bound {
        Ok(())
    } else {
        Err(format!("{label}: measured {actual} exceeds bound {bound}"))
    }
}

/// Lemma 5.5: at most `4n` query / query-reply *pairs* — so at most `4n`
/// messages of each of the two kinds.
///
/// # Errors
///
/// Returns which side exceeded `4n`.
pub fn check_lemma_5_5(metrics: &Metrics, n: u64) -> Result<(), String> {
    check(
        "query messages (Lemma 5.5)",
        metrics.kind("query").messages,
        4 * n,
    )?;
    check(
        "query replies (Lemma 5.5)",
        metrics.kind("query reply").messages,
        4 * n,
    )
}

/// Lemma 5.6: `O(n·α(n,n))` search and release messages. Constant: `16`
/// per find-operation equivalent (the paper's simulation performs at most
/// `3n` union-find operations; `16·n·(α+1)` holds every measured run with
/// ≥2× headroom).
///
/// # Errors
///
/// Returns the measured total on violation.
pub fn check_lemma_5_6(metrics: &Metrics, n: u64) -> Result<(), String> {
    let bound = 16 * n * (alpha(n.max(1), n.max(1)) + 1);
    check(
        "search+release messages (Lemma 5.6)",
        metrics.messages_of(&["search", "release"]),
        bound,
    )
}

/// Lemma 5.7: the paper claims at most `2n` merge-accept + merge-fail +
/// info messages, assuming each node sends `release`-merge at most once.
/// Figure 1, however, allows `passive → conquered` re-surrender after a
/// merge fail, so a node can surrender repeatedly; the tight form is
/// `accepts + infos ≤ 2(n−1)` (one pair per successful merge) plus
/// `fails ≤ n` (one per dead search origin), i.e. `3n − 2` in total. We
/// check both: the paper's `2n` for the accept/info pairs, and `3n` overall.
/// (Recorded as a reproduction finding in EXPERIMENTS.md.)
///
/// # Errors
///
/// Returns the measured total on violation.
pub fn check_lemma_5_7(metrics: &Metrics, n: u64) -> Result<(), String> {
    check(
        "merge accept + info (Lemma 5.7, paper's core claim)",
        metrics.messages_of(&["merge accept", "info"]),
        2 * n,
    )?;
    check(
        "merge accept/fail + info (Lemma 5.7, corrected)",
        metrics.messages_of(&["merge accept", "merge fail", "info"]),
        3 * n,
    )
}

/// Lemma 5.8: at most `2n log n` conquer + more/done messages for the
/// generic algorithm, `2n` for Bounded, none for Ad-hoc.
///
/// # Errors
///
/// Returns the measured total on violation.
pub fn check_lemma_5_8(metrics: &Metrics, n: u64, variant: Variant) -> Result<(), String> {
    let actual = metrics.messages_of(&["conquer", "more/done"]);
    let bound = match variant {
        Variant::Oblivious => 2 * n * log2_ceil(n),
        Variant::Bounded => 2 * n,
        Variant::AdHoc => 0,
    };
    check("conquer + more/done (Lemma 5.8)", actual, bound)
}

/// Lemma 5.9: query replies carry at most `2·|E₀|` ids, i.e.
/// `2·|E₀|·log n` id-bits (plus fixed per-message overhead).
///
/// # Errors
///
/// Returns the measured bits on violation.
pub fn check_lemma_5_9(metrics: &Metrics, e0: u64) -> Result<(), String> {
    check_lemma_5_9_overhead(metrics, e0, 0)
}

fn check_lemma_5_9_overhead(metrics: &Metrics, e0: u64, extra: u64) -> Result<(), String> {
    let counts = metrics.kind("query reply");
    let overhead_per_msg = Message::QUERY_REPLY_AUX_BITS + KIND_TAG_BITS + extra;
    let bound = 2 * e0 * metrics.id_bits() + counts.messages * overhead_per_msg;
    check("query reply bits (Lemma 5.9)", counts.bits, bound)
}

/// Lemma 5.10: info messages carry at most `4n log n` ids, i.e.
/// `4n log² n` id-bits (plus fixed per-message overhead).
///
/// # Errors
///
/// Returns the measured bits on violation.
pub fn check_lemma_5_10(metrics: &Metrics, n: u64) -> Result<(), String> {
    check_lemma_5_10_overhead(metrics, n, 0)
}

fn check_lemma_5_10_overhead(metrics: &Metrics, n: u64, extra: u64) -> Result<(), String> {
    let counts = metrics.kind("info");
    let overhead_per_msg = Message::INFO_AUX_BITS + KIND_TAG_BITS + extra;
    let bound = 4 * n * metrics.id_bits() * metrics.id_bits() + counts.messages * overhead_per_msg;
    check("info bits (Lemma 5.10)", counts.bits, bound)
}

/// Theorem 5: the generic algorithm sends `O(n log n)` messages.
/// Constant: `24·n·(⌈log n⌉ + 1)` — the sum of the per-kind lemma bounds
/// with headroom.
///
/// # Errors
///
/// Returns the measured total on violation.
pub fn check_theorem_5(metrics: &Metrics, n: u64) -> Result<(), String> {
    let bound = 24 * n * (log2_ceil(n) + 1);
    check(
        "total messages (Theorem 5)",
        metrics.total_messages(),
        bound,
    )
}

/// Kinds emitted by the reliable-delivery envelope ([`crate::Reliable`])
/// that are pure fault-recovery overhead: retransmissions of already-metered
/// logical messages and acknowledgements. The faulty budget checks
/// ([`check_all_faulty`]) subtract these before applying the paper's
/// fault-free complexity theorems.
pub const OVERHEAD_KINDS: [&str; 2] = ["retransmit", "rd-ack"];

/// Theorem 6: the Bounded and Ad-hoc algorithms send `O(n·α(n,n))`
/// messages. Constant: `32·n·(α+1)`.
///
/// # Errors
///
/// Returns the measured total on violation.
pub fn check_theorem_6(metrics: &Metrics, n: u64) -> Result<(), String> {
    let bound = 32 * n * (alpha(n.max(1), n.max(1)) + 1);
    check(
        "total messages (Theorem 6)",
        metrics.total_messages(),
        bound,
    )
}

/// Theorem 7: total bits are `O(|E₀| log n + n log² n)`.
/// Constant: `8·(|E₀|·⌈log n⌉ + (n+1)·⌈log n⌉²) + 64·n·⌈log n⌉`, plus an
/// additive `96·(n + 4)` covering the simulator's fixed per-message
/// overheads, which dominate only at very small `n`.
///
/// # Errors
///
/// Returns the measured total on violation.
pub fn check_theorem_7(metrics: &Metrics, n: u64, e0: u64) -> Result<(), String> {
    let b = metrics.id_bits();
    let bound = 8 * (e0 * b + (n + 1) * b * b) + 64 * n * b + 96 * (n + 4);
    check("total bits (Theorem 7)", metrics.total_bits(), bound)
}

/// Every per-kind lemma plus the matching total-complexity theorem for one
/// finished run.
///
/// # Errors
///
/// Propagates the first violated bound.
pub fn check_all(metrics: &Metrics, n: u64, e0: u64, variant: Variant) -> Result<(), String> {
    check_lemma_5_5(metrics, n)?;
    check_lemma_5_6(metrics, n)?;
    check_lemma_5_7(metrics, n)?;
    check_lemma_5_8(metrics, n, variant)?;
    check_lemma_5_9(metrics, e0)?;
    check_lemma_5_10(metrics, n)?;
    match variant {
        Variant::Oblivious => check_theorem_5(metrics, n)?,
        Variant::Bounded | Variant::AdHoc => check_theorem_6(metrics, n)?,
    }
    check_theorem_7(metrics, n, e0)
}

/// [`check_all`] for a run under fault injection with the reliable-delivery
/// envelope ([`crate::Reliable`]).
///
/// The per-kind count lemmas apply unchanged: a first transmission keeps its
/// logical kind, while retransmissions and acks are metered under the
/// dedicated [`OVERHEAD_KINDS`]. The bit lemmas gain 32 bits per message
/// (the envelope's sequence number), and the total-complexity theorems are
/// checked on the **net** totals — measured totals minus the explicitly
/// metered retransmission/ack overhead and per-message sequence numbers.
/// The overhead itself is unbounded in the fault rate (a drop probability
/// close to 1 forces arbitrarily many retransmissions), which is exactly
/// why it must be subtracted rather than absorbed into a constant.
///
/// # Errors
///
/// Propagates the first violated bound.
pub fn check_all_faulty(metrics: &Metrics, n: u64, e0: u64, variant: Variant) -> Result<(), String> {
    check_lemma_5_5(metrics, n)?;
    check_lemma_5_6(metrics, n)?;
    check_lemma_5_7(metrics, n)?;
    check_lemma_5_8(metrics, n, variant)?;
    check_lemma_5_9_overhead(metrics, e0, 32)?;
    check_lemma_5_10_overhead(metrics, n, 32)?;
    let overhead_msgs = metrics.messages_of(&OVERHEAD_KINDS);
    let overhead_bits: u64 = OVERHEAD_KINDS.iter().map(|k| metrics.kind(k).bits).sum();
    let net_msgs = metrics.total_messages() - overhead_msgs;
    let msg_bound = match variant {
        Variant::Oblivious => 24 * n * (log2_ceil(n) + 1),
        Variant::Bounded | Variant::AdHoc => 32 * n * (alpha(n.max(1), n.max(1)) + 1),
    };
    check(
        "net messages (faulty run, Theorems 5/6)",
        net_msgs,
        msg_bound,
    )?;
    let b = metrics.id_bits();
    let net_bits = metrics.total_bits() - overhead_bits - 32 * net_msgs;
    let bit_bound = 8 * (e0 * b + (n + 1) * b * b) + 64 * n * b + 96 * (n + 4);
    check("net bits (faulty run, Theorem 7)", net_bits, bit_bound)
}

/// [`check_all`] for a run under Byzantine fault injection
/// ([`crate::ByzantineDiscovery`]).
///
/// Forged messages are delivered and metered under their payload's kind —
/// a receiver cannot distinguish a lie from the real thing — but the
/// simulator also tracks them in [`Metrics::byzantine`]. This check nets
/// the adversarial traffic back out: every per-kind count lemma gets
/// `forged` messages of slack (each forged message lands in exactly one
/// kind), the bit lemmas get `forged_bits`, and the total-complexity
/// theorems are checked on the measured totals minus the forged traffic.
///
/// What it deliberately does **not** excuse is the honest traffic the lies
/// provoke: spurious searches toward fabricated ids, extra merge rounds,
/// re-conquests after a stale restart. If the adversary can make *honest*
/// nodes overspend the paper's budgets, the budget guarantee has degraded —
/// and the guarantee-survival matrix reports exactly that.
///
/// # Errors
///
/// Propagates the first violated bound.
pub fn check_all_byzantine(
    metrics: &Metrics,
    n: u64,
    e0: u64,
    variant: Variant,
) -> Result<(), String> {
    let byz = metrics.byzantine();
    let forged = byz.forged;
    check(
        "query messages (Lemma 5.5, net of forgery)",
        metrics.kind("query").messages,
        4 * n + forged,
    )?;
    check(
        "query replies (Lemma 5.5, net of forgery)",
        metrics.kind("query reply").messages,
        4 * n + forged,
    )?;
    check(
        "search+release messages (Lemma 5.6, net of forgery)",
        metrics.messages_of(&["search", "release"]),
        16 * n * (alpha(n.max(1), n.max(1)) + 1) + forged,
    )?;
    check(
        "merge accept/fail + info (Lemma 5.7, net of forgery)",
        metrics.messages_of(&["merge accept", "merge fail", "info"]),
        3 * n + forged,
    )?;
    let lemma_5_8_bound = match variant {
        Variant::Oblivious => 2 * n * log2_ceil(n),
        Variant::Bounded => 2 * n,
        Variant::AdHoc => 0,
    };
    check(
        "conquer + more/done (Lemma 5.8, net of forgery)",
        metrics.messages_of(&["conquer", "more/done"]),
        lemma_5_8_bound + forged,
    )?;
    let b = metrics.id_bits();
    let qr = metrics.kind("query reply");
    check(
        "query reply bits (Lemma 5.9, net of forgery)",
        qr.bits,
        2 * e0 * b + qr.messages * (Message::QUERY_REPLY_AUX_BITS + KIND_TAG_BITS) + byz.forged_bits,
    )?;
    let info = metrics.kind("info");
    check(
        "info bits (Lemma 5.10, net of forgery)",
        info.bits,
        4 * n * b * b + info.messages * (Message::INFO_AUX_BITS + KIND_TAG_BITS) + byz.forged_bits,
    )?;
    let net_msgs = metrics.total_messages().saturating_sub(forged);
    let msg_bound = match variant {
        Variant::Oblivious => 24 * n * (log2_ceil(n) + 1),
        Variant::Bounded | Variant::AdHoc => 32 * n * (alpha(n.max(1), n.max(1)) + 1),
    };
    check(
        "net messages (Byzantine run, Theorems 5/6)",
        net_msgs,
        msg_bound,
    )?;
    let net_bits = metrics.total_bits().saturating_sub(byz.forged_bits);
    let bit_bound = 8 * (e0 * b + (n + 1) * b * b) + 64 * n * b + 96 * (n + 4);
    check("net bits (Byzantine run, Theorem 7)", net_bits, bit_bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Discovery, Variant};
    use ard_graph::gen;
    use ard_netsim::RandomScheduler;

    fn run(n: usize, extra: usize, variant: Variant, seed: u64) -> (Metrics, u64, u64) {
        let graph = gen::random_weakly_connected(n, extra, seed);
        let mut d = Discovery::new(&graph, variant);
        let outcome = d
            .run_all(&mut RandomScheduler::seeded(seed ^ 0xabc))
            .unwrap();
        d.check_requirements(&graph).unwrap();
        (outcome.metrics, n as u64, graph.edge_count() as u64)
    }

    #[test]
    fn budgets_hold_on_random_graphs() {
        for variant in [Variant::Oblivious, Variant::Bounded, Variant::AdHoc] {
            for seed in 0..6 {
                let (m, n, e0) = run(48, 120, variant, seed);
                check_all(&m, n, e0, variant)
                    .unwrap_or_else(|e| panic!("{variant} seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn budgets_hold_on_trees_and_stars() {
        for variant in [Variant::Oblivious, Variant::Bounded, Variant::AdHoc] {
            for graph in [
                gen::binary_tree_down(5),
                gen::star_in(31),
                gen::star_out(31),
            ] {
                let mut d = Discovery::new(&graph, variant);
                let outcome = d.run_all(&mut RandomScheduler::seeded(1)).unwrap();
                d.check_requirements(&graph).unwrap();
                check_all(
                    &outcome.metrics,
                    graph.len() as u64,
                    graph.edge_count() as u64,
                    variant,
                )
                .unwrap_or_else(|e| panic!("{variant}: {e}"));
            }
        }
    }

    #[test]
    fn adhoc_sends_no_conquers() {
        let (m, n, _) = run(32, 64, Variant::AdHoc, 3);
        check_lemma_5_8(&m, n, Variant::AdHoc).unwrap();
        assert_eq!(m.kind("conquer").messages, 0);
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 1);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn violations_are_reported() {
        let mut m = Metrics::new(8);
        for _ in 0..100 {
            m.record("query", 0, 32);
        }
        let err = check_lemma_5_5(&m, 4).unwrap_err();
        assert!(err.contains("exceeds bound"));
    }
}
