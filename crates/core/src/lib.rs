//! The asynchronous resource discovery algorithms of Abraham & Dolev
//! (PODC 2003).
//!
//! *Resource discovery* runs on a knowledge graph (see [`ard_graph`]): nodes
//! know some ids initially, learn ids from messages, and must end with
//! exactly one **leader** per weakly connected component such that the
//! leader knows every id in its component and every other node knows (or can
//! reach, in the Ad-hoc variant) its leader. The network is asynchronous
//! with per-link FIFO delivery and no global start (see [`ard_netsim`]).
//!
//! Three problem variants are implemented, all sharing one generic conquest
//! engine ([`node::ArdNode`], the state machine of the paper's Figure 1):
//!
//! * [`Variant::Oblivious`] — component sizes unknown. `O(n log n)`
//!   messages, `O(|E₀| log n + n log² n)` bits (paper Theorems 5 and 7);
//!   message-optimal by the paper's Theorem 1 lower bound.
//! * [`Variant::Bounded`] — every node knows its component's size; the
//!   final leader *detects termination* and broadcasts it. `O(n·α(n,n))`
//!   messages (Theorems 4 and 6).
//! * [`Variant::AdHoc`] — non-leaders only keep a pointer path to the
//!   leader; any node can [`probe`](Discovery::probe) for the current
//!   snapshot with amortized path compression. `O(n·α(n,n))` messages,
//!   asymptotically optimal by the Union-Find reduction (Theorem 2), and
//!   supports dynamic node/link additions (§6, Theorem 8).
//!
//! # Example
//!
//! ```
//! use ard_core::{Discovery, Variant};
//! use ard_graph::gen;
//! use ard_netsim::RandomScheduler;
//!
//! let graph = gen::random_weakly_connected(32, 64, 1);
//! let mut sched = RandomScheduler::seeded(7);
//! let mut discovery = Discovery::new(&graph, Variant::Oblivious);
//! let outcome = discovery.run_all(&mut sched).unwrap();
//!
//! assert_eq!(outcome.leaders.len(), 1); // one leader for one component
//! discovery.check_requirements(&graph).unwrap();
//! println!("{} messages", outcome.metrics.total_messages());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budgets;
mod byzantine;
mod config;
mod driver;
mod faulty;
pub mod invariants;
mod msg;
pub mod node;
mod reliable;
mod status;

pub use byzantine::{byzantine_meta, churn_meta, ByzantineDiscovery, ByzantineOutcome};
pub use config::{Config, Variant};
pub use driver::{Discovery, Outcome, ProbeStatus};
pub use faulty::{FaultyDiscovery, FaultyOutcome};
pub use msg::{InfoPayload, Message, Verdict};
pub use node::AsArdNode;
pub use reliable::{Reliable, ReliableMsg};
pub use status::{Status, Transition, EXPECTED_TRANSITIONS};
