use std::fmt;

/// The node states of the paper's Figure 1, plus the pre-wake-up `Asleep`
/// state the asynchronous model implies.
///
/// A node is a **leader** while in `Explore`, `Wait` or `Conqueror`; it
/// permanently stops leading once `Conquered`, `Passive` or `Inactive`
/// (paper §4: "We will call a node leader if its state is not conquered or
/// inactive or passive").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Status {
    /// Not yet woken up (no Figure 1 counterpart; nodes start here and
    /// leave on their wake-up event or first received message).
    Asleep,
    /// Leader looking for an unexplored node via `query` exchanges (§4.1).
    Explore,
    /// Leader waiting — either for the `release` answering its own `search`,
    /// or idly for its `more` set to be replenished (§4.1–4.3).
    Wait,
    /// Ex-leader whose conquest attempt was aborted or whose merge failed;
    /// it initiates nothing and waits to be conquered (§4.3).
    Passive,
    /// Leader that won a merge and is absorbing the loser's cluster (§4.4).
    Conqueror,
    /// Ex-leader that surrendered (sent `release`-merge) and awaits
    /// `merge accept` / `merge fail` (§4.3).
    Conquered,
    /// Fully subsumed node: answers queries and routes searches/releases
    /// along its `next` pointer (§4.2).
    Inactive,
}

impl Status {
    /// Whether a node in this state is a leader in the paper's sense.
    pub fn is_leader(self) -> bool {
        matches!(self, Status::Explore | Status::Wait | Status::Conqueror)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Status::Asleep => "asleep",
            Status::Explore => "explore",
            Status::Wait => "wait",
            Status::Passive => "passive",
            Status::Conqueror => "conqueror",
            Status::Conquered => "conquered",
            Status::Inactive => "inactive",
        };
        f.write_str(name)
    }
}

/// One observed state transition, for checking the implementation against
/// the paper's Figure 1 diagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Transition {
    /// State before.
    pub from: Status,
    /// State after.
    pub to: Status,
}

impl Transition {
    /// Creates a transition.
    pub fn new(from: Status, to: Status) -> Self {
        Transition { from, to }
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → {}", self.from, self.to)
    }
}

/// The exact transition set of the paper's Figure 1 (among the six paper
/// states), plus the `Asleep → Explore` wake-up edge.
///
/// One edge is an addition mandated by the §4.1 *text* rather than the
/// diagram: `Wait → Explore`, taken by an idle waiting leader whose `more`
/// set is replenished by an incoming search with the `new` flag ("the
/// leader v waits until v.more becomes non-empty").
pub const EXPECTED_TRANSITIONS: &[Transition] = &[
    // Wake-up.
    Transition {
        from: Status::Asleep,
        to: Status::Explore,
    },
    // Explore: search sent, or `more` and `unexplored` both empty.
    Transition {
        from: Status::Explore,
        to: Status::Wait,
    },
    // Idle waiter replenished (§4.1 text).
    Transition {
        from: Status::Wait,
        to: Status::Explore,
    },
    // Search with higher (phase, id) arrives: surrender.
    Transition {
        from: Status::Wait,
        to: Status::Conquered,
    },
    // Own search answered with release-abort.
    Transition {
        from: Status::Wait,
        to: Status::Passive,
    },
    // Own search answered with release-merge: start conquering.
    Transition {
        from: Status::Wait,
        to: Status::Conqueror,
    },
    // All newly acquired members acknowledged (or, in the Bounded/Ad-hoc
    // variants, immediately after merging the info).
    Transition {
        from: Status::Conqueror,
        to: Status::Explore,
    },
    // Merge accept arrived: ship info, become a message router.
    Transition {
        from: Status::Conquered,
        to: Status::Inactive,
    },
    // Merge fail arrived.
    Transition {
        from: Status::Conquered,
        to: Status::Passive,
    },
    // A later, stronger leader's search finally conquers a passive node.
    Transition {
        from: Status::Passive,
        to: Status::Conquered,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_states_match_paper() {
        assert!(Status::Explore.is_leader());
        assert!(Status::Wait.is_leader());
        assert!(Status::Conqueror.is_leader());
        assert!(!Status::Passive.is_leader());
        assert!(!Status::Conquered.is_leader());
        assert!(!Status::Inactive.is_leader());
        assert!(!Status::Asleep.is_leader());
    }

    #[test]
    fn expected_transitions_are_unique() {
        let mut set = EXPECTED_TRANSITIONS.to_vec();
        set.sort();
        set.dedup();
        assert_eq!(set.len(), EXPECTED_TRANSITIONS.len());
    }

    #[test]
    fn no_transition_escapes_terminal_inactive() {
        assert!(EXPECTED_TRANSITIONS
            .iter()
            .all(|t| t.from != Status::Inactive));
    }

    #[test]
    fn display_is_readable() {
        let t = Transition::new(Status::Wait, Status::Conquered);
        assert_eq!(t.to_string(), "wait → conquered");
    }
}
