//! Driving discovery runs under Byzantine faults and membership churn.
//!
//! [`ByzantineDiscovery`] is the adversarial-tier sibling of
//! [`Discovery`]/[`FaultyDiscovery`](crate::FaultyDiscovery): the same
//! network of [`ArdNode`]s, built with [`Config::byzantine`] so forged
//! "impossible" messages are dropped instead of tripping the honest-run
//! asserts, and driven by a [`FaultScheduler`] carrying a
//! [`ByzantinePlan`] (equivocation, fabricated ids, selective silence,
//! stale restarts) and/or a [`ChurnPlan`] (join/leave membership churn,
//! extending the paper's §6 dynamic-additions model with departures).
//!
//! Unlike the fault tier, Byzantine runs use the **bare** protocol — no
//! [`Reliable`](crate::Reliable) envelope. Reliable delivery cannot defend
//! against forged content (the envelope would dutifully ack a lie), and
//! the silence class is precisely a targeted loss the paper's model does
//! not cover; wrapping would only measure the envelope, not the protocol.
//! A bare network always quiesces, so every run ends in a state the
//! guarantee-survival checks can interrogate.
//!
//! The entry points mirror the fault tier:
//!
//! * [`Discovery::run_byzantine`] records the complete choice sequence —
//!   including every `Forge`/`Silence`/`StaleRestart`/`Join`/`Leave` — into
//!   a [`Schedule`] (format v2), then evaluates each guarantee
//!   (single-leader, leader-knows-all, budget lemmas) over the *honest
//!   survivors* and reports the verdicts in the outcome instead of
//!   failing the run: degradation is the measurement, not an error.
//! * [`Discovery::replay_byzantine`] re-executes such a schedule with a
//!   strict [`ReplayScheduler`] — no plans, no RNG — byte-exactly,
//!   reconstructing the withheld joiner wakes from the schedule's `churn`
//!   metadata.

use std::collections::BTreeSet;

use ard_graph::{components, KnowledgeGraph};
use ard_netsim::{
    ByzantineCounts, ByzantinePlan, ChurnPlan, FaultScheduler, Metrics, NodeId,
    RecordingScheduler, ReplayScheduler, Runner, Schedule, Scheduler,
};

use crate::invariants;
use crate::node::ArdNode;
use crate::{Config, Discovery, Variant};

/// Final picture of a discovery run under Byzantine faults and churn.
///
/// The three `Result` fields are the run's row of the guarantee-survival
/// matrix: `Ok` means the guarantee survived this adversary, `Err` carries
/// the concrete violation. A failed guarantee is a *finding*, not a test
/// error — callers decide which cells must hold.
#[derive(Clone, Debug)]
pub struct ByzantineOutcome {
    /// All nodes currently in a leader state (honest or not), in id order.
    pub leaders: Vec<NodeId>,
    /// Simulation steps executed.
    pub steps: u64,
    /// Communication metrics, including the forged traffic.
    pub metrics: Metrics,
    /// Byzantine/churn event counters.
    pub byzantine: ByzantineCounts,
    /// The plan's Byzantine nodes, in id order (empty without a plan).
    pub byzantine_nodes: Vec<NodeId>,
    /// Nodes whose initial wake the churn plan withheld (they joined via
    /// explicit `Join` events), in draw order.
    pub joined: Vec<NodeId>,
    /// Nodes that permanently left, in draw order.
    pub left: Vec<NodeId>,
    /// Requirement 1 over the honest survivors
    /// ([`invariants::check_survivor_single_leader`]).
    pub single_leader: Result<(), String>,
    /// Requirement 2 over the honest survivors
    /// ([`invariants::check_survivor_leader_knows_all`]).
    pub leader_knows_all: Result<(), String>,
    /// The paper's budget lemmas net of forged traffic
    /// ([`crate::budgets::check_all_byzantine`]).
    pub budgets: Result<(), String>,
}

impl ByzantineOutcome {
    /// The nodes excluded from the survivor guarantees: Byzantine nodes
    /// and departed nodes.
    pub fn excluded(&self) -> BTreeSet<NodeId> {
        self.byzantine_nodes
            .iter()
            .chain(&self.left)
            .copied()
            .collect()
    }

    /// Whether every checked guarantee survived this run.
    pub fn survives_all(&self) -> bool {
        self.single_leader.is_ok() && self.leader_knows_all.is_ok() && self.budgets.is_ok()
    }
}

/// A [`Discovery`] network hardened with [`Config::byzantine`], ready to
/// run under a Byzantine/churn-injecting scheduler.
pub struct ByzantineDiscovery {
    runner: Runner<ArdNode>,
    graph: KnowledgeGraph,
    variant: Variant,
}

impl ByzantineDiscovery {
    /// Builds the network with the Byzantine-tolerant configuration.
    pub fn new(graph: &KnowledgeGraph, variant: Variant) -> Self {
        let config = Config::byzantine();
        let mut nodes: Vec<ArdNode> = graph
            .ids()
            .map(|id| ArdNode::new(id, graph.out_edges(id).iter().copied(), variant, config))
            .collect();
        if variant == Variant::Bounded {
            for component in components::weakly_connected_components(graph) {
                for &v in &component {
                    nodes[v.index()].set_component_size(component.len());
                }
            }
        }
        ByzantineDiscovery {
            runner: Runner::with_topology(nodes, |id| graph.out_edges(id)),
            graph: graph.clone(),
            variant,
        }
    }

    /// The underlying simulator.
    pub fn runner(&self) -> &Runner<ArdNode> {
        &self.runner
    }

    /// The problem variant in force.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Step budget: 10× the fault-free budget of
    /// [`Discovery::default_step_budget`]. Forged traffic and its honest
    /// echoes (spurious searches, re-conquests after stale restarts) are
    /// bounded by the plan's finite timeline, so this still means livelock
    /// when hit.
    pub fn step_budget(&self) -> u64 {
        let n = self.runner.len() as u64;
        10 * (200 * n * (64 - n.leading_zeros() as u64 + 1) + 10_000)
    }

    /// Wakes every node except the `withheld` churn joiners (they come
    /// online via explicit [`Choice::Join`](ard_netsim::Choice) events)
    /// and runs to quiescence.
    ///
    /// # Errors
    ///
    /// Returns the livelock description if the step budget is exhausted.
    pub fn run_all(
        &mut self,
        sched: &mut dyn Scheduler,
        withheld: &BTreeSet<NodeId>,
    ) -> Result<u64, String> {
        for id in self.runner.ids().collect::<Vec<_>>() {
            if !withheld.contains(&id) {
                self.runner.enqueue_wake(id, sched);
            }
        }
        let budget = self.step_budget();
        self.runner.run(sched, budget).map_err(|e| e.to_string())
    }

    /// Evaluates the guarantee-survival verdicts at quiescence.
    pub fn outcome(
        &self,
        steps: u64,
        byz: Option<&ByzantinePlan>,
        churn: Option<&ChurnPlan>,
    ) -> ByzantineOutcome {
        let n = self.runner.len();
        let byzantine_nodes = byz
            .map(|b| {
                let mut v = b.byzantine_nodes(n);
                v.sort_unstable();
                v
            })
            .unwrap_or_default();
        let joined = churn.map(|c| c.joiners(n)).unwrap_or_default();
        let left = churn.map(|c| c.leavers(n)).unwrap_or_default();
        let excluded: BTreeSet<NodeId> = byzantine_nodes.iter().chain(&left).copied().collect();
        let metrics = self.runner.metrics().clone();
        ByzantineOutcome {
            leaders: self
                .runner
                .nodes()
                .filter(|node| node.is_leader())
                .map(ArdNode::id)
                .collect(),
            steps,
            single_leader: invariants::check_survivor_single_leader(
                &self.runner,
                &self.graph,
                &excluded,
            ),
            leader_knows_all: invariants::check_survivor_leader_knows_all(
                &self.runner,
                &self.graph,
                &excluded,
            ),
            budgets: crate::budgets::check_all_byzantine(
                &metrics,
                n as u64,
                self.graph.edge_count() as u64,
                self.variant,
            ),
            byzantine: metrics.byzantine(),
            byzantine_nodes,
            joined,
            left,
            metrics,
        }
    }
}

impl std::fmt::Debug for ByzantineDiscovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByzantineDiscovery")
            .field("variant", &self.variant)
            .field("nodes", &self.runner.len())
            .finish()
    }
}

/// Canonical `byzantine` metadata value: `f` and `seed` let a replayer
/// reconstruct the Byzantine node set; the class list documents the plan
/// for humans and regeneration scripts.
pub fn byzantine_meta(plan: &ByzantinePlan) -> String {
    let mut classes = Vec::new();
    if plan.equivocate {
        classes.push("equivocate");
    }
    if plan.fabricate {
        classes.push("fabricate");
    }
    if plan.silence {
        classes.push("silence");
    }
    if plan.stale_restart {
        classes.push("stale-restart");
    }
    format!(
        "f={},seed={},classes={}",
        plan.f,
        plan.seed,
        classes.join("+")
    )
}

/// Canonical `churn` metadata value: `rate` and `seed` fully determine the
/// joiner/leaver sets, which replay needs to withhold the right wakes.
pub fn churn_meta(plan: &ChurnPlan) -> String {
    format!("rate={},seed={}", plan.rate, plan.seed)
}

/// Extracts `key=value` from a comma-separated meta string.
fn meta_field<'a>(meta: &'a str, key: &str) -> Option<&'a str> {
    meta.split(',')
        .find_map(|kv| kv.strip_prefix(key)?.strip_prefix('='))
}

/// Reconstructs the node-set-relevant part of a [`ByzantinePlan`] from its
/// schedule metadata (classes are irrelevant to replay: the recorded
/// choices already carry every injected event).
fn parse_byzantine_meta(meta: &str) -> Option<ByzantinePlan> {
    let f = meta_field(meta, "f")?.parse().ok()?;
    let seed = meta_field(meta, "seed")?.parse().ok()?;
    Some(ByzantinePlan::new(seed, f))
}

/// Reconstructs a [`ChurnPlan`] from its schedule metadata.
fn parse_churn_meta(meta: &str) -> Option<ChurnPlan> {
    let rate = meta_field(meta, "rate")?.parse().ok()?;
    let seed = meta_field(meta, "seed")?.parse().ok()?;
    Some(ChurnPlan::new(seed, rate))
}

impl Discovery {
    /// Runs discovery on `graph` under Byzantine faults and/or membership
    /// churn: a bare Byzantine-tolerant network, the scheduler wrapped in a
    /// [`FaultScheduler`] carrying the plans, the full choice sequence
    /// recorded. Churn joiners' initial wakes are withheld — they come
    /// online through the plan's `Join` events (§6's "joining = waking").
    ///
    /// Returns the run result and the recorded schedule (also on livelock —
    /// a failing prefix is still worth replaying). The schedule carries
    /// `nodes`, `variant` and, when plans are attached, `byzantine`/`churn`
    /// metadata; [`replay_byzantine`](Discovery::replay_byzantine)
    /// re-executes it exactly. With both plans absent the recording is
    /// byte-identical to an honest [`run_recorded`](Discovery::run_recorded)
    /// of the same inner scheduler, except for the node configuration.
    pub fn run_byzantine<S: Scheduler>(
        graph: &KnowledgeGraph,
        variant: Variant,
        byz: Option<&ByzantinePlan>,
        churn: Option<&ChurnPlan>,
        inner: S,
    ) -> (Result<ByzantineOutcome, String>, Schedule) {
        let n = graph.len();
        let mut bd = ByzantineDiscovery::new(graph, variant);
        let mut sched = RecordingScheduler::new(
            FaultScheduler::new(inner, None)
                .with_byzantine(byz.cloned(), n)
                .with_churn(churn.cloned(), n),
        );
        let withheld: BTreeSet<NodeId> = churn
            .map(|c| c.joiners(n).into_iter().collect())
            .unwrap_or_default();
        let result = bd.run_all(&mut sched, &withheld);
        let mut schedule = sched.into_schedule();
        schedule.set_meta("nodes", n.to_string());
        schedule.set_meta("variant", variant.to_string());
        if let Some(plan) = byz {
            schedule.set_meta("byzantine", byzantine_meta(plan));
        }
        if let Some(plan) = churn {
            schedule.set_meta("churn", churn_meta(plan));
        }
        let result = result.map(|steps| bd.outcome(steps, byz, churn));
        (result, schedule)
    }

    /// Re-executes a schedule recorded by
    /// [`run_byzantine`](Discovery::run_byzantine) against a freshly built
    /// Byzantine-tolerant network. The recorded choices carry every
    /// injected event, so no plans and no RNG are involved: replay is
    /// strict and byte-exact. The `churn` metadata reconstructs which
    /// initial wakes to withhold.
    ///
    /// # Errors
    ///
    /// Returns the livelock description if the step budget is exhausted.
    pub fn replay_byzantine(
        graph: &KnowledgeGraph,
        variant: Variant,
        schedule: &Schedule,
    ) -> Result<ByzantineOutcome, String> {
        let n = graph.len();
        let byz = schedule.meta("byzantine").and_then(parse_byzantine_meta);
        let churn = schedule.meta("churn").and_then(parse_churn_meta);
        let withheld: BTreeSet<NodeId> = churn
            .as_ref()
            .map(|c| c.joiners(n).into_iter().collect())
            .unwrap_or_default();
        let mut bd = ByzantineDiscovery::new(graph, variant);
        let mut sched = ReplayScheduler::strict(schedule);
        let steps = bd.run_all(&mut sched, &withheld)?;
        Ok(bd.outcome(steps, byz.as_ref(), churn.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ard_graph::gen;
    use ard_netsim::RandomScheduler;

    #[test]
    fn vacuous_byzantine_run_matches_honest_recording_byte_for_byte() {
        // With no plans attached, the Byzantine harness must be invisible:
        // the recorded schedule equals an honest recording of the same
        // inner scheduler, stays in format v1, and every guarantee holds.
        let graph = gen::random_weakly_connected(10, 16, 3);
        let (result, schedule) = Discovery::run_byzantine(
            &graph,
            Variant::Oblivious,
            None,
            None,
            RandomScheduler::seeded(42),
        );
        let outcome = result.unwrap();
        assert!(outcome.survives_all(), "honest run must satisfy everything");
        assert_eq!(outcome.byzantine.forged, 0);

        let mut honest = Discovery::new(&graph, Variant::Oblivious);
        let (honest_result, honest_schedule) = honest.run_recorded(RandomScheduler::seeded(42));
        honest_result.unwrap();
        assert_eq!(schedule.to_text(), honest_schedule.to_text());
        assert!(schedule.to_text().starts_with("ard-schedule v1"));
    }

    #[test]
    fn byzantine_run_records_and_replays_byte_exactly() {
        let graph = gen::random_weakly_connected(12, 20, 5);
        let plan = ByzantinePlan::new(7, 2);
        let (result, schedule) = Discovery::run_byzantine(
            &graph,
            Variant::Oblivious,
            Some(&plan),
            None,
            RandomScheduler::seeded(9),
        );
        let recorded = result.unwrap();
        assert!(recorded.byzantine.forged > 0, "plan injected no forgeries");
        assert_eq!(recorded.byzantine_nodes.len(), 2);
        assert!(schedule.to_text().starts_with("ard-schedule v2"));
        assert_eq!(
            schedule.meta("byzantine"),
            Some("f=2,seed=7,classes=equivocate+fabricate+silence+stale-restart")
        );

        let replayed = Discovery::replay_byzantine(&graph, Variant::Oblivious, &schedule).unwrap();
        assert_eq!(replayed.steps, recorded.steps);
        assert_eq!(replayed.leaders, recorded.leaders);
        assert_eq!(replayed.byzantine_nodes, recorded.byzantine_nodes);
        assert_eq!(
            format!("{}", replayed.metrics),
            format!("{}", recorded.metrics)
        );
        assert_eq!(replayed.single_leader, recorded.single_leader);
        assert_eq!(replayed.leader_knows_all, recorded.leader_knows_all);
        assert_eq!(replayed.budgets, recorded.budgets);

        // The round-trip through text is also exact.
        let reparsed = Schedule::parse(&schedule.to_text()).unwrap();
        assert_eq!(reparsed.choices(), schedule.choices());
    }

    #[test]
    fn churn_run_joins_and_leaves_and_replays() {
        let graph = gen::random_weakly_connected(16, 32, 2);
        let churn = ChurnPlan::new(11, 0.2);
        let (result, schedule) = Discovery::run_byzantine(
            &graph,
            Variant::AdHoc,
            None,
            Some(&churn),
            RandomScheduler::seeded(4),
        );
        let recorded = result.unwrap();
        assert!(recorded.byzantine.joins > 0, "no joins fired");
        assert!(recorded.byzantine.leaves > 0, "no leaves fired");
        assert_eq!(recorded.joined.len(), 4); // ceil(0.2 * 16)
        assert_eq!(recorded.left.len(), 4);
        assert_eq!(schedule.meta("churn"), Some("rate=0.2,seed=11"));

        let replayed = Discovery::replay_byzantine(&graph, Variant::AdHoc, &schedule).unwrap();
        assert_eq!(replayed.steps, recorded.steps);
        assert_eq!(replayed.leaders, recorded.leaders);
        assert_eq!(replayed.left, recorded.left);
        assert_eq!(
            format!("{}", replayed.metrics),
            format!("{}", recorded.metrics)
        );
    }

    #[test]
    fn stale_restart_can_break_single_leader() {
        // The amnesia class resurrects conquered nodes as phase-1 leaders;
        // across enough seeds at least one run must end with an extra
        // honest leader — the violation the matrix pins as a witness.
        let graph = gen::ring(8);
        let broke = (0..40u64).any(|seed| {
            let plan = ByzantinePlan::new(seed, 1).only("stale-restart");
            let (result, _) = Discovery::run_byzantine(
                &graph,
                Variant::Oblivious,
                Some(&plan),
                None,
                RandomScheduler::seeded(seed ^ 0xCAFE),
            );
            result.map(|o| o.single_leader.is_err()).unwrap_or(true)
        });
        assert!(broke, "no seed broke single-leader via stale restarts");
    }

    #[test]
    fn meta_parsers_round_trip() {
        let plan = ByzantinePlan::new(13, 3).only("silence");
        let parsed = parse_byzantine_meta(&byzantine_meta(&plan)).unwrap();
        assert_eq!(parsed.seed, 13);
        assert_eq!(parsed.f, 3);
        let churn = ChurnPlan::new(5, 0.25);
        let parsed = parse_churn_meta(&churn_meta(&churn)).unwrap();
        assert_eq!(parsed.seed, 5);
        assert!((parsed.rate - 0.25).abs() < 1e-9);
        assert!(parse_byzantine_meta("garbage").is_none());
    }
}
