//! The per-node state machine of the generic resource-discovery algorithm
//! (paper §4) and its Bounded / Ad-hoc variants (§4.5).
//!
//! The implementation follows the paper's pseudocode (Figures 2–6) closely;
//! where the pseudocode is terse, the interpretation decisions are the five
//! documented in `DESIGN.md` §4 and are marked `// [D1]`..`// [D5]` below:
//!
//! * **\[D1] selective receive** — the pseudocode blocks on specific message
//!   types ("wait for a query reply"); we defer messages the current state
//!   cannot consume and re-examine them after every state change. As a
//!   consequence a leader is only conquered while in `Wait`/`Passive`,
//!   which Lemma 5.2's deadlock analysis assumes.
//! * **\[D2] wait-on-empty resumes exploring** — §4.1 text: an idle waiting
//!   leader returns to `Explore` when its `more`/`unexplored` sets are
//!   replenished.
//! * **\[D3] leader targets record unknown origins** — the inactive-node
//!   rule "if `id == u.id` and `v.id ∉ local` then `local ∪= {v}`" has a
//!   leader-side analogue needed for liveness (Lemma 5.4's bidirectional-
//!   edge argument): a leader that aborts a search from an unknown origin
//!   adds the origin to `unexplored`.
//! * **\[D4] cluster-disjoint `unexplored`** — when merging an `info` we
//!   subtract the *combined* cluster from `unexplored`, so a leader never
//!   searches its own member (which would abort the component's only
//!   leader).
//! * **\[D5] conquer monotonicity** — §4.4 text: inactive nodes track their
//!   leader's `(phase, id)`; conquer messages always arrive with a strictly
//!   higher phase (asserted) and are always acknowledged.

use std::collections::{BTreeSet, VecDeque};

use ard_netsim::{Context, Envelope, IdSeq, MessageArena, NodeId, Protocol, StateDigest};

use crate::msg::{InfoPayload, Message, Verdict};
use crate::status::{Status, Transition};
use crate::{Config, Variant};

/// Sentinel `want` value requesting a member's entire `local` set (used by
/// the unbalanced-queries ablation).
const WANT_ALL: u32 = u32::MAX;

/// View of a protocol node as the [`ArdNode`] it contains, possibly behind
/// envelope layers such as [`Reliable`](crate::Reliable).
///
/// The requirement and invariant checkers in [`crate::invariants`] are
/// generic over this trait, so the same checks run against plain discovery
/// networks and against networks wrapped in the reliable-delivery layer.
pub trait AsArdNode {
    /// The underlying discovery node.
    fn ard(&self) -> &ArdNode;
}

impl AsArdNode for ArdNode {
    fn ard(&self) -> &ArdNode {
        self
    }
}

/// What [`ArdNode::dispatch`] did with a message.
enum Disposition {
    /// The message was consumed by the current state.
    Consumed,
    /// The current state cannot consume it yet; it is handed back for the
    /// deferral queue (\[D1]).
    Deferred(Message),
}

/// One node running the resource-discovery algorithm.
///
/// The fields mirror the paper's Figure 2: `local`, `more`, `done`,
/// `unaware`, `unexplored`, the `previous` FIFO, the `next` pointer and the
/// `phase` counter. Extra fields are simulation bookkeeping (deferral queue,
/// transition log, probe results).
///
/// Nodes are driven through [`ard_netsim::Runner`] — see
/// [`Discovery`](crate::Discovery) for the high-level API.
#[derive(Debug)]
pub struct ArdNode {
    id: NodeId,
    variant: Variant,
    config: Config,
    /// Size of this node's weakly connected component; `Some` only in the
    /// Bounded variant.
    component_size: Option<usize>,

    status: Status,
    phase: u32,
    next: NodeId,
    local: BTreeSet<NodeId>,
    more: BTreeSet<NodeId>,
    done: BTreeSet<NodeId>,
    unaware: BTreeSet<NodeId>,
    unexplored: BTreeSet<NodeId>,
    /// Relay queue of in-transit searches/probes: `(message, sender)`.
    previous: VecDeque<(Message, NodeId)>,

    /// \[D1] messages the current state cannot consume yet.
    deferred: VecDeque<(NodeId, Message)>,
    /// `Some(w)` while exploring and awaiting `w`'s query reply.
    awaiting_query_from: Option<NodeId>,
    /// Whether a `Wait` state is for our own search's release (vs idle).
    awaiting_release: bool,
    /// \[D5] the `(phase, id)` of the leader that last conquered us.
    inactive_phase: u32,
    /// Bounded variant: set once the final conquer wave reaches this node
    /// (or, on the leader, once it sends that wave).
    terminated: bool,

    transitions: Vec<Transition>,
    probe_results: Vec<Vec<NodeId>>,
    probes_outstanding: usize,

    /// Recycled word buffers for outgoing [`IdSeq`] payloads (query
    /// replies, info handovers); consumed payloads are returned here.
    arena: MessageArena<u64>,
}

impl ArdNode {
    /// Creates a sleeping node that initially knows the ids in `local`
    /// (its out-edges in `E₀`; must not include `id` itself).
    pub fn new(
        id: NodeId,
        local: impl IntoIterator<Item = NodeId>,
        variant: Variant,
        config: Config,
    ) -> Self {
        let local: BTreeSet<NodeId> = local.into_iter().collect();
        assert!(
            !local.contains(&id),
            "a node's local set must not contain itself"
        );
        ArdNode {
            id,
            variant,
            config,
            component_size: None,
            status: Status::Asleep,
            phase: 1,
            next: id,
            local,
            more: BTreeSet::from([id]),
            done: BTreeSet::new(),
            unaware: BTreeSet::new(),
            unexplored: BTreeSet::new(),
            previous: VecDeque::new(),
            deferred: VecDeque::new(),
            awaiting_query_from: None,
            awaiting_release: false,
            inactive_phase: 0,
            terminated: false,
            transitions: Vec::new(),
            probe_results: Vec::new(),
            probes_outstanding: 0,
            arena: MessageArena::new(),
        }
    }

    /// Bounded variant: informs the node of its component's size (must be
    /// called before it wakes).
    pub fn set_component_size(&mut self, n: usize) {
        assert_eq!(
            self.variant,
            Variant::Bounded,
            "only the Bounded variant knows sizes"
        );
        self.component_size = Some(n);
    }

    // ------------------------------------------------------------------
    // Read-only accessors (used by the driver, invariants and tests).
    // ------------------------------------------------------------------

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current state.
    pub fn status(&self) -> Status {
        self.status
    }

    /// Whether the node is currently a leader (explore/wait/conqueror).
    pub fn is_leader(&self) -> bool {
        self.status.is_leader()
    }

    /// Current phase (starts at 1 and only grows).
    pub fn phase(&self) -> u32 {
        self.phase
    }

    /// Current `next` pointer (self while still a leader).
    pub fn next_pointer(&self) -> NodeId {
        self.next
    }

    /// The `more` set: cluster members that may still have unreported ids.
    pub fn more(&self) -> &BTreeSet<NodeId> {
        &self.more
    }

    /// The `done` set: cluster members that reported everything.
    pub fn done(&self) -> &BTreeSet<NodeId> {
        &self.done
    }

    /// The `unaware` set (generic variant only): new members not yet told
    /// of their leader.
    pub fn unaware(&self) -> &BTreeSet<NodeId> {
        &self.unaware
    }

    /// The `unexplored` set: known ids outside the cluster.
    pub fn unexplored(&self) -> &BTreeSet<NodeId> {
        &self.unexplored
    }

    /// The undrained part of the initial knowledge.
    pub fn local(&self) -> &BTreeSet<NodeId> {
        &self.local
    }

    /// Bounded variant: whether this node has terminated.
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// The log of state transitions taken so far.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Snapshots received in answer to this node's probes (Ad-hoc variant),
    /// oldest first.
    pub fn probe_results(&self) -> &[Vec<NodeId>] {
        &self.probe_results
    }

    /// Number of probes issued but not yet answered.
    pub fn probes_outstanding(&self) -> usize {
        self.probes_outstanding
    }

    /// Messages deferred by the current state (\[D1]); must be empty at
    /// quiescence.
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// Relayed searches/probes awaiting their release; must be empty at
    /// quiescence.
    pub fn previous_len(&self) -> usize {
        self.previous.len()
    }

    fn in_cluster(&self, v: NodeId) -> bool {
        self.more.contains(&v) || self.done.contains(&v) || self.unaware.contains(&v)
    }

    fn cluster_size(&self) -> usize {
        self.more.len() + self.done.len() + self.unaware.len()
    }

    fn set_status(&mut self, to: Status) {
        if self.status != to {
            self.transitions.push(Transition::new(self.status, to));
            self.status = to;
        }
    }

    fn lex_pair(&self) -> (u32, NodeId) {
        (self.phase, self.id)
    }

    /// Terminal arm for a message the current state can never consume.
    ///
    /// In honest runs such a message proves a local bug, so we panic. Under
    /// Byzantine faults "impossible" messages are forged, not buggy:
    /// [`Config::byzantine_tolerant`] turns every one of these sites into a
    /// silent drop, which is the strongest defensible reaction for a node
    /// that cannot authenticate senders.
    fn unexpected(&self, msg: Message) -> Disposition {
        assert!(
            self.config.byzantine_tolerant,
            "{}: unexpected {:?} in {}",
            self.id,
            msg,
            self.status
        );
        Disposition::Consumed
    }

    // ------------------------------------------------------------------
    // External commands (issued by the driver, not triggered by messages).
    // ------------------------------------------------------------------

    /// Ad-hoc variant: request the current snapshot of the component's ids
    /// from the leader (§4.5.2). On a leader this answers immediately; on an
    /// inactive or passive node it routes a probe along `next` pointers.
    ///
    /// # Panics
    ///
    /// Panics if called on a node in a transient state (`Conquered`,
    /// `Conqueror`, `Asleep`) — probe issuers must be settled nodes.
    pub fn start_probe(&mut self, ctx: &mut Context<'_, Message>) {
        match self.status {
            Status::Explore | Status::Wait | Status::Passive => {
                // We are our own (possibly provisional) leader.
                let snap = self.snapshot();
                self.probe_results.push(snap.to_vec());
                self.arena.recycle(snap.into_words());
            }
            Status::Inactive => {
                self.probes_outstanding += 1;
                ctx.send(self.next, Message::Probe { origin: self.id });
            }
            other => panic!("cannot probe from transient state {other}"),
        }
    }

    /// Dynamic link addition (§6): this node has just learned `v`'s id.
    ///
    /// If the node has not yet reported all its edges, the new edge simply
    /// joins `local` (case 1). If it already reported everything (case 2),
    /// it notifies its leader with a `new`-flagged search so the leader
    /// moves it from `done` back to `more` and re-queries it later.
    pub fn add_dynamic_edge(&mut self, v: NodeId, ctx: &mut Context<'_, Message>) {
        self.record_new_id(v, ctx);
    }

    /// Records an id this node just learned, whatever its state — the §6
    /// dynamic-edge logic, which is also what liveness requires when a node
    /// answers `merge fail` (it learned the id of a leader that is about to
    /// go passive and would otherwise become undiscoverable; this is the
    /// "bidirectional edge" of Lemma 5.4's argument).
    ///
    /// Notification searches carry `origin_phase = 0`, which loses every
    /// `(phase, id)` comparison (real phases start at 1): they nudge the
    /// leader to re-query, and can never conquer it.
    fn record_new_id(&mut self, v: NodeId, ctx: &mut Context<'_, Message>) {
        if v == self.id {
            return;
        }
        match self.status {
            Status::Inactive => {
                if self.local.contains(&v) {
                    return;
                }
                let already_reported_all = self.local.is_empty();
                self.local.insert(v);
                if already_reported_all {
                    // Case 2: the leader believes we are `done`; send a
                    // new-flagged search targeting ourself so it moves us
                    // back to `more` and re-queries us.
                    ctx.send(
                        self.next,
                        Message::Search {
                            origin: self.id,
                            origin_phase: 0,
                            target: self.id,
                            new_edge: true,
                        },
                    );
                }
                // Case 1 (local non-empty): counts as a not-yet-reported
                // edge; nothing else to do.
            }
            Status::Asleep => {
                self.local.insert(v);
            }
            Status::Explore | Status::Wait | Status::Conqueror => {
                // A leader learns a new id: straight into `unexplored`.
                if !self.in_cluster(v) {
                    self.unexplored.insert(v);
                    if self.status == Status::Wait && !self.awaiting_release {
                        self.explore_step(ctx); // [D2]
                    }
                }
            }
            Status::Passive | Status::Conquered => {
                // Will be handed over in our eventual `info`.
                if !self.in_cluster(v) && !self.local.contains(&v) {
                    self.unexplored.insert(v);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // The explore loop (paper Figure 3).
    // ------------------------------------------------------------------

    /// Runs the EXPLORE procedure until it blocks: either a search is sent
    /// (→ `Wait`, awaiting release), a query is sent (stay in `Explore`,
    /// awaiting reply), or both sets are empty (→ idle `Wait`).
    fn explore_step(&mut self, ctx: &mut Context<'_, Message>) {
        loop {
            self.set_status(Status::Explore);
            // 1. Search an unexplored node, if any.
            if let Some(u) = self.pop_unexplored() {
                ctx.send(
                    u,
                    Message::Search {
                        origin: self.id,
                        origin_phase: self.phase,
                        target: u,
                        new_edge: false,
                    },
                );
                self.awaiting_release = true;
                self.set_status(Status::Wait);
                return;
            }
            // 2. Otherwise query a member that may know more ids.
            if let Some(&w) = self.more.iter().next() {
                let want = if self.config.balanced_queries {
                    (self.more.len() + self.done.len() + 1) as u32
                } else {
                    WANT_ALL
                };
                if w == self.id {
                    // The leader itself may appear in `more`; the paper has
                    // it "simulate the message sending internally".
                    let (ids, exhausted) = self.take_local(want);
                    self.absorb_query_reply(w, ids, exhausted);
                    self.maybe_terminate_bounded(ctx);
                    continue;
                }
                ctx.send(w, Message::Query { want });
                self.awaiting_query_from = Some(w);
                return;
            }
            // 3. Both empty: wait for `more` to be replenished. [D2]
            self.awaiting_release = false;
            self.set_status(Status::Wait);
            return;
        }
    }

    /// Picks (and removes) the first genuinely unexplored node.
    fn pop_unexplored(&mut self) -> Option<NodeId> {
        while let Some(&u) = self.unexplored.iter().next() {
            self.unexplored.remove(&u);
            // [D4] maintained at merge time; this is a defensive recheck.
            if u != self.id && !self.in_cluster(u) {
                return Some(u);
            }
            debug_assert!(false, "cluster member {u} leaked into unexplored");
        }
        None
    }

    /// Removes up to `want` ids from `local` (the queried member's side).
    /// `local` iterates ascending, so the payload run-codes maximally.
    fn take_local(&mut self, want: u32) -> (IdSeq, bool) {
        let take = if want == WANT_ALL {
            self.local.len()
        } else {
            (want as usize).min(self.local.len())
        };
        let mut ids = IdSeq::with_buffer(self.arena.alloc());
        ids.extend(self.local.iter().take(take).copied());
        for v in ids.iter() {
            self.local.remove(&v);
        }
        (ids, self.local.is_empty())
    }

    /// Leader-side bookkeeping for a query reply from `w`. The consumed id
    /// buffer is recycled into this node's arena.
    fn absorb_query_reply(&mut self, w: NodeId, ids: IdSeq, exhausted: bool) {
        if exhausted {
            self.more.remove(&w);
            self.done.insert(w);
        }
        ids.for_each(&mut |v| {
            if v != self.id && !self.in_cluster(v) {
                self.unexplored.insert(v);
            }
        });
        self.arena.recycle(ids.into_words());
    }

    /// Bounded variant: check `|done| = n` and, if reached, broadcast the
    /// final conquer wave and terminate (paper §4.5.1). The caller then
    /// falls through the explore loop into an idle `Wait`, where the
    /// `more/done` acknowledgements of the final wave are absorbed.
    fn maybe_terminate_bounded(&mut self, ctx: &mut Context<'_, Message>) {
        if self.variant != Variant::Bounded || self.terminated {
            return;
        }
        let Some(n) = self.component_size else { return };
        if self.done.len() == n {
            debug_assert!(self.more.is_empty());
            for &u in &self.done {
                if u != self.id {
                    ctx.send(u, Message::Conquer { phase: self.phase });
                }
            }
            self.terminated = true;
        }
    }

    // ------------------------------------------------------------------
    // Message dispatch.
    // ------------------------------------------------------------------

    /// Routes a message to the current state's handler; returns it for
    /// deferral when the state cannot consume it ([D1]).
    fn dispatch(
        &mut self,
        from: NodeId,
        msg: Message,
        ctx: &mut Context<'_, Message>,
    ) -> Disposition {
        match self.status {
            Status::Asleep => unreachable!("runner wakes nodes before delivering to them"),
            Status::Explore => self.on_explore(from, msg, ctx),
            Status::Wait | Status::Passive => self.on_wait_or_passive(from, msg, ctx),
            Status::Conquered => self.on_conquered(from, msg, ctx),
            Status::Conqueror => self.on_conqueror(from, msg, ctx),
            Status::Inactive => self.on_inactive(from, msg, ctx),
        }
    }

    /// Re-attempts deferred messages after a state change, preserving their
    /// FIFO order, until a full pass makes no progress.
    /// Whether the current state can consume deferred messages at all. The
    /// busy states defer every `search`/`probe` [D1], so pumping them would
    /// re-defer the entire queue without progress — and the Bounded/Ad-hoc
    /// endgame leader sits in `Explore` with an O(n) queue while absorbing
    /// O(n) query replies, so those no-op scans are a hidden quadratic.
    /// Skipping them is exact: re-deferral has no side effects and the
    /// scan preserves queue order, so the schedule is unchanged.
    fn can_consume_deferred(&self) -> bool {
        matches!(
            self.status,
            Status::Wait | Status::Passive | Status::Inactive
        )
    }

    fn pump_deferred(&mut self, ctx: &mut Context<'_, Message>) {
        loop {
            let mut progressed = false;
            for _ in 0..self.deferred.len() {
                if !self.can_consume_deferred() {
                    return;
                }
                let (from, msg) = self.deferred.pop_front().expect("len checked");
                match self.dispatch(from, msg, ctx) {
                    Disposition::Consumed => progressed = true,
                    Disposition::Deferred(m) => self.deferred.push_back((from, m)),
                }
            }
            if !progressed || self.deferred.is_empty() {
                return;
            }
        }
    }

    // --- Explore: only the awaited query reply is consumable. -----------

    fn on_explore(
        &mut self,
        from: NodeId,
        msg: Message,
        ctx: &mut Context<'_, Message>,
    ) -> Disposition {
        match msg {
            Message::QueryReply { ids, exhausted } => {
                if self.awaiting_query_from != Some(from) {
                    assert!(
                        self.config.byzantine_tolerant,
                        "query reply from unexpected sender"
                    );
                    return Disposition::Consumed;
                }
                self.awaiting_query_from = None;
                self.absorb_query_reply(from, ids, exhausted);
                self.maybe_terminate_bounded(ctx);
                // After termination the sets are exhausted, so this falls
                // straight through to an idle Wait.
                self.explore_step(ctx);
                Disposition::Consumed
            }
            Message::MoreDone { exhausted } if self.terminated => {
                // Bounded: a late `new`-flagged refill can send a terminated
                // leader back through Explore while its final conquer wave's
                // acknowledgements are still landing.
                self.absorb_final_ack(from, exhausted);
                Disposition::Consumed
            }
            m @ (Message::Search { .. } | Message::Probe { .. }) => Disposition::Deferred(m), // [D1]
            other => self.unexpected(other),
        }
    }

    /// Bounded variant: absorbs a `more/done` acknowledgement of the final
    /// conquer wave on the already-terminated leader.
    fn absorb_final_ack(&mut self, from: NodeId, exhausted: bool) {
        debug_assert_eq!(self.variant, Variant::Bounded);
        if exhausted {
            if !self.more.contains(&from) {
                self.done.insert(from);
            }
        } else {
            self.done.remove(&from);
            self.more.insert(from);
        }
    }

    // --- Wait / Passive (paper Figure 4). --------------------------------

    fn on_wait_or_passive(
        &mut self,
        from: NodeId,
        msg: Message,
        ctx: &mut Context<'_, Message>,
    ) -> Disposition {
        let passive = self.status == Status::Passive;
        match msg {
            Message::Search {
                origin,
                origin_phase,
                target,
                new_edge,
            } => {
                if new_edge && self.done.contains(&target) {
                    self.done.remove(&target);
                    self.more.insert(target);
                }
                if (origin_phase, origin) > self.lex_pair() {
                    // Surrender: ask to merge into the stronger leader.
                    ctx.send(
                        from,
                        Message::Release {
                            leader: self.id,
                            leader_phase: self.phase,
                            verdict: Verdict::Merge,
                            dest: origin,
                        },
                    );
                    self.set_status(Status::Conquered);
                } else {
                    // [D3] remember unknown origins so the component's
                    // knowledge graph stays discoverable.
                    if origin != self.id
                        && !self.in_cluster(origin)
                        && !self.local.contains(&origin)
                    {
                        self.unexplored.insert(origin);
                    }
                    ctx.send(
                        from,
                        Message::Release {
                            leader: self.id,
                            leader_phase: self.phase,
                            verdict: Verdict::Abort,
                            dest: origin,
                        },
                    );
                    // [D2] an idle waiter may now have work again.
                    if !passive
                        && !self.awaiting_release
                        && (!self.more.is_empty() || !self.unexplored.is_empty())
                    {
                        self.explore_step(ctx);
                    }
                }
                Disposition::Consumed
            }
            Message::Release {
                leader,
                verdict,
                dest,
                ..
            } if dest == self.id => {
                if passive {
                    // A stale answer to the search we sent before going
                    // passive/conquered; refuse any merge, but remember the
                    // refused leader (Lemma 5.4 liveness — it goes passive
                    // and must stay discoverable).
                    if verdict == Verdict::Merge {
                        ctx.send(leader, Message::MergeFail);
                        self.record_new_id(leader, ctx);
                    }
                } else {
                    if !self.awaiting_release {
                        assert!(
                            self.config.byzantine_tolerant,
                            "release for a search we never sent"
                        );
                        return Disposition::Consumed;
                    }
                    self.awaiting_release = false;
                    match verdict {
                        Verdict::Abort => self.set_status(Status::Passive),
                        Verdict::Merge => {
                            self.set_status(Status::Conqueror);
                            ctx.send(leader, Message::MergeAccept);
                        }
                    }
                }
                Disposition::Consumed
            }
            Message::Probe { origin } => {
                // Leaders (and provisional passive ex-leaders) answer with
                // their current snapshot; path compression happens en route.
                let ids = self.snapshot();
                ctx.send(
                    from,
                    Message::ProbeReply {
                        leader: self.id,
                        leader_phase: self.phase,
                        dest: origin,
                        ids,
                    },
                );
                Disposition::Consumed
            }
            Message::MoreDone { exhausted } if self.terminated => {
                // Bounded variant: acknowledgements of the final conquer
                // wave reaching the already-terminated leader. A `more`
                // answer (late refill) sends the leader back to Explore to
                // drain it ([D2]).
                self.absorb_final_ack(from, exhausted);
                if !passive && !self.awaiting_release && !self.more.is_empty() {
                    self.explore_step(ctx);
                }
                Disposition::Consumed
            }
            other => self.unexpected(other),
        }
    }

    /// The ids this (possibly provisional) leader knows of its component.
    /// Three ascending segments, so the sequence run-codes well.
    fn snapshot(&mut self) -> IdSeq {
        let mut ids = IdSeq::with_buffer(self.arena.alloc());
        ids.extend(
            self.more
                .iter()
                .chain(self.done.iter())
                .chain(self.unaware.iter())
                .copied(),
        );
        ids
    }

    // --- Conquered (paper Figure 6, top). --------------------------------

    fn on_conquered(
        &mut self,
        from: NodeId,
        msg: Message,
        ctx: &mut Context<'_, Message>,
    ) -> Disposition {
        match msg {
            Message::Release {
                leader,
                verdict,
                dest,
                ..
            } if dest == self.id => {
                // Answer to the search we had in flight when we surrendered;
                // remember a refused leader (Lemma 5.4 liveness).
                if verdict == Verdict::Merge {
                    ctx.send(leader, Message::MergeFail);
                    self.record_new_id(leader, ctx);
                }
                Disposition::Consumed
            }
            Message::MergeFail => {
                self.set_status(Status::Passive);
                Disposition::Consumed
            }
            Message::MergeAccept => {
                self.next = from;
                let mut more = IdSeq::with_buffer(self.arena.alloc());
                more.extend(self.more.iter().copied());
                let mut done = IdSeq::with_buffer(self.arena.alloc());
                done.extend(self.done.iter().copied());
                let mut unaware = IdSeq::with_buffer(self.arena.alloc());
                unaware.extend(self.unaware.iter().copied());
                let mut unexplored = IdSeq::with_buffer(self.arena.alloc());
                unexplored.extend(self.unexplored.iter().copied());
                ctx.send(
                    from,
                    Message::Info(Box::new(InfoPayload {
                        phase: self.phase,
                        more,
                        done,
                        unaware,
                        unexplored,
                    })),
                );
                // Ownership of the sets transfers with the info.
                self.more.clear();
                self.done.clear();
                self.unaware.clear();
                self.unexplored.clear();
                self.inactive_phase = self.phase;
                self.set_status(Status::Inactive);
                Disposition::Consumed
            }
            m @ (Message::Search { .. } | Message::Probe { .. }) => Disposition::Deferred(m), // [D1]
            other => self.unexpected(other),
        }
    }

    // --- Conqueror (paper Figure 6, bottom). ------------------------------

    fn on_conqueror(
        &mut self,
        from: NodeId,
        msg: Message,
        ctx: &mut Context<'_, Message>,
    ) -> Disposition {
        match msg {
            Message::Info(info) => {
                let InfoPayload {
                    phase,
                    more,
                    done,
                    unaware,
                    unexplored,
                } = *info;
                self.merge_info(phase, more, done, unaware, unexplored, ctx);
                Disposition::Consumed
            }
            Message::MoreDone { exhausted } => {
                if !self.unaware.remove(&from) {
                    assert!(
                        self.config.byzantine_tolerant,
                        "more/done from a node not in unaware"
                    );
                    return Disposition::Consumed;
                }
                if exhausted {
                    self.done.insert(from);
                } else {
                    self.more.insert(from);
                }
                if self.unaware.is_empty() {
                    self.explore_step(ctx);
                }
                Disposition::Consumed
            }
            m @ (Message::Search { .. } | Message::Probe { .. }) => Disposition::Deferred(m), // [D1]
            other => self.unexpected(other),
        }
    }

    /// Absorbs a surrendered leader's state (paper §4.4, or the simplified
    /// §4.5 merge for the variants) and advances the phase.
    fn merge_info(
        &mut self,
        l_phase: u32,
        l_more: IdSeq,
        l_done: IdSeq,
        l_unaware: IdSeq,
        l_unexplored: IdSeq,
        ctx: &mut Context<'_, Message>,
    ) {
        debug_assert!(
            l_unaware.is_empty(),
            "a conqueror cannot be conquered mid-conquest, so shipped unaware is empty"
        );
        if self.variant.broadcasts_each_merge() {
            // Generic: every acquired member goes through `unaware` and gets
            // a conquer message.
            self.unaware.extend(l_more.iter());
            self.unaware.extend(l_done.iter());
            self.unaware.extend(l_unaware.iter());
        } else {
            // Variants (§4.5): set unions, no broadcast.
            //
            // `more` and `done` are disjoint before the merge (every other
            // mutation moves a member between them atomically), so only the
            // shipped ids can collide with the other set. A member may
            // arrive in `done` while we hold it in `more` (or vice versa)
            // across epochs; `more` ("may have more ids") wins. Resolving
            // against the payload instead of scanning `self.more` keeps a
            // merge O(shipped log n) — the conqueror's own sets are O(n) in
            // the endgame, and an O(n) scan per merge is quadratic overall.
            debug_assert!(self.more.is_disjoint(&self.done));
            self.more.extend(l_more.iter());
            self.done.extend(l_done.iter());
            for v in l_more.iter().chain(l_done.iter()) {
                if self.more.contains(&v) {
                    self.done.remove(&v);
                }
            }
        }
        l_unexplored.for_each(&mut |v| {
            if v != self.id && !self.in_cluster(v) {
                self.unexplored.insert(v);
            }
        });
        // [D4] newly acquired members must leave `unexplored`.
        for v in l_more.iter().chain(l_done.iter()).chain(l_unaware.iter()) {
            self.unexplored.remove(&v);
        }
        // The shipped buffers are consumed; keep them for future payloads.
        self.arena.recycle(l_more.into_words());
        self.arena.recycle(l_done.into_words());
        self.arena.recycle(l_unaware.into_words());
        self.arena.recycle(l_unexplored.into_words());
        // Phase advance (doubling rule, Lemma 5.10's invariant).
        if self.phase == l_phase || self.cluster_size() as u64 >= 1u64 << (self.phase + 1) {
            self.phase += 1;
        }
        debug_assert!((self.cluster_size() as u64) < 1u64 << (self.phase + 1));

        if self.variant.broadcasts_each_merge() {
            for &u in &self.unaware {
                debug_assert_ne!(u, self.id);
                ctx.send(u, Message::Conquer { phase: self.phase });
            }
            if self.unaware.is_empty() {
                self.explore_step(ctx);
            }
            // else: remain Conqueror until all more/done acks arrive.
        } else {
            self.maybe_terminate_bounded(ctx);
            self.explore_step(ctx);
        }
    }

    // --- Inactive (paper Figure 5). ---------------------------------------

    fn on_inactive(
        &mut self,
        from: NodeId,
        msg: Message,
        ctx: &mut Context<'_, Message>,
    ) -> Disposition {
        match msg {
            Message::Query { want } => {
                let (ids, exhausted) = self.take_local(want);
                ctx.send(from, Message::QueryReply { ids, exhausted });
                Disposition::Consumed
            }
            Message::Search {
                origin,
                origin_phase,
                target,
                mut new_edge,
            } => {
                if target == self.id && origin != self.id && !self.local.contains(&origin) {
                    // Reverse-edge bookkeeping (§4.2): the target learns the
                    // origin and flags it so the leader re-queries us.
                    self.local.insert(origin);
                    new_edge = true;
                }
                self.enqueue_routable(
                    Message::Search {
                        origin,
                        origin_phase,
                        target,
                        new_edge,
                    },
                    from,
                    ctx,
                );
                Disposition::Consumed
            }
            Message::Probe { origin } => {
                self.enqueue_routable(Message::Probe { origin }, from, ctx);
                Disposition::Consumed
            }
            Message::Release {
                leader,
                leader_phase,
                verdict,
                dest,
            } => {
                if dest == self.id {
                    // Stale answer to a search we sent while still a leader;
                    // remember a refused leader (Lemma 5.4 liveness).
                    if verdict == Verdict::Merge {
                        ctx.send(leader, Message::MergeFail);
                        self.record_new_id(leader, ctx);
                    }
                } else {
                    self.route_reply_back(
                        leader,
                        leader_phase,
                        Message::Release {
                            leader,
                            leader_phase,
                            verdict,
                            dest,
                        },
                        ctx,
                    );
                }
                Disposition::Consumed
            }
            Message::ProbeReply {
                leader,
                leader_phase,
                dest,
                ids,
            } => {
                if dest == self.id {
                    if self.probes_outstanding == 0 {
                        // Only forgery produces an unsolicited probe reply.
                        debug_assert!(self.config.byzantine_tolerant, "unsolicited probe reply");
                        return Disposition::Consumed;
                    }
                    self.probes_outstanding -= 1;
                    // The requester compresses its own pointer too ([D6]
                    // staleness guard applies as everywhere).
                    if self.config.path_compression && leader_phase >= self.inactive_phase {
                        self.next = leader;
                    }
                    self.probe_results.push(ids.to_vec());
                    self.arena.recycle(ids.into_words());
                } else {
                    self.route_reply_back(
                        leader,
                        leader_phase,
                        Message::ProbeReply {
                            leader,
                            leader_phase,
                            dest,
                            ids,
                        },
                        ctx,
                    );
                }
                Disposition::Consumed
            }
            Message::Conquer { phase } => {
                // [D5] conquers arrive with strictly increasing phases; only
                // a forged conquer can violate the monotonicity, and obeying
                // it would roll the leader pointer back to the forger.
                if phase <= self.inactive_phase {
                    debug_assert!(
                        self.config.byzantine_tolerant,
                        "{}: conquer phase {phase} not above {}",
                        self.id,
                        self.inactive_phase
                    );
                    return Disposition::Consumed;
                }
                self.next = from;
                self.inactive_phase = phase;
                if self.variant == Variant::Bounded {
                    self.terminated = true;
                }
                ctx.send(
                    from,
                    Message::MoreDone {
                        exhausted: self.local.is_empty(),
                    },
                );
                Disposition::Consumed
            }
            other => self.unexpected(other),
        }
    }

    /// Relay discipline for leaf-to-leader requests (§4.2): enqueue the
    /// request and forward it only if it is alone in the queue — at most one
    /// request per relay is in flight toward the leader.
    fn enqueue_routable(&mut self, msg: Message, from: NodeId, ctx: &mut Context<'_, Message>) {
        debug_assert!(msg.is_routable_request());
        self.previous.push_back((msg.clone(), from));
        if self.previous.len() == 1 {
            ctx.send(self.next, msg);
        }
    }

    /// Relay discipline for leader-to-leaf replies: pop the matching
    /// request, compress the path (point `next` at the answering leader),
    /// forward the reply toward the requester, and launch the next queued
    /// request along the *compressed* pointer.
    ///
    /// [D6] staleness guard: compression applies only when the reply's
    /// epoch is at least our conquer epoch — an in-flight release from an
    /// older epoch must not overwrite a newer conquer wave's pointer.
    fn route_reply_back(
        &mut self,
        leader: NodeId,
        leader_phase: u32,
        reply: Message,
        ctx: &mut Context<'_, Message>,
    ) {
        let Some((_request, return_to)) = self.previous.pop_front() else {
            // A reply with no request is either a bug or a forgery; under
            // Byzantine tolerance we drop it rather than misroute it.
            assert!(
                self.config.byzantine_tolerant,
                "reply arrived with no matching relayed request"
            );
            return;
        };
        if self.config.path_compression && leader_phase >= self.inactive_phase {
            self.next = leader;
        }
        ctx.send(return_to, reply);
        if let Some((next_request, _)) = self.previous.front() {
            ctx.send(self.next, next_request.clone());
        }
    }
}

impl Protocol for ArdNode {
    type Message = Message;

    fn on_wake(&mut self, ctx: &mut Context<'_, Message>) {
        assert_eq!(self.status, Status::Asleep, "woken twice");
        if self.variant == Variant::Bounded {
            assert!(
                self.component_size.is_some(),
                "Bounded node woken without its component size"
            );
        }
        self.set_status(Status::Explore);
        self.explore_step(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Message, ctx: &mut Context<'_, Message>) {
        match self.dispatch(from, msg, ctx) {
            Disposition::Consumed => self.pump_deferred(ctx),
            Disposition::Deferred(m) => self.deferred.push_back((from, m)),
        }
    }

    fn on_stale_restart(&mut self, ctx: &mut Context<'_, Message>) {
        // Amnesiac rejoin: the node comes back with its boot image.
        // Everything learned since waking — cluster sets, phase, the leader
        // pointer — is lost; only the undrained remainder of `local` (initial
        // knowledge it never reported) survives. It then wakes again as a
        // fresh phase-1 leader of the singleton cluster `{self}`, which is
        // exactly the stale state the single-leader guarantee must survive.
        self.set_status(Status::Asleep);
        self.phase = 1;
        self.next = self.id;
        self.more = BTreeSet::from([self.id]);
        self.done.clear();
        self.unaware.clear();
        self.unexplored.clear();
        self.previous.clear();
        self.deferred.clear();
        self.awaiting_query_from = None;
        self.awaiting_release = false;
        self.inactive_phase = 0;
        self.terminated = false;
        self.probes_outstanding = 0;
        self.on_wake(ctx);
    }

    fn digest_state(&self, d: &mut StateDigest) {
        d.mix(self.status as u64);
        d.mix(u64::from(self.phase));
        d.mix(self.next.index() as u64);
        for set in [
            &self.local,
            &self.more,
            &self.done,
            &self.unaware,
            &self.unexplored,
        ] {
            d.mix(set.len() as u64);
            for id in set {
                d.mix(id.index() as u64);
            }
        }
        d.mix(self.previous.len() as u64);
        for (msg, from) in &self.previous {
            msg.digest(d);
            d.mix(from.index() as u64);
        }
        d.mix(self.deferred.len() as u64);
        for (from, msg) in &self.deferred {
            d.mix(from.index() as u64);
            msg.digest(d);
        }
        match self.awaiting_query_from {
            Some(w) => d.mix(1 + w.index() as u64),
            None => d.mix(0),
        }
        d.mix(u64::from(self.awaiting_release));
        d.mix(u64::from(self.inactive_phase));
        d.mix(u64::from(self.terminated));
        d.mix(self.probes_outstanding as u64);
        d.mix(self.probe_results.len() as u64);
        for ids in &self.probe_results {
            d.mix(ids.len() as u64);
            for id in ids {
                d.mix(id.index() as u64);
            }
        }
        // `transitions` is deliberately excluded: it is a pure history log
        // (the Figure 1 conformance check reads it, the protocol and the
        // requirement checks never do), so two states differing only in how
        // they got here are genuinely equivalent futures.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: usize, local: &[usize]) -> ArdNode {
        ArdNode::new(
            NodeId::new(id),
            local.iter().map(|&i| NodeId::new(i)),
            Variant::Oblivious,
            Config::paper(),
        )
    }

    #[test]
    fn new_node_matches_figure_2_initial_values() {
        let n = node(3, &[1, 2]);
        assert_eq!(n.status(), Status::Asleep);
        assert_eq!(n.phase(), 1);
        assert_eq!(n.next_pointer(), NodeId::new(3));
        assert_eq!(n.more().len(), 1);
        assert!(n.more().contains(&NodeId::new(3)));
        assert!(n.done().is_empty());
        assert!(n.unaware().is_empty());
        assert!(n.unexplored().is_empty());
        assert_eq!(n.local().len(), 2);
    }

    #[test]
    #[should_panic(expected = "must not contain itself")]
    fn self_in_local_rejected() {
        node(0, &[0, 1]);
    }

    #[test]
    fn take_local_balances() {
        let mut n = node(0, &[1, 2, 3, 4, 5]);
        let (ids, exhausted) = n.take_local(2);
        assert_eq!(ids.len(), 2);
        assert!(!exhausted);
        let (ids, exhausted) = n.take_local(10);
        assert_eq!(ids.len(), 3);
        assert!(exhausted);
        let (ids, exhausted) = n.take_local(4);
        assert!(ids.is_empty());
        assert!(exhausted);
    }

    #[test]
    fn take_local_want_all() {
        let mut n = node(0, &[1, 2, 3]);
        let (ids, exhausted) = n.take_local(WANT_ALL);
        assert_eq!(ids.len(), 3);
        assert!(exhausted);
    }

    #[test]
    fn absorb_reply_moves_member_and_collects_unexplored() {
        let mut n = node(0, &[]);
        n.more.insert(NodeId::new(5));
        n.absorb_query_reply(
            NodeId::new(5),
            [NodeId::new(7), NodeId::new(0)].into_iter().collect(),
            true,
        );
        assert!(n.done().contains(&NodeId::new(5)));
        assert!(!n.more().contains(&NodeId::new(5)));
        // Own id filtered; 7 collected.
        assert_eq!(
            n.unexplored().iter().copied().collect::<Vec<_>>(),
            vec![NodeId::new(7)]
        );
    }

    #[test]
    fn snapshot_covers_cluster() {
        let mut n = node(0, &[]);
        n.done.insert(NodeId::new(2));
        n.unaware.insert(NodeId::new(4));
        let snap = n.snapshot();
        assert!(snap.contains(NodeId::new(0)));
        assert!(snap.contains(NodeId::new(2)));
        assert!(snap.contains(NodeId::new(4)));
        assert_eq!(snap.len(), 3);
    }

    #[test]
    fn lex_pair_orders_phase_first() {
        let mut a = node(9, &[]);
        let b = node(1, &[]);
        assert!(a.lex_pair() > b.lex_pair()); // same phase, higher id
        a.phase = 1;
        let mut c = node(0, &[]);
        c.phase = 2;
        assert!(c.lex_pair() > a.lex_pair()); // higher phase beats higher id
    }
}
