//! Driving discovery runs under fault injection.
//!
//! [`FaultyDiscovery`] is the chaos-tier sibling of [`Discovery`]: the same
//! network of [`ArdNode`]s, but every node wrapped in the
//! [`Reliable`] delivery envelope so the run survives the message drops,
//! duplications and node crash/restarts injected by
//! [`ard_netsim::fault::FaultScheduler`].
//!
//! The associated functions [`Discovery::run_faulty`] and
//! [`Discovery::replay_faulty`] are the entry points used by the chaos test
//! suite and the CLI:
//!
//! * `run_faulty` records the complete choice sequence — **including** every
//!   injected `Drop`/`Duplicate`/`Crash`/`Restart`/`Tick` — into a
//!   [`Schedule`], then checks the paper's §1.2 requirements at quiescence.
//! * `replay_faulty` re-executes such a schedule with a plain strict
//!   [`ReplayScheduler`]: because faults were captured as explicit choices,
//!   replay needs **no fault machinery and no randomness** and is
//!   byte-exact.

use ard_graph::{components, KnowledgeGraph};
use ard_netsim::{
    FaultCounts, FaultPlan, FaultScheduler, Metrics, NodeId, RecordingScheduler, ReplayScheduler,
    Runner, Schedule, Scheduler,
};

use crate::invariants;
use crate::node::{ArdNode, AsArdNode};
use crate::reliable::Reliable;
use crate::{Config, Discovery, Variant};

/// Final picture of a discovery run under fault injection.
#[derive(Clone, Debug)]
pub struct FaultyOutcome {
    /// All current leaders (one per weakly connected component), in id order.
    pub leaders: Vec<NodeId>,
    /// For every node, the leader its `next`-pointer chain reaches.
    pub leader_of: Vec<NodeId>,
    /// Simulation steps executed.
    pub steps: u64,
    /// Communication metrics, including the overhead kinds.
    pub metrics: Metrics,
    /// Injected-fault counters (drops, duplicates, crashes, restarts, …).
    pub faults: FaultCounts,
    /// Retransmissions the reliable layer needed ("retransmit" kind).
    pub retransmits: u64,
    /// Acknowledgements the reliable layer sent ("rd-ack" kind).
    pub acks: u64,
}

/// A [`Discovery`] network with every node wrapped in the [`Reliable`]
/// envelope, ready to run under a fault-injecting scheduler.
pub struct FaultyDiscovery {
    runner: Runner<Reliable<ArdNode>>,
    graph: KnowledgeGraph,
    variant: Variant,
}

impl FaultyDiscovery {
    /// Builds the network with the paper's configuration.
    pub fn new(graph: &KnowledgeGraph, variant: Variant) -> Self {
        let config = Config::paper();
        let mut nodes: Vec<ArdNode> = graph
            .ids()
            .map(|id| ArdNode::new(id, graph.out_edges(id).iter().copied(), variant, config))
            .collect();
        if variant == Variant::Bounded {
            for component in components::weakly_connected_components(graph) {
                for &v in &component {
                    nodes[v.index()].set_component_size(component.len());
                }
            }
        }
        FaultyDiscovery {
            runner: Runner::with_topology(
                nodes.into_iter().map(Reliable::new).collect(),
                |id| graph.out_edges(id),
            ),
            graph: graph.clone(),
            variant,
        }
    }

    /// The underlying simulator.
    pub fn runner(&self) -> &Runner<Reliable<ArdNode>> {
        &self.runner
    }

    /// The problem variant in force.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Step budget for faulty runs: 100× the fault-free budget of
    /// [`Discovery::default_step_budget`]. Retransmission traffic under
    /// heavy loss can exceed the fault-free step count by a large factor,
    /// but a correct run still terminates far below this; hitting it means
    /// livelock.
    pub fn step_budget(&self) -> u64 {
        let n = self.runner.len() as u64;
        100 * (200 * n * (64 - n.leading_zeros() as u64 + 1) + 10_000)
    }

    /// Wakes every node and runs to quiescence.
    ///
    /// # Errors
    ///
    /// Returns the livelock description if the step budget is exhausted.
    pub fn run_all(&mut self, sched: &mut dyn Scheduler) -> Result<FaultyOutcome, String> {
        self.runner.enqueue_wake_all(sched);
        let steps = self
            .runner
            .run(sched, self.step_budget())
            .map_err(|e| e.to_string())?;
        Ok(self.outcome(steps))
    }

    /// Checks the paper's §1.2 requirements plus the reliable layer's own
    /// quiescence condition (no transmission still awaiting an ack).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn check_requirements(&self) -> Result<(), String> {
        for node in self.runner.nodes() {
            if node.unacked_len() != 0 {
                return Err(format!(
                    "{} quiesced with {} unacknowledged transmissions",
                    node.ard().id(),
                    node.unacked_len()
                ));
            }
        }
        invariants::check_requirements(&self.runner, &self.graph, self.variant)
    }

    /// Computes the current [`FaultyOutcome`].
    ///
    /// # Panics
    ///
    /// Panics if a `next`-pointer chain cycles (forest invariant violated).
    pub fn outcome(&self, steps: u64) -> FaultyOutcome {
        let metrics = self.runner.metrics().clone();
        FaultyOutcome {
            leaders: self
                .runner
                .nodes()
                .map(AsArdNode::ard)
                .filter(|n| n.is_leader())
                .map(ArdNode::id)
                .collect(),
            leader_of: self
                .runner
                .ids()
                .map(|v| {
                    invariants::resolve_leader(&self.runner, v)
                        .unwrap_or_else(|e| panic!("faulty run broke the forest invariant: {e}"))
                })
                .collect(),
            steps,
            faults: metrics.faults(),
            retransmits: metrics.kind("retransmit").messages,
            acks: metrics.kind("rd-ack").messages,
            metrics,
        }
    }
}

impl std::fmt::Debug for FaultyDiscovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyDiscovery")
            .field("variant", &self.variant)
            .field("nodes", &self.runner.len())
            .finish()
    }
}

/// Canonical `faults` metadata value recorded in faulty schedules: presence
/// of the key tells a replayer to build the reliable-wrapped network; the
/// value documents the plan for humans and regeneration scripts.
fn plan_meta(plan: &FaultPlan) -> String {
    format!(
        "drop={},dup={},crash={},seed={}",
        plan.drop,
        plan.dup,
        plan.crashes.len(),
        plan.seed
    )
}

impl Discovery {
    /// Runs discovery on `graph` under fault injection: every node wrapped
    /// in [`Reliable`], the scheduler wrapped in a fault-injecting
    /// [`FaultScheduler`] (seeded from `plan.seed`), the full choice
    /// sequence recorded. After a quiescent run the paper's requirements
    /// are checked — under any drop rate `< 1` and the plan's bounded
    /// crash/restart churn, discovery must still complete correctly.
    ///
    /// Returns the run result and the recorded schedule (also on failure —
    /// a failing prefix is still worth replaying). The schedule carries
    /// `nodes`, `variant` and `faults` metadata;
    /// [`replay_faulty`](Discovery::replay_faulty) re-executes it exactly.
    pub fn run_faulty<S: Scheduler>(
        graph: &KnowledgeGraph,
        variant: Variant,
        plan: &FaultPlan,
        inner: S,
    ) -> (Result<FaultyOutcome, String>, Schedule) {
        let mut fd = FaultyDiscovery::new(graph, variant);
        let mut sched = RecordingScheduler::new(FaultScheduler::new(inner, Some(plan.clone())));
        let result = fd.run_all(&mut sched);
        let mut schedule = sched.into_schedule();
        schedule.set_meta("nodes", fd.runner.len().to_string());
        schedule.set_meta("variant", variant.to_string());
        schedule.set_meta("faults", plan_meta(plan));
        let result = result.and_then(|o| fd.check_requirements().map(|()| o));
        (result, schedule)
    }

    /// Re-executes a schedule recorded by [`run_faulty`](Discovery::run_faulty)
    /// against a freshly built reliable-wrapped network. The recorded
    /// choices carry the faults, so no [`FaultScheduler`] (and no RNG) is
    /// involved: replay is strict and byte-exact.
    ///
    /// # Errors
    ///
    /// Returns the livelock or requirement violation, exactly as the
    /// recording run produced it.
    pub fn replay_faulty(
        graph: &KnowledgeGraph,
        variant: Variant,
        schedule: &Schedule,
    ) -> Result<FaultyOutcome, String> {
        let mut fd = FaultyDiscovery::new(graph, variant);
        let mut sched = ReplayScheduler::strict(schedule);
        let outcome = fd.run_all(&mut sched)?;
        fd.check_requirements()?;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ard_graph::gen;
    use ard_netsim::RandomScheduler;

    #[test]
    fn lossy_run_completes_and_checks() {
        let graph = gen::random_weakly_connected(12, 20, 3);
        let plan = FaultPlan::new(9).with_drop(0.15).with_dup(0.05);
        let (result, schedule) =
            Discovery::run_faulty(&graph, Variant::Oblivious, &plan, RandomScheduler::seeded(3));
        let outcome = result.unwrap();
        assert_eq!(outcome.leaders.len(), 1);
        assert!(outcome.faults.drops > 0, "plan injected no drops");
        assert!(outcome.retransmits > 0, "drops must force retransmissions");
        assert_eq!(schedule.meta("faults"), Some("drop=0.15,dup=0.05,crash=0,seed=9"));
    }

    #[test]
    fn faulty_schedule_replays_byte_exactly() {
        let graph = gen::random_weakly_connected(10, 16, 7);
        let plan = FaultPlan::new(4)
            .with_drop(0.2)
            .with_crash(NodeId::new(3), 30, 20);
        let (result, schedule) =
            Discovery::run_faulty(&graph, Variant::AdHoc, &plan, RandomScheduler::seeded(1));
        let recorded = result.unwrap();
        assert!(recorded.faults.crashes >= 1);

        let replayed = Discovery::replay_faulty(&graph, Variant::AdHoc, &schedule).unwrap();
        assert_eq!(replayed.steps, recorded.steps);
        assert_eq!(replayed.steps, schedule.len() as u64);
        assert_eq!(replayed.leaders, recorded.leaders);
        assert_eq!(replayed.leader_of, recorded.leader_of);
        assert_eq!(
            format!("{}", replayed.metrics),
            format!("{}", recorded.metrics)
        );
        // The round-trip through text is also exact.
        let reparsed = Schedule::parse(&schedule.to_text()).unwrap();
        assert_eq!(reparsed.choices(), schedule.choices());
    }

    #[test]
    fn vacuous_plan_behaves_like_reliable_network() {
        let graph = gen::random_weakly_connected(8, 12, 2);
        let plan = FaultPlan::new(0);
        let (result, _schedule) =
            Discovery::run_faulty(&graph, Variant::Bounded, &plan, RandomScheduler::seeded(5));
        let outcome = result.unwrap();
        // Ticks still fire (the retransmission timer), but nothing is
        // dropped, duplicated or crashed.
        assert_eq!(outcome.faults.drops, 0);
        assert_eq!(outcome.faults.duplicates, 0);
        assert_eq!(outcome.faults.crashes, 0);
        assert!(outcome.faults.ticks > 0);
        // Every logical message still costs one ack. (A few spurious
        // retransmissions are possible even without faults: the scheduler
        // may fire ticks faster than it delivers acks.)
        assert!(outcome.acks > 0);
    }

    #[test]
    fn faulty_budgets_hold() {
        let graph = gen::random_weakly_connected(24, 48, 5);
        for variant in [Variant::Oblivious, Variant::Bounded, Variant::AdHoc] {
            let plan = FaultPlan::new(11).with_drop(0.1).with_dup(0.05);
            let (result, _) =
                Discovery::run_faulty(&graph, variant, &plan, RandomScheduler::seeded(6));
            let outcome = result.unwrap();
            crate::budgets::check_all_faulty(
                &outcome.metrics,
                graph.len() as u64,
                graph.edge_count() as u64,
                variant,
            )
            .unwrap_or_else(|e| panic!("{variant}: {e}"));
        }
    }
}
