use ard_netsim::{Envelope, IdSeq, NodeId};

/// Bits charged for a phase number in a message (`phase ≤ 64` over the
/// simulator's whole feasible range, so 8 bits cover it).
///
/// These three constants are the single source of truth for every
/// variant's non-id payload size: [`Envelope::aux_bits`] sums them per
/// variant, and the budget checks in [`crate::budgets`] derive their
/// per-message overhead terms from the same sums (via
/// [`Message::QUERY_REPLY_AUX_BITS`] and [`Message::INFO_AUX_BITS`]), so
/// metering and bounds cannot drift apart.
pub const PHASE_BITS: u64 = 8;

/// Bits charged for a counter or set-length prefix (`n ≤ 2³²`).
pub const COUNT_BITS: u64 = 32;

/// Bits charged for a boolean flag.
pub const FLAG_BITS: u64 = 1;

/// Answer carried by a [`Message::Release`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The searched leader surrenders: it asks to merge into the search's
    /// originator (it had the lexicographically smaller `(phase, id)`).
    Merge,
    /// The searched leader refuses: the originator must stop initiating
    /// searches and becomes passive.
    Abort,
}

/// The protocol messages of the generic algorithm and its variants
/// (paper §4). Field names follow the pseudocode.
///
/// Non-id payload sizes are constants chosen to cover the simulator's whole
/// feasible range (`n ≤ 2³²`, `phase ≤ 64`): counters are charged 32 bits,
/// phases 8 bits, flags 1 bit. All are `O(log n)`, as the paper's bit
/// analysis assumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Leader → cluster member: "send me `want` of the ids you have not yet
    /// reported". The balanced choice `want = |more| + |done| + 1` is the
    /// source of the algorithm's low bit complexity (§4.1).
    Query {
        /// Number of ids requested (`u32::MAX` requests everything — used
        /// only by the reproduction's *unbalanced query* ablation).
        want: u32,
    },
    /// Member → leader: up to `want` previously unreported ids.
    QueryReply {
        /// The ids removed from the member's `local` set.
        ids: IdSeq,
        /// Whether the member's `local` set is now empty (the leader then
        /// moves it from `more` to `done`).
        exhausted: bool,
    },
    /// A leader's conquest attempt, routed along `next` pointers from
    /// `target` to `target`'s current leader.
    Search {
        /// The initiating leader.
        origin: NodeId,
        /// The initiating leader's phase at send time.
        origin_phase: u32,
        /// The unexplored node the search was addressed to.
        target: NodeId,
        /// Set to `true` en route if `target` did not previously know
        /// `origin` (the reverse-edge bookkeeping of §4.2): the receiving
        /// leader must then move `target` from `done` back to `more`.
        new_edge: bool,
    },
    /// The searched leader's reply, routed back along the search's path with
    /// path compression (every relay re-points `next` at `leader`).
    ///
    /// The answering node's phase travels with it: a relay compresses only
    /// when `leader_phase` is at least its own conquer epoch, otherwise an
    /// in-flight release could overwrite a *newer* conquer wave's pointer
    /// and break requirement 3 (interpretation decision \[D6]).
    Release {
        /// The leader that answered (the compression target).
        leader: NodeId,
        /// The answering node's phase when it answered.
        leader_phase: u32,
        /// Merge or abort.
        verdict: Verdict,
        /// The search's originator, to whom this release is addressed.
        dest: NodeId,
    },
    /// Originator → surrendered leader: merge accepted, send your state.
    MergeAccept,
    /// Sent to a surrendered leader whose conqueror has itself been
    /// conquered (or gone passive) in the meantime; the receiver goes
    /// passive instead of merging.
    MergeFail,
    /// Surrendered leader → conqueror: its entire bookkeeping state. In the
    /// Bounded/Ad-hoc variants `unaware` is always empty (§4.5).
    ///
    /// The payload is boxed so this rare, four-`Vec` variant does not set
    /// the size of every [`Message`] moved through the simulator's link
    /// queues.
    Info(Box<InfoPayload>),
    /// Leader → newly acquired member: "I am your leader now" (generic
    /// variant after every merge; Bounded variant only at termination).
    Conquer {
        /// The conquering leader's current phase.
        phase: u32,
    },
    /// Member's acknowledgement of a [`Message::Conquer`], indicating
    /// whether its `local` set is empty (`done`) or not (`more`).
    MoreDone {
        /// `true` if the member has nothing left to report.
        exhausted: bool,
    },
    /// Ad-hoc variant: a request for the current id snapshot, routed along
    /// `next` pointers to the leader like a [`Message::Search`] (§4.5.2).
    Probe {
        /// The requesting node.
        origin: NodeId,
    },
    /// Ad-hoc variant: the leader's snapshot, routed back with path
    /// compression like a [`Message::Release`] (including its
    /// `leader_phase` staleness guard, \[D6]).
    ProbeReply {
        /// The answering leader (the compression target).
        leader: NodeId,
        /// The answering node's phase when it answered.
        leader_phase: u32,
        /// The requesting node.
        dest: NodeId,
        /// All ids the leader currently knows in its component.
        ids: IdSeq,
    },
}

/// The state a surrendered leader ships to its conqueror in a
/// [`Message::Info`].
///
/// The four sets are [`IdSeq`]s: built from ascending `BTreeSet`
/// iteration, a whole cluster set run-codes into a handful of words, so
/// the endgame's O(component)-sized handovers stop dominating allocation
/// and memcpy traffic (the id *order*, and with it every digest and
/// metering contract, is unchanged from the `Vec<NodeId>` representation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InfoPayload {
    /// The surrendered leader's final phase.
    pub phase: u32,
    /// Its `more` set (members with unreported ids).
    pub more: IdSeq,
    /// Its `done` set (fully reported members).
    pub done: IdSeq,
    /// Its `unaware` set (always empty in practice; a conqueror cannot
    /// be conquered mid-conquest).
    pub unaware: IdSeq,
    /// Its `unexplored` set (ids known but not yet searched).
    pub unexplored: IdSeq,
}

impl Message {
    /// Non-id payload bits of a [`Message::QueryReply`]: the set-length
    /// prefix plus the `exhausted` flag. Shared with the Lemma 5.9 budget
    /// checks.
    pub const QUERY_REPLY_AUX_BITS: u64 = COUNT_BITS + FLAG_BITS;

    /// Non-id payload bits of a [`Message::Info`]: the phase plus one
    /// length prefix per shipped set. Shared with the Lemma 5.10 budget
    /// checks (previously a hand-copied `8 + 4 * 32` on both sides).
    pub const INFO_AUX_BITS: u64 = PHASE_BITS + 4 * COUNT_BITS;

    /// Whether this message is routed leaf-to-leader along `next` pointers
    /// (and therefore serialized through relays' `previous` queues).
    pub fn is_routable_request(&self) -> bool {
        matches!(self, Message::Search { .. } | Message::Probe { .. })
    }
}

impl Envelope for Message {
    fn kind(&self) -> &'static str {
        match self {
            Message::Query { .. } => "query",
            Message::QueryReply { .. } => "query reply",
            Message::Search { .. } => "search",
            Message::Release { .. } => "release",
            Message::MergeAccept => "merge accept",
            Message::MergeFail => "merge fail",
            Message::Info { .. } => "info",
            Message::Conquer { .. } => "conquer",
            Message::MoreDone { .. } => "more/done",
            Message::Probe { .. } => "probe",
            Message::ProbeReply { .. } => "probe reply",
        }
    }

    fn for_each_carried_id(&self, f: &mut dyn FnMut(NodeId)) {
        match self {
            Message::Query { .. }
            | Message::MergeAccept
            | Message::MergeFail
            | Message::Conquer { .. }
            | Message::MoreDone { .. } => {}
            Message::QueryReply { ids, .. } => ids.for_each(f),
            Message::Search { origin, target, .. } => {
                f(*origin);
                f(*target);
            }
            Message::Release { leader, dest, .. } => {
                f(*leader);
                f(*dest);
            }
            Message::Info(p) => {
                p.more.for_each(f);
                p.done.for_each(f);
                p.unaware.for_each(f);
                p.unexplored.for_each(f);
            }
            Message::Probe { origin } => f(*origin),
            Message::ProbeReply {
                leader, dest, ids, ..
            } => {
                f(*leader);
                f(*dest);
                ids.for_each(f);
            }
        }
    }

    fn for_each_carried_run(&self, f: &mut dyn FnMut(u32, u32)) {
        let one = |id: NodeId, f: &mut dyn FnMut(u32, u32)| {
            let i = id.index() as u32;
            f(i, i + 1);
        };
        match self {
            Message::Query { .. }
            | Message::MergeAccept
            | Message::MergeFail
            | Message::Conquer { .. }
            | Message::MoreDone { .. } => {}
            Message::QueryReply { ids, .. } => ids.for_each_run(f),
            Message::Search { origin, target, .. } => {
                one(*origin, f);
                one(*target, f);
            }
            Message::Release { leader, dest, .. } => {
                one(*leader, f);
                one(*dest, f);
            }
            Message::Info(p) => {
                p.more.for_each_run(f);
                p.done.for_each_run(f);
                p.unaware.for_each_run(f);
                p.unexplored.for_each_run(f);
            }
            Message::Probe { origin } => one(*origin, f),
            Message::ProbeReply {
                leader, dest, ids, ..
            } => {
                one(*leader, f);
                one(*dest, f);
                ids.for_each_run(f);
            }
        }
    }

    fn payload_heap_bytes(&self) -> usize {
        match self {
            Message::QueryReply { ids, .. } | Message::ProbeReply { ids, .. } => ids.heap_bytes(),
            Message::Info(p) => {
                std::mem::size_of::<InfoPayload>()
                    + p.more.heap_bytes()
                    + p.done.heap_bytes()
                    + p.unaware.heap_bytes()
                    + p.unexplored.heap_bytes()
            }
            _ => 0,
        }
    }

    fn carried_id_count(&self) -> usize {
        match self {
            Message::Query { .. }
            | Message::MergeAccept
            | Message::MergeFail
            | Message::Conquer { .. }
            | Message::MoreDone { .. } => 0,
            Message::QueryReply { ids, .. } => ids.len(),
            Message::Search { .. } | Message::Release { .. } => 2,
            Message::Info(p) => {
                p.more.len() + p.done.len() + p.unaware.len() + p.unexplored.len()
            }
            Message::Probe { .. } => 1,
            Message::ProbeReply { ids, .. } => 2 + ids.len(),
        }
    }

    fn aux_bits(&self) -> u64 {
        match self {
            Message::Query { .. } => COUNT_BITS,
            Message::QueryReply { .. } => Message::QUERY_REPLY_AUX_BITS,
            Message::Search { .. } => PHASE_BITS + FLAG_BITS,
            Message::Release { .. } => PHASE_BITS + FLAG_BITS,
            Message::MergeAccept | Message::MergeFail => 0,
            Message::Info { .. } => Message::INFO_AUX_BITS,
            Message::Conquer { .. } => PHASE_BITS,
            Message::MoreDone { .. } => FLAG_BITS,
            Message::Probe { .. } => 0,
            Message::ProbeReply { .. } => PHASE_BITS + COUNT_BITS,
        }
    }

    fn digest(&self, d: &mut ard_netsim::StateDigest) {
        // The default digest (kind + ids + aux bits) cannot see the scalar
        // payloads: `aux_bits` is a per-variant constant, so two conquer
        // waves at different phases — genuinely different futures — would
        // hash alike. Mix every field the receiver branches on.
        d.mix_bytes(self.kind().as_bytes());
        d.mix(self.carried_id_count() as u64);
        self.for_each_carried_id(&mut |id| d.mix(id.index() as u64));
        match self {
            Message::Query { want } => d.mix(u64::from(*want)),
            Message::QueryReply { exhausted, .. } => d.mix(u64::from(*exhausted)),
            Message::Search {
                origin_phase,
                new_edge,
                ..
            } => {
                d.mix(u64::from(*origin_phase));
                d.mix(u64::from(*new_edge));
            }
            Message::Release {
                leader_phase,
                verdict,
                ..
            } => {
                d.mix(u64::from(*leader_phase));
                d.mix(matches!(verdict, Verdict::Merge) as u64);
            }
            Message::MergeAccept | Message::MergeFail | Message::Probe { .. } => {}
            Message::Info(p) => {
                d.mix(u64::from(p.phase));
                // The flat id visit cannot show which set an id sits in;
                // the set lengths restore the boundaries.
                d.mix(p.more.len() as u64);
                d.mix(p.done.len() as u64);
                d.mix(p.unaware.len() as u64);
            }
            Message::Conquer { phase } => d.mix(u64::from(*phase)),
            Message::MoreDone { exhausted } => d.mix(u64::from(*exhausted)),
            Message::ProbeReply { leader_phase, .. } => d.mix(u64::from(*leader_phase)),
        }
    }

    fn forge(_src: NodeId, dst: NodeId, salt: u32) -> Option<Self> {
        // Salt convention (see [`Envelope::forge`]): the low 8 bits pick the
        // lie, the high bits parameterize it.
        match salt & 0xFF {
            // Equivocation: a conquer wave at an attacker-chosen phase.
            // Sent with *different* phases to different neighbors, it
            // splits their `next` pointers between inconsistent "leaders"
            // and rolls their conquer epochs forward, desynchronizing the
            // [D5]/[D6] staleness guards.
            0 => Some(Message::Conquer {
                phase: 1 + (salt >> 8),
            }),
            // Fabrication: a search claiming to originate from an arbitrary
            // id the receiver may never have heard of. `origin_phase: 0`
            // loses every `(phase, id)` comparison, so the lie cannot
            // conquer anyone directly — it plants the fabricated id in
            // `local`/`unexplored` sets ([D3]) and triggers spurious
            // searches toward it.
            1 => Some(Message::Search {
                origin: NodeId::new((salt >> 8) as usize),
                origin_phase: 0,
                target: dst,
                new_edge: false,
            }),
            // Unknown flavors forge nothing: the choice becomes a metered
            // no-op, keeping every salt valid for the explorer.
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(indices: &[usize]) -> IdSeq {
        indices.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn kinds_are_distinct() {
        let msgs = [
            Message::Query { want: 1 },
            Message::QueryReply {
                ids: IdSeq::new(),
                exhausted: false,
            },
            Message::Search {
                origin: NodeId::new(0),
                origin_phase: 1,
                target: NodeId::new(1),
                new_edge: false,
            },
            Message::Release {
                leader: NodeId::new(0),
                leader_phase: 1,
                verdict: Verdict::Merge,
                dest: NodeId::new(1),
            },
            Message::MergeAccept,
            Message::MergeFail,
            Message::Info(Box::new(InfoPayload {
                phase: 1,
                more: IdSeq::new(),
                done: IdSeq::new(),
                unaware: IdSeq::new(),
                unexplored: IdSeq::new(),
            })),
            Message::Conquer { phase: 2 },
            Message::MoreDone { exhausted: true },
            Message::Probe {
                origin: NodeId::new(0),
            },
            Message::ProbeReply {
                leader: NodeId::new(0),
                leader_phase: 1,
                dest: NodeId::new(1),
                ids: IdSeq::new(),
            },
        ];
        let mut kinds: Vec<_> = msgs.iter().map(|m| m.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), msgs.len());
    }

    #[test]
    fn carried_ids_cover_payload() {
        let info = Message::Info(Box::new(InfoPayload {
            phase: 3,
            more: seq(&[1]),
            done: seq(&[2, 3]),
            unaware: IdSeq::new(),
            unexplored: seq(&[4]),
        }));
        // Set order: more, done, unaware, unexplored.
        let expected: Vec<NodeId> = [1, 2, 3, 4].map(NodeId::new).to_vec();
        assert_eq!(info.carried_ids(), expected);
        assert_eq!(info.carried_id_count(), 4);

        let search = Message::Search {
            origin: NodeId::new(9),
            origin_phase: 1,
            target: NodeId::new(5),
            new_edge: true,
        };
        assert_eq!(search.carried_ids(), vec![NodeId::new(9), NodeId::new(5)]);
        assert_eq!(search.carried_id_count(), 2);
    }

    mod visitor_equivalence {
        use super::*;
        use proptest::prelude::*;

        fn nid() -> impl Strategy<Value = NodeId> {
            (0usize..512).prop_map(NodeId::new)
        }

        fn id_vec(max: usize) -> impl Strategy<Value = Vec<NodeId>> {
            prop::collection::vec(nid(), 0..max)
        }

        /// Generates one arbitrary message of any variant together with the
        /// id list its payload carries, in payload order — the oracle the
        /// visitor must reproduce exactly.
        fn arb_message() -> impl Strategy<Value = (Message, Vec<NodeId>)> {
            prop_oneof![
                any::<u32>().prop_map(|want| (Message::Query { want }, vec![])),
                (id_vec(8), any::<bool>()).prop_map(|(ids, exhausted)| (
                    Message::QueryReply {
                        ids: ids.iter().copied().collect(),
                        exhausted
                    },
                    ids
                )),
                (nid(), any::<u32>(), nid(), any::<bool>()).prop_map(
                    |(origin, origin_phase, target, new_edge)| (
                        Message::Search {
                            origin,
                            origin_phase,
                            target,
                            new_edge
                        },
                        vec![origin, target]
                    )
                ),
                (nid(), any::<u32>(), any::<bool>(), nid()).prop_map(
                    |(leader, leader_phase, merge, dest)| (
                        Message::Release {
                            leader,
                            leader_phase,
                            verdict: if merge { Verdict::Merge } else { Verdict::Abort },
                            dest
                        },
                        vec![leader, dest]
                    )
                ),
                Just((Message::MergeAccept, vec![])),
                Just((Message::MergeFail, vec![])),
                (any::<u32>(), id_vec(6), id_vec(6), id_vec(6), id_vec(6)).prop_map(
                    |(phase, more, done, unaware, unexplored)| {
                        let expected: Vec<NodeId> = more
                            .iter()
                            .chain(&done)
                            .chain(&unaware)
                            .chain(&unexplored)
                            .copied()
                            .collect();
                        (
                            Message::Info(Box::new(InfoPayload {
                                phase,
                                more: more.into_iter().collect(),
                                done: done.into_iter().collect(),
                                unaware: unaware.into_iter().collect(),
                                unexplored: unexplored.into_iter().collect(),
                            })),
                            expected,
                        )
                    }
                ),
                any::<u32>().prop_map(|phase| (Message::Conquer { phase }, vec![])),
                any::<bool>().prop_map(|exhausted| (Message::MoreDone { exhausted }, vec![])),
                nid().prop_map(|origin| (Message::Probe { origin }, vec![origin])),
                (nid(), any::<u32>(), nid(), id_vec(8)).prop_map(
                    |(leader, leader_phase, dest, ids)| {
                        let mut expected = vec![leader, dest];
                        expected.extend(ids.iter().copied());
                        (
                            Message::ProbeReply {
                                leader,
                                leader_phase,
                                dest,
                                ids: ids.into_iter().collect(),
                            },
                            expected,
                        )
                    }
                ),
            ]
        }

        proptest! {
            /// For every variant, the non-allocating visitor yields exactly
            /// the payload's ids in payload order, and the counting and
            /// `Vec`-collecting conveniences agree with it — so metering at
            /// send time and knowledge growth at delivery time see the same
            /// ids the old `carried_ids()` path did.
            #[test]
            fn visitor_yields_payload_ids_in_order((msg, expected) in arb_message()) {
                let mut visited = Vec::new();
                msg.for_each_carried_id(&mut |id| visited.push(id));
                prop_assert_eq!(&visited, &expected);
                prop_assert_eq!(msg.carried_ids(), expected);
                prop_assert_eq!(msg.carried_id_count(), visited.len());
                // The run decomposition concatenates to the very same id
                // sequence, so run-based knowledge absorption learns
                // exactly what the id visitor teaches.
                let mut by_runs = Vec::new();
                msg.for_each_carried_run(&mut |s, e| {
                    by_runs.extend((s..e).map(|i| NodeId::new(i as usize)));
                });
                prop_assert_eq!(by_runs, visited);
            }
        }
    }

    #[test]
    fn message_moves_stay_small() {
        // Every send/deliver moves a `Message` through the simulator's link
        // queues; the rare `Info` variant is boxed so it does not set the
        // size of all the common variants.
        assert!(std::mem::size_of::<Message>() <= 48);
    }

    #[test]
    fn routable_requests_are_search_and_probe() {
        assert!(Message::Probe {
            origin: NodeId::new(0)
        }
        .is_routable_request());
        assert!(Message::Search {
            origin: NodeId::new(0),
            origin_phase: 1,
            target: NodeId::new(1),
            new_edge: false
        }
        .is_routable_request());
        assert!(!Message::MergeAccept.is_routable_request());
    }

    #[test]
    fn query_reply_bits_scale_with_ids() {
        let small = Message::QueryReply {
            ids: seq(&[0]),
            exhausted: false,
        };
        let large = Message::QueryReply {
            ids: (0..100).map(NodeId::new).collect(),
            exhausted: false,
        };
        assert!(large.bits(16) > small.bits(16));
        assert_eq!(large.bits(16) - small.bits(16), 99 * 16);
    }

    #[test]
    fn payload_heap_bytes_follow_the_buffers() {
        assert_eq!(Message::Query { want: 3 }.payload_heap_bytes(), 0);
        let reply = Message::QueryReply {
            ids: seq(&[1, 2, 3]),
            exhausted: false,
        };
        assert!(reply.payload_heap_bytes() >= 3 * 8);
        // A run-coded info payload reports a few words, not O(component).
        let info = Message::Info(Box::new(InfoPayload {
            phase: 3,
            more: (0..10_000).map(NodeId::new).collect(),
            done: IdSeq::new(),
            unaware: IdSeq::new(),
            unexplored: IdSeq::new(),
        }));
        assert!(info.payload_heap_bytes() < 1024, "one long run stays compact");
    }
}
