use ard_graph::{components, KnowledgeGraph};
use ard_netsim::{
    LivelockError, Metrics, NodeId, RecordingScheduler, ReplayScheduler, Runner, Schedule,
    Scheduler,
};

use crate::invariants;
use crate::node::ArdNode;
use crate::status::Transition;
use crate::{Config, Variant};

/// Result of issuing a probe through [`Discovery::probe`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProbeStatus {
    /// The probed node was (still) a leader and answered itself with this
    /// snapshot, costing zero messages.
    Immediate(Vec<NodeId>),
    /// A probe message is in flight toward the leader; the answer will land
    /// in the node's [`probe_results`](ArdNode::probe_results) once the
    /// scheduler delivers it.
    InFlight,
}

/// Final (or intermediate) picture of a discovery run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// All current leaders (one per weakly connected component once
    /// quiescent), in id order.
    pub leaders: Vec<NodeId>,
    /// For every node, the leader its `next`-pointer chain reaches.
    pub leader_of: Vec<NodeId>,
    /// Simulation steps executed by the `run` call that produced this.
    pub steps: u64,
    /// Communication metrics accumulated so far.
    pub metrics: Metrics,
}

/// High-level driver: builds a network of [`ArdNode`]s from a
/// [`KnowledgeGraph`], runs it under a [`Scheduler`], and exposes the
/// paper-level operations (probes, dynamic additions, requirement checks).
///
/// # Example
///
/// ```
/// use ard_core::{Discovery, Variant};
/// use ard_graph::gen;
/// use ard_netsim::FifoScheduler;
///
/// let graph = gen::star_out(8);
/// let mut discovery = Discovery::new(&graph, Variant::Bounded);
/// let outcome = discovery.run_all(&mut FifoScheduler::new()).unwrap();
/// assert_eq!(outcome.leaders.len(), 1);
/// discovery.check_requirements(&graph).unwrap();
/// // Bounded variant: everyone has terminated.
/// assert!(discovery.runner().nodes().all(|n| n.is_terminated()));
/// ```
pub struct Discovery {
    runner: Runner<ArdNode>,
    graph: KnowledgeGraph,
    variant: Variant,
    config: Config,
}

impl Discovery {
    /// Builds a discovery network with the paper's configuration.
    pub fn new(graph: &KnowledgeGraph, variant: Variant) -> Self {
        Self::with_config(graph, variant, Config::paper())
    }

    /// Builds a discovery network with an explicit (possibly ablated)
    /// configuration.
    pub fn with_config(graph: &KnowledgeGraph, variant: Variant, config: Config) -> Self {
        let mut nodes: Vec<ArdNode> = graph
            .ids()
            .map(|id| ArdNode::new(id, graph.out_edges(id).iter().copied(), variant, config))
            .collect();
        if variant == Variant::Bounded {
            let comp = components::weakly_connected_components(graph);
            for component in &comp {
                for &v in component {
                    nodes[v.index()].set_component_size(component.len());
                }
            }
        }
        Discovery {
            // Borrow the adjacency lists straight out of the graph: no
            // per-node `Vec` clones, which matters at n = 10⁶.
            runner: Runner::with_topology(nodes, |id| graph.out_edges(id)),
            graph: graph.clone(),
            variant,
            config,
        }
    }

    /// The problem variant in force.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The configuration in force.
    pub fn config(&self) -> Config {
        self.config
    }

    /// The knowledge graph as currently known (initial graph plus dynamic
    /// additions).
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.graph
    }

    /// The underlying simulator.
    pub fn runner(&self) -> &Runner<ArdNode> {
        &self.runner
    }

    /// Mutable access to the underlying simulator (for custom drivers such
    /// as the lower-bound constructions).
    pub fn runner_mut(&mut self) -> &mut Runner<ArdNode> {
        &mut self.runner
    }

    /// A generous step budget: quadratic-ish in `n`, far above any correct
    /// execution, so hitting it means livelock.
    pub fn default_step_budget(&self) -> u64 {
        let n = self.runner.len() as u64;
        200 * n * (64 - n.leading_zeros() as u64 + 1) + 10_000
    }

    /// Enqueues wake-ups for every node (the scheduler orders them).
    pub fn enqueue_wake_all(&mut self, sched: &mut dyn Scheduler) {
        self.runner.enqueue_wake_all(sched);
    }

    /// Wakes one node immediately (staged drivers).
    pub fn wake_now(&mut self, node: NodeId, sched: &mut dyn Scheduler) {
        self.runner.wake_now(node, sched);
    }

    /// Runs until quiescence within the default step budget.
    ///
    /// # Errors
    ///
    /// Returns [`LivelockError`] if the budget is exhausted first.
    pub fn run(&mut self, sched: &mut dyn Scheduler) -> Result<Outcome, LivelockError> {
        let steps = self.runner.run(sched, self.default_step_budget())?;
        let mut outcome = self.outcome();
        outcome.steps = steps;
        Ok(outcome)
    }

    /// Wakes every node and runs to quiescence — the standard experiment.
    ///
    /// # Errors
    ///
    /// Returns [`LivelockError`] if the step budget is exhausted first.
    pub fn run_all(&mut self, sched: &mut dyn Scheduler) -> Result<Outcome, LivelockError> {
        self.enqueue_wake_all(sched);
        self.run(sched)
    }

    /// Wakes every node and runs to quiescence on `shards` worker threads —
    /// the sharded equivalent of [`run_all`](Discovery::run_all) under a
    /// FIFO scheduler. Output (metrics, trace, knowledge, node state, step
    /// count) is byte-identical at any shard count, including `1`.
    ///
    /// # Errors
    ///
    /// Returns [`LivelockError`] if the default step budget is exhausted
    /// first, exactly when the sequential run would.
    pub fn run_all_sharded(&mut self, shards: usize) -> Result<Outcome, LivelockError> {
        let budget = self.default_step_budget();
        self.run_all_sharded_capped(shards, budget)
    }

    /// Like [`run_all_sharded`](Discovery::run_all_sharded), with an
    /// explicit step budget instead of the default one.
    ///
    /// # Errors
    ///
    /// Returns [`LivelockError`] if `max_steps` events execute without
    /// reaching quiescence.
    pub fn run_all_sharded_capped(
        &mut self,
        shards: usize,
        max_steps: u64,
    ) -> Result<Outcome, LivelockError> {
        let steps = self.runner.run_sharded(shards, max_steps)?;
        let mut outcome = self.outcome();
        outcome.steps = steps;
        Ok(outcome)
    }

    /// Like [`run_recorded`](Discovery::run_recorded) under a FIFO
    /// scheduler, but executed on `shards` worker threads: the returned
    /// [`Schedule`] is byte-identical to a sequential FIFO recording.
    pub fn run_sharded_recorded(
        &mut self,
        shards: usize,
    ) -> (Result<Outcome, LivelockError>, Schedule) {
        let budget = self.default_step_budget();
        let (result, mut schedule) = self.runner.run_sharded_recorded(shards, budget);
        schedule.set_meta("nodes", self.runner.len().to_string());
        schedule.set_meta("variant", self.variant.to_string());
        let result = result.map(|steps| {
            let mut outcome = self.outcome();
            outcome.steps = steps;
            outcome
        });
        (result, schedule)
    }

    /// Like [`run_all`](Discovery::run_all), but records the exact choice
    /// sequence the scheduler makes into a replayable [`Schedule`] (with
    /// `nodes` and `variant` metadata attached). The schedule is returned
    /// even when the run livelocks — a livelocking prefix is still worth
    /// replaying.
    pub fn run_recorded<S: Scheduler>(
        &mut self,
        inner: S,
    ) -> (Result<Outcome, LivelockError>, Schedule) {
        let mut sched = RecordingScheduler::new(inner);
        let result = self.run_all(&mut sched);
        let mut schedule = sched.into_schedule();
        schedule.set_meta("nodes", self.runner.len().to_string());
        schedule.set_meta("variant", self.variant.to_string());
        (result, schedule)
    }

    /// Re-executes a recorded [`Schedule`] against this (freshly built)
    /// network: wakes every node and replays strictly, panicking with a
    /// divergence diagnostic if the schedule was recorded against a
    /// different system.
    ///
    /// # Errors
    ///
    /// Returns [`LivelockError`] if the step budget is exhausted first.
    pub fn run_replay(&mut self, schedule: &Schedule) -> Result<Outcome, LivelockError> {
        let mut sched = ReplayScheduler::strict(schedule);
        self.run_all(&mut sched)
    }

    /// Computes the current [`Outcome`] without running anything.
    pub fn outcome(&self) -> Outcome {
        Outcome {
            leaders: self.leaders(),
            leader_of: self.runner.ids().map(|v| self.leader_of(v)).collect(),
            steps: 0,
            metrics: self.runner.metrics().clone(),
        }
    }

    /// All nodes currently in a leader state, in id order.
    pub fn leaders(&self) -> Vec<NodeId> {
        self.runner
            .nodes()
            .filter(|n| n.is_leader())
            .map(ArdNode::id)
            .collect()
    }

    /// Resolves `v`'s leader by following `next` pointers (requirement
    /// 3a/3b: the pointers induce a directed path to the leader).
    ///
    /// # Panics
    ///
    /// Panics if the pointer chain cycles, which would violate the paper's
    /// forest invariant.
    pub fn leader_of(&self, v: NodeId) -> NodeId {
        let mut cur = v;
        for _ in 0..=self.runner.len() {
            let next = self.runner.node(cur).next_pointer();
            if next == cur {
                return cur;
            }
            cur = next;
        }
        panic!("next-pointer chain from {v} cycles");
    }

    /// Ad-hoc variant: asks `node` for the current component snapshot
    /// (§4.5.2). Leaders answer immediately; inactive nodes route a probe.
    pub fn probe(&mut self, node: NodeId, sched: &mut dyn Scheduler) -> ProbeStatus {
        assert_eq!(
            self.variant,
            Variant::AdHoc,
            "probes exist only in the Ad-hoc variant"
        );
        let before = self.runner.node(node).probe_results().len();
        self.runner.exec(node, sched, |n, ctx| n.start_probe(ctx));
        let n = self.runner.node(node);
        if n.probe_results().len() > before {
            ProbeStatus::Immediate(n.probe_results().last().expect("just pushed").clone())
        } else {
            ProbeStatus::InFlight
        }
    }

    /// Issues a probe and runs to quiescence, returning the snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`LivelockError`] if the step budget is exhausted first.
    pub fn probe_blocking(
        &mut self,
        node: NodeId,
        sched: &mut dyn Scheduler,
    ) -> Result<Vec<NodeId>, LivelockError> {
        match self.probe(node, sched) {
            ProbeStatus::Immediate(ids) => Ok(ids),
            ProbeStatus::InFlight => {
                self.runner.run(sched, self.default_step_budget())?;
                Ok(self
                    .runner
                    .node(node)
                    .probe_results()
                    .last()
                    .expect("probe answered at quiescence")
                    .clone())
            }
        }
    }

    /// Dynamic node addition (§6): a fresh node that knows `known` joins the
    /// system and is woken. Returns its id.
    ///
    /// # Panics
    ///
    /// Panics for the Bounded variant, whose known component sizes dynamic
    /// growth would invalidate (the paper extends only the Ad-hoc
    /// algorithm).
    pub fn add_node(&mut self, known: Vec<NodeId>, sched: &mut dyn Scheduler) -> NodeId {
        assert_ne!(
            self.variant,
            Variant::Bounded,
            "dynamic additions invalidate known sizes"
        );
        let id = self.graph.add_node();
        for &v in &known {
            self.graph.add_edge(id, v);
        }
        let node = ArdNode::new(id, known.clone(), self.variant, self.config);
        let rid = self.runner.add_node(node, known);
        debug_assert_eq!(rid, id);
        self.runner.enqueue_wake(id, sched);
        id
    }

    /// Dynamic link addition (§6): node `u` learns `v`'s id at runtime.
    ///
    /// # Panics
    ///
    /// Panics for the Bounded variant (see [`add_node`](Discovery::add_node)).
    pub fn add_link(&mut self, u: NodeId, v: NodeId, sched: &mut dyn Scheduler) {
        assert_ne!(
            self.variant,
            Variant::Bounded,
            "dynamic additions invalidate known sizes"
        );
        if u == v || self.graph.has_edge(u, v) {
            return;
        }
        self.graph.add_edge(u, v);
        self.runner.add_link(u, v);
        self.runner
            .exec(u, sched, |n, ctx| n.add_dynamic_edge(v, ctx));
    }

    /// Checks the paper's §1.2 requirements (1, 2, 3/3a–3b and 4) against
    /// the given reference graph; call at quiescence.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// requirement.
    pub fn check_requirements(&self, graph: &KnowledgeGraph) -> Result<(), String> {
        invariants::check_requirements(&self.runner, graph, self.variant)
    }

    /// Extension beyond the paper (its §7 names dynamic *removals* as open):
    /// extracts the knowledge graph induced by the `survivors` of a crash —
    /// every id a survivor has learned (protocol state: `local`, cluster
    /// sets, `next` pointer) that itself survived becomes an initial edge of
    /// a fresh discovery instance. Returns the survivor graph and the
    /// mapping from new dense ids to old ids.
    ///
    /// This is the paper's own recovery story (§1: "The first step toward
    /// rebuilding such a system is discovering and regrouping all the
    /// currently online nodes"): run a new [`Discovery`] over the returned
    /// graph.
    ///
    /// # Panics
    ///
    /// Panics if `survivors` contains duplicates or unknown ids.
    pub fn survivor_graph(&self, survivors: &[NodeId]) -> (KnowledgeGraph, Vec<NodeId>) {
        let mut new_id = vec![usize::MAX; self.runner.len()];
        for (i, &v) in survivors.iter().enumerate() {
            assert!(v.index() < self.runner.len(), "unknown survivor {v}");
            assert_eq!(new_id[v.index()], usize::MAX, "duplicate survivor {v}");
            new_id[v.index()] = i;
        }
        let mut graph = KnowledgeGraph::new(survivors.len());
        for (i, &v) in survivors.iter().enumerate() {
            let node = self.runner.node(v);
            let knows = node
                .local()
                .iter()
                .chain(node.more())
                .chain(node.done())
                .chain(node.unaware())
                .chain(node.unexplored())
                .copied()
                .chain([node.next_pointer()]);
            for w in knows {
                let j = new_id.get(w.index()).copied().unwrap_or(usize::MAX);
                if j != usize::MAX && j != i {
                    graph.add_edge(NodeId::new(i), NodeId::new(j));
                }
            }
        }
        (graph, survivors.to_vec())
    }

    /// Renders the current execution state as Graphviz DOT: the initial
    /// knowledge graph in gray, the `next`-pointer forest dashed in blue,
    /// node labels showing `id/status/phase` and leaders highlighted.
    pub fn to_dot(&self) -> String {
        let pointer_edges: Vec<(NodeId, NodeId)> = self
            .runner
            .ids()
            .filter_map(|v| {
                let next = self.runner.node(v).next_pointer();
                (next != v).then_some((v, next))
            })
            .collect();
        ard_graph::dot::to_dot_annotated(
            &self.graph,
            "discovery",
            |v| {
                let node = self.runner.node(v);
                let label = format!("{v}\\n{}/p{}", node.status(), node.phase());
                let color = if node.is_leader() {
                    "gold"
                } else {
                    "lightgray"
                };
                (label, color)
            },
            &pointer_edges,
        )
    }

    /// The union of all nodes' observed state transitions (for the Figure 1
    /// coverage experiment).
    pub fn observed_transitions(&self) -> std::collections::BTreeSet<Transition> {
        self.runner
            .nodes()
            .flat_map(|n| n.transitions().iter().copied())
            .collect()
    }
}

impl std::fmt::Debug for Discovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Discovery")
            .field("variant", &self.variant)
            .field("nodes", &self.runner.len())
            .field("leaders", &self.leaders().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ard_graph::gen;
    use ard_netsim::{FifoScheduler, LifoScheduler, RandomScheduler};

    #[test]
    fn single_node_component() {
        let graph = KnowledgeGraph::new(1);
        for variant in [Variant::Oblivious, Variant::Bounded, Variant::AdHoc] {
            let mut d = Discovery::new(&graph, variant);
            let outcome = d.run_all(&mut FifoScheduler::new()).unwrap();
            assert_eq!(outcome.leaders, vec![NodeId::new(0)]);
            d.check_requirements(&graph).unwrap();
        }
    }

    #[test]
    fn two_nodes_one_edge() {
        let graph = KnowledgeGraph::from_edges(2, [(0, 1)]);
        let mut d = Discovery::new(&graph, Variant::Oblivious);
        let outcome = d.run_all(&mut FifoScheduler::new()).unwrap();
        assert_eq!(outcome.leaders.len(), 1);
        d.check_requirements(&graph).unwrap();
    }

    #[test]
    fn path_all_variants_all_schedulers() {
        let graph = gen::path(9);
        for variant in [Variant::Oblivious, Variant::Bounded, Variant::AdHoc] {
            for seed in 0..5u64 {
                let mut d = Discovery::new(&graph, variant);
                let mut sched = RandomScheduler::seeded(seed);
                d.run_all(&mut sched).unwrap();
                d.check_requirements(&graph)
                    .unwrap_or_else(|e| panic!("{variant} seed {seed}: {e}"));
            }
            let mut d = Discovery::new(&graph, variant);
            d.run_all(&mut LifoScheduler::new()).unwrap();
            d.check_requirements(&graph).unwrap();
        }
    }

    #[test]
    fn multi_component_gets_one_leader_each() {
        let graph = gen::random_multi_component(3, 7, 10, 5);
        let mut d = Discovery::new(&graph, Variant::Oblivious);
        let outcome = d.run_all(&mut RandomScheduler::seeded(3)).unwrap();
        assert_eq!(outcome.leaders.len(), 3);
        d.check_requirements(&graph).unwrap();
    }

    #[test]
    fn bounded_terminates_everywhere() {
        let graph = gen::random_weakly_connected(20, 40, 2);
        let mut d = Discovery::new(&graph, Variant::Bounded);
        d.run_all(&mut RandomScheduler::seeded(11)).unwrap();
        d.check_requirements(&graph).unwrap();
        assert!(d.runner().nodes().all(|n| n.is_terminated()));
    }

    #[test]
    fn adhoc_probe_returns_full_snapshot() {
        let graph = gen::random_weakly_connected(15, 20, 4);
        let mut d = Discovery::new(&graph, Variant::AdHoc);
        let mut sched = RandomScheduler::seeded(9);
        d.run_all(&mut sched).unwrap();
        for v in 0..15 {
            let snap = d.probe_blocking(NodeId::new(v), &mut sched).unwrap();
            assert_eq!(snap.len(), 15, "probe from n{v} saw {} ids", snap.len());
        }
    }

    #[test]
    fn leader_of_resolves_via_pointers() {
        let graph = gen::ring(6);
        let mut d = Discovery::new(&graph, Variant::AdHoc);
        d.run_all(&mut FifoScheduler::new()).unwrap();
        let leader = d.leaders()[0];
        for v in d.runner().ids().collect::<Vec<_>>() {
            assert_eq!(d.leader_of(v), leader);
        }
    }

    #[test]
    fn recorded_run_replays_to_identical_outcome() {
        let graph = gen::random_weakly_connected(12, 20, 6);
        let mut d = Discovery::new(&graph, Variant::AdHoc);
        let (result, schedule) = d.run_recorded(RandomScheduler::seeded(5));
        let recorded = result.unwrap();
        assert_eq!(schedule.meta("nodes"), Some("12"));
        assert_eq!(schedule.meta("variant"), Some("ad-hoc"));
        assert_eq!(schedule.len() as u64, recorded.steps);

        let mut fresh = Discovery::new(&graph, Variant::AdHoc);
        let replayed = fresh.run_replay(&schedule).unwrap();
        assert_eq!(replayed.leaders, recorded.leaders);
        assert_eq!(replayed.leader_of, recorded.leader_of);
        assert_eq!(replayed.steps, recorded.steps);
        assert_eq!(
            format!("{}", replayed.metrics),
            format!("{}", recorded.metrics)
        );
        fresh.check_requirements(&graph).unwrap();
    }

    #[test]
    #[should_panic(expected = "replay divergence")]
    fn replaying_against_a_different_network_diverges() {
        let graph = gen::path(6);
        let mut d = Discovery::new(&graph, Variant::Oblivious);
        let (result, schedule) = d.run_recorded(RandomScheduler::seeded(1));
        result.unwrap();
        // A different topology enables different choices: strict replay
        // must detect the mismatch rather than execute nonsense.
        let other = gen::star_in(6);
        let mut fresh = Discovery::new(&other, Variant::Oblivious);
        let _ = fresh.run_replay(&schedule);
    }

    #[test]
    fn outcome_metrics_accumulate() {
        let graph = gen::star_in(5);
        let mut d = Discovery::new(&graph, Variant::Oblivious);
        let outcome = d.run_all(&mut FifoScheduler::new()).unwrap();
        assert!(outcome.metrics.total_messages() > 0);
        assert!(outcome.steps > 0);
    }
}
