//! Edge-case coverage for the public `ard-core` API: degenerate inputs,
//! state-specific commands, and ablation/variant interactions.

use ard_core::{Config, Discovery, ProbeStatus, Status, Variant};
use ard_graph::{gen, KnowledgeGraph};
use ard_netsim::{FifoScheduler, NodeId, RandomScheduler};

#[test]
fn empty_network_is_trivially_done() {
    let graph = KnowledgeGraph::new(0);
    let mut d = Discovery::new(&graph, Variant::Oblivious);
    let outcome = d.run_all(&mut FifoScheduler::new()).unwrap();
    assert!(outcome.leaders.is_empty());
    d.check_requirements(&graph).unwrap();
}

#[test]
fn probe_on_singleton_is_self_snapshot() {
    let graph = KnowledgeGraph::new(1);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    let mut sched = FifoScheduler::new();
    d.run_all(&mut sched).unwrap();
    match d.probe(NodeId::new(0), &mut sched) {
        ProbeStatus::Immediate(ids) => assert_eq!(ids, vec![NodeId::new(0)]),
        ProbeStatus::InFlight => panic!("leader probes are immediate"),
    }
}

#[test]
#[should_panic(expected = "probes exist only in the Ad-hoc variant")]
fn probing_oblivious_is_rejected() {
    let graph = gen::path(3);
    let mut d = Discovery::new(&graph, Variant::Oblivious);
    let mut sched = FifoScheduler::new();
    d.run_all(&mut sched).unwrap();
    d.probe(NodeId::new(0), &mut sched);
}

#[test]
#[should_panic(expected = "dynamic additions invalidate known sizes")]
fn dynamic_additions_rejected_for_bounded() {
    let graph = gen::path(3);
    let mut d = Discovery::new(&graph, Variant::Bounded);
    let mut sched = FifoScheduler::new();
    d.run_all(&mut sched).unwrap();
    d.add_node(vec![NodeId::new(0)], &mut sched);
}

#[test]
fn dynamic_edge_to_every_status_is_safe() {
    // Add a dynamic edge targeting nodes in various states mid-run and
    // verify the final requirements still hold.
    let graph = gen::random_weakly_connected(16, 32, 2);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    let mut sched = RandomScheduler::seeded(3);
    d.enqueue_wake_all(&mut sched);
    for step in 0..200 {
        if !d.runner_mut().step(&mut sched) {
            break;
        }
        if step % 40 == 10 {
            let u = NodeId::new((step / 40) % 16);
            let v = NodeId::new((step / 40 + 7) % 16);
            if u != v {
                d.add_link(u, v, &mut sched);
            }
        }
    }
    d.run(&mut sched).unwrap();
    let final_graph = d.graph().clone();
    d.check_requirements(&final_graph).unwrap();
}

#[test]
fn both_ablations_together_still_correct() {
    let config = Config {
        path_compression: false,
        balanced_queries: false,
        ..Config::default()
    };
    for variant in [Variant::Oblivious, Variant::Bounded, Variant::AdHoc] {
        let graph = gen::random_weakly_connected(24, 48, 4);
        let mut d = Discovery::with_config(&graph, variant, config);
        d.run_all(&mut RandomScheduler::seeded(5)).unwrap();
        d.check_requirements(&graph).unwrap();
    }
}

#[test]
fn survivor_graph_of_everyone_is_the_learned_graph() {
    let graph = gen::path(6);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    d.run_all(&mut FifoScheduler::new()).unwrap();
    let all: Vec<NodeId> = (0..6).map(NodeId::new).collect();
    let (survivor, mapping) = d.survivor_graph(&all);
    assert_eq!(mapping, all);
    assert_eq!(survivor.len(), 6);
    // Everyone knows at least their leader (next pointer), so the survivor
    // graph is at least as connected as the original.
    assert!(ard_graph::components::is_weakly_connected(&survivor));
}

#[test]
#[should_panic(expected = "duplicate survivor")]
fn survivor_graph_rejects_duplicates() {
    let graph = gen::path(3);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    d.run_all(&mut FifoScheduler::new()).unwrap();
    d.survivor_graph(&[NodeId::new(0), NodeId::new(0)]);
}

#[test]
fn to_dot_reflects_statuses() {
    let graph = gen::path(4);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    d.run_all(&mut FifoScheduler::new()).unwrap();
    let dot = d.to_dot();
    assert!(dot.contains("digraph discovery"));
    assert!(dot.contains("fillcolor=gold"), "leader highlighted");
    assert!(dot.contains("inactive"), "statuses in labels");
    // All three pointer edges to the leader are drawn dashed.
    assert_eq!(dot.matches("style=dashed").count(), 3);
}

#[test]
fn outcome_leader_of_is_total() {
    let graph = gen::random_multi_component(2, 6, 4, 6);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    let outcome = d.run_all(&mut RandomScheduler::seeded(7)).unwrap();
    assert_eq!(outcome.leader_of.len(), 12);
    for (v, leader) in outcome.leader_of.iter().enumerate() {
        assert_eq!(d.leader_of(NodeId::new(v)), *leader);
        assert!(outcome.leaders.contains(leader));
    }
}

#[test]
fn default_step_budget_is_generous() {
    // The budget must comfortably exceed what real executions need, so
    // hitting it is a genuine livelock signal.
    let graph = gen::complete(32);
    let mut d = Discovery::new(&graph, Variant::Oblivious);
    let budget = d.default_step_budget();
    let outcome = d.run_all(&mut RandomScheduler::seeded(8)).unwrap();
    assert!(outcome.steps * 4 < budget, "{} vs {budget}", outcome.steps);
}

#[test]
fn transitions_accessor_matches_statuses() {
    let graph = gen::path(5);
    let mut d = Discovery::new(&graph, Variant::Oblivious);
    d.run_all(&mut FifoScheduler::new()).unwrap();
    for node in d.runner().nodes() {
        // Replaying a node's transition log from Asleep ends at its status.
        let mut state = Status::Asleep;
        for t in node.transitions() {
            assert_eq!(t.from, state, "log is contiguous");
            state = t.to;
        }
        assert_eq!(state, node.status());
    }
}
