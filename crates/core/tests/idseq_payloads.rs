//! Run-length payload equivalence: `IdSeq`-backed messages vs the
//! `Vec<NodeId>` oracle they replaced.
//!
//! The scale-collapse fix moved the O(component)-sized payloads (the
//! `Info` handover's four sets, the `QueryReply`/`ProbeReply` id lists)
//! from `Vec<NodeId>` onto the run-length-coded [`IdSeq`]. That swap is
//! only sound if every `Envelope` observable the simulator pins —
//! visitor order, carried-id counts, metered bits, state digests, and the
//! Lemma 5.9/5.10 budget totals built from them — is *byte-identical* to
//! what the `Vec` representation produced. These properties drive both
//! representations through the same payloads across the three payload
//! shapes that matter:
//!
//! - **dense**: small scattered lists, below `IdSeq`'s run-coding
//!   threshold (the common query-reply case);
//! - **run-heavy**: ascending interval fills (the endgame handover case
//!   run coding exists for);
//! - **adversarially fragmented**: stride-2 and descending ids, where no
//!   two neighbors coalesce and run coding degrades to one run per id.

use proptest::prelude::*;

use ard_core::{InfoPayload, Message};
use ard_netsim::{Envelope, IdSeq, Metrics, NodeId, StateDigest, KIND_TAG_BITS};

const UNIVERSE: usize = 4096;

/// Dense shape: short scattered id lists (stay one-id-per-word).
fn dense_ids() -> impl Strategy<Value = Vec<NodeId>> {
    prop::collection::vec((0..UNIVERSE).prop_map(NodeId::new), 0..24)
}

/// Run-heavy shape: a few ascending interval fills, crossing the
/// run-coding threshold with long coalescible runs.
fn run_heavy_ids() -> impl Strategy<Value = Vec<NodeId>> {
    prop::collection::vec((0..UNIVERSE - 256, 1..128usize), 1..6).prop_map(|intervals| {
        intervals
            .into_iter()
            .flat_map(|(start, len)| (start..start + len).map(NodeId::new))
            .collect()
    })
}

/// Adversarial shape: strided or descending ids — nothing coalesces, so
/// the run coder stores one singleton run per id.
fn fragmented_ids() -> impl Strategy<Value = Vec<NodeId>> {
    prop_oneof![
        (0..64usize, 2..5usize, 1..80usize)
            .prop_map(|(base, stride, n)| (0..n).map(|i| NodeId::new(base + i * stride)).collect()),
        (0..200usize).prop_map(|n| (0..n).rev().map(NodeId::new).collect()),
    ]
}

/// Any of the three payload shapes.
fn payload_ids() -> impl Strategy<Value = Vec<NodeId>> {
    prop_oneof![dense_ids(), run_heavy_ids(), fragmented_ids()]
}

/// One message carrying `IdSeq` payloads plus the `Vec<NodeId>` oracle of
/// the ids it carries, in payload order, plus the oracle's scalar digest
/// words (the non-id fields `Message::digest` mixes, in mix order).
fn arb_payload_message() -> impl Strategy<Value = (Message, Vec<NodeId>, Vec<u64>)> {
    prop_oneof![
        (payload_ids(), any::<bool>()).prop_map(|(ids, exhausted)| (
            Message::QueryReply {
                ids: ids.iter().copied().collect(),
                exhausted,
            },
            ids,
            vec![u64::from(exhausted)],
        )),
        (any::<u32>(), payload_ids(), payload_ids(), dense_ids(), payload_ids()).prop_map(
            |(phase, more, done, unaware, unexplored)| {
                let oracle: Vec<NodeId> = more
                    .iter()
                    .chain(&done)
                    .chain(&unaware)
                    .chain(&unexplored)
                    .copied()
                    .collect();
                let scalars = vec![
                    u64::from(phase),
                    more.len() as u64,
                    done.len() as u64,
                    unaware.len() as u64,
                ];
                (
                    Message::Info(Box::new(InfoPayload {
                        phase,
                        more: more.into_iter().collect(),
                        done: done.into_iter().collect(),
                        unaware: unaware.into_iter().collect(),
                        unexplored: unexplored.into_iter().collect(),
                    })),
                    oracle,
                    scalars,
                )
            }
        ),
        (
            (0..UNIVERSE).prop_map(NodeId::new),
            any::<u32>(),
            (0..UNIVERSE).prop_map(NodeId::new),
            payload_ids()
        )
            .prop_map(|(leader, leader_phase, dest, ids)| {
                let mut oracle = vec![leader, dest];
                oracle.extend(ids.iter().copied());
                (
                    Message::ProbeReply {
                        leader,
                        leader_phase,
                        dest,
                        ids: ids.into_iter().collect(),
                    },
                    oracle,
                    vec![u64::from(leader_phase)],
                )
            }),
    ]
}

/// Replays `Message::digest`'s specification over the oracle `Vec`: kind
/// bytes, id count, the ids in payload order, then the scalar fields.
/// This is exactly what the digest computed when the payloads were
/// `Vec<NodeId>`, so equality pins digest stability across the swap.
fn oracle_digest(kind: &str, oracle: &[NodeId], scalars: &[u64]) -> u64 {
    let mut d = StateDigest::new();
    d.mix_bytes(kind.as_bytes());
    d.mix(oracle.len() as u64);
    for id in oracle {
        d.mix(id.index() as u64);
    }
    for &w in scalars {
        d.mix(w);
    }
    d.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `IdSeq` reproduces the oracle sequence under every accessor the
    /// payload sites use, duplicates and order included, and the run
    /// decomposition concatenates back to the same sequence.
    #[test]
    fn idseq_matches_vec_oracle(oracle in payload_ids()) {
        let seq: IdSeq = oracle.iter().copied().collect();
        prop_assert_eq!(seq.len(), oracle.len());
        prop_assert_eq!(seq.is_empty(), oracle.is_empty());
        prop_assert_eq!(seq.to_vec(), oracle.clone());
        let mut visited = Vec::new();
        seq.for_each(&mut |id| visited.push(id));
        prop_assert_eq!(&visited, &oracle);
        let mut by_runs = Vec::new();
        seq.for_each_run(&mut |s, e| by_runs.extend((s..e).map(|i| NodeId::new(i as usize))));
        prop_assert_eq!(&by_runs, &oracle, "run concatenation diverged");
        for probe in [0, 1, UNIVERSE / 2, UNIVERSE - 1] {
            let id = NodeId::new(probe);
            prop_assert_eq!(seq.contains(id), oracle.contains(&id));
        }
    }

    /// The `Envelope` visitors on an `IdSeq`-backed message yield the
    /// oracle ids in payload order, and both count accessors agree.
    #[test]
    fn visitors_and_counts_match_oracle((msg, oracle, _) in arb_payload_message()) {
        let mut visited = Vec::new();
        msg.for_each_carried_id(&mut |id| visited.push(id));
        prop_assert_eq!(&visited, &oracle);
        prop_assert_eq!(msg.carried_ids(), oracle.clone());
        prop_assert_eq!(msg.carried_id_count(), oracle.len());
        let mut runs = Vec::new();
        msg.for_each_carried_run(&mut |s, e| runs.push((s, e)));
        for &(s, e) in &runs {
            prop_assert!(s < e, "runs are non-empty half-open intervals");
        }
        let by_runs: Vec<NodeId> = runs
            .iter()
            .flat_map(|&(s, e)| (s..e).map(|i| NodeId::new(i as usize)))
            .collect();
        prop_assert_eq!(&by_runs, &oracle);
    }

    /// Metered bits are exactly what the `Vec` representation charged:
    /// one `id_bits` per carried id plus the variant's aux bits plus the
    /// kind tag — independent of whether the ids run-coded.
    #[test]
    fn metered_bits_match_oracle((msg, oracle, _) in arb_payload_message(), id_bits in 1u64..40) {
        let expected = oracle.len() as u64 * id_bits + msg.aux_bits() + KIND_TAG_BITS;
        prop_assert_eq!(msg.bits(id_bits), expected);
    }

    /// `Message::digest` over `IdSeq` payloads equals the digest the
    /// `Vec<NodeId>` representation produced (replayed from the oracle),
    /// so recordings, replay corpora and explorer dedup hashes are stable
    /// across the representation swap.
    #[test]
    fn digests_match_vec_oracle((msg, oracle, scalars) in arb_payload_message()) {
        let mut d = StateDigest::new();
        msg.digest(&mut d);
        prop_assert_eq!(d.finish(), oracle_digest(msg.kind(), &oracle, &scalars));
    }

    /// Budget totals: metering a batch of `IdSeq`-backed messages into
    /// `Metrics` accumulates exactly the per-kind message and bit totals
    /// the Lemma 5.9/5.10 checks consume, computed from the oracle counts.
    #[test]
    fn budget_totals_match_oracle(
        batch in prop::collection::vec(arb_payload_message(), 1..12),
        id_bits in 8u64..33,
    ) {
        let mut metrics = Metrics::new(id_bits);
        let mut expected_msgs = 0u64;
        let mut expected_bits = 0u64;
        for (msg, oracle, _) in &batch {
            metrics.record(msg.kind(), msg.carried_id_count(), msg.aux_bits());
            expected_msgs += 1;
            expected_bits += oracle.len() as u64 * id_bits + msg.aux_bits() + KIND_TAG_BITS;
        }
        prop_assert_eq!(metrics.total_messages(), expected_msgs);
        prop_assert_eq!(metrics.total_bits(), expected_bits);
        // The aux-bit constants the budget checks use are the very sums
        // the messages metered (single source of truth).
        for (msg, _, _) in &batch {
            match msg {
                Message::QueryReply { .. } => {
                    prop_assert_eq!(msg.aux_bits(), Message::QUERY_REPLY_AUX_BITS);
                }
                Message::Info(_) => prop_assert_eq!(msg.aux_bits(), Message::INFO_AUX_BITS),
                _ => {}
            }
        }
    }
}
