//! Targeted tests of the protocol's trickiest interleavings — the paths the
//! paper's §4.2–4.4 prose spends the most words on.

use ard_core::{Discovery, Status, Transition, Variant};
use ard_graph::{gen, KnowledgeGraph};
use ard_netsim::{FifoScheduler, LifoScheduler, NodeId, RandomScheduler};

/// Two nodes that know each other search each other simultaneously: exactly
/// one surrenders (the lexicographically smaller), one merge happens.
#[test]
fn symmetric_simultaneous_searches() {
    let graph = KnowledgeGraph::from_edges(2, [(0, 1), (1, 0)]);
    let mut d = Discovery::new(&graph, Variant::Oblivious);
    let mut sched = FifoScheduler::new();
    d.run_all(&mut sched).unwrap();
    d.check_requirements(&graph).unwrap();
    // The higher id always wins a same-phase duel.
    assert_eq!(d.leaders(), vec![NodeId::new(1)]);
    let m = d.runner().metrics();
    assert_eq!(m.kind("info").messages, 1);
    assert_eq!(m.kind("merge accept").messages, 1);
}

/// A search routed through a drained inactive node re-opens it: the `new`
/// flag moves it from `done` back to `more`, the leader re-queries it and
/// discovers the searcher — the §4.2 reverse-edge mechanism end to end.
#[test]
fn reverse_edge_reopens_done_nodes() {
    // 0 knows 1; 2 knows 1. Nothing points at 2: it is only discoverable
    // through the reverse-edge bookkeeping.
    let graph = KnowledgeGraph::from_edges(3, [(0, 1), (2, 1)]);
    let mut d = Discovery::new(&graph, Variant::Oblivious);
    let mut sched = FifoScheduler::new();

    // Stage 1: wake only {0}; it conquers 1 and fully drains it.
    d.wake_now(NodeId::new(0), &mut sched);
    d.run(&mut sched).unwrap();
    let leader01 = d.leader_of(NodeId::new(0));
    assert_eq!(d.runner().node(leader01).done().len(), 2);

    // Stage 2: wake 2; its search passes through the drained node 1.
    d.wake_now(NodeId::new(2), &mut sched);
    d.run(&mut sched).unwrap();
    d.check_requirements(&graph).unwrap();
    let final_leader = d.leaders()[0];
    assert!(d
        .runner()
        .node(final_leader)
        .done()
        .contains(&NodeId::new(2)));

    // The idle waiting ex-leader must have gone back to Explore to re-query
    // (the [D2] Wait → Explore edge) unless it was itself conquered first.
    let re_explored = d.runner().nodes().any(|n| {
        n.transitions()
            .contains(&Transition::new(Status::Wait, Status::Explore))
    });
    let leader_changed = final_leader != leader01;
    assert!(
        re_explored || leader_changed,
        "someone must have processed the new-edge notification"
    );
}

/// Merge failures (the conquered → passive edge) occur and still converge:
/// scan seeds for executions that exercise the path and verify each.
#[test]
fn merge_fail_chains_converge() {
    let mut exercised = 0;
    for seed in 0..120 {
        let graph = gen::random_weakly_connected(12, 24, seed % 7);
        let mut d = Discovery::new(&graph, Variant::Oblivious);
        d.run_all(&mut RandomScheduler::seeded(seed)).unwrap();
        d.check_requirements(&graph).unwrap();
        if d.runner().metrics().kind("merge fail").messages > 0 {
            exercised += 1;
            // The node that received the merge fail went passive and was
            // later conquered: it must appear in the transition logs.
            let reconquered = d.runner().nodes().any(|n| {
                n.transitions()
                    .contains(&Transition::new(Status::Conquered, Status::Passive))
            });
            assert!(
                reconquered,
                "seed {seed}: merge fail without conquered→passive"
            );
        }
    }
    assert!(
        exercised >= 5,
        "only {exercised} seeds exercised merge failures"
    );
}

/// A passive ex-leader is eventually found and conquered — even when it
/// went passive holding knowledge nobody else had.
#[test]
fn passive_hoarders_are_reconquered() {
    let mut exercised = 0;
    for seed in 0..120 {
        let graph = gen::random_weakly_connected(10, 15, seed % 5);
        let mut d = Discovery::new(&graph, Variant::AdHoc);
        d.run_all(&mut RandomScheduler::seeded(seed ^ 0xfeed))
            .unwrap();
        d.check_requirements(&graph).unwrap();
        let had_passive = d.runner().nodes().any(|n| {
            n.transitions()
                .contains(&Transition::new(Status::Passive, Status::Conquered))
        });
        if had_passive {
            exercised += 1;
        }
    }
    assert!(
        exercised >= 20,
        "only {exercised} seeds exercised passive reconquest"
    );
}

/// LIFO scheduling maximally reorders unrelated events; the conquest chain
/// must still produce strictly increasing phases at every inactive node.
#[test]
fn conquer_phases_increase_under_lifo() {
    // Oblivious on a complete graph: maximum conquest churn.
    let graph = gen::complete(16);
    let mut d = Discovery::new(&graph, Variant::Oblivious);
    d.run_all(&mut LifoScheduler::new()).unwrap();
    d.check_requirements(&graph).unwrap();
    // (The strict-increase assertion lives in the node as a debug_assert;
    // reaching quiescence without tripping it is the test.)
    let leader = d.leaders()[0];
    assert!(d.runner().node(leader).phase() >= 2);
}

/// Deterministic schedulers give reproducible executions of the full
/// algorithm (metrics identical across runs).
#[test]
fn discovery_is_deterministic_per_seed() {
    let graph = gen::random_weakly_connected(30, 60, 3);
    let run = |seed: u64| {
        let mut d = Discovery::new(&graph, Variant::Oblivious);
        d.run_all(&mut RandomScheduler::seeded(seed)).unwrap();
        (
            d.leaders(),
            d.runner().metrics().total_messages(),
            d.runner().metrics().total_bits(),
        )
    };
    assert_eq!(run(9), run(9));
    // And different schedules may elect different leaders but always one.
    assert_eq!(run(10).0.len(), 1);
}

/// The two-component duel: two cliques joined by a single directed edge.
/// The bridge is only traversable via the reverse-edge mechanism, whatever
/// the schedule.
#[test]
fn one_way_bridge_between_cliques() {
    let a = gen::complete(6);
    let b = gen::complete(6);
    let mut graph = a.disjoint_union(&b);
    graph.add_edge(NodeId::new(2), NodeId::new(8)); // one-way bridge
    for seed in 0..20 {
        let mut d = Discovery::new(&graph, Variant::Oblivious);
        d.run_all(&mut RandomScheduler::seeded(seed)).unwrap();
        d.check_requirements(&graph).unwrap();
        assert_eq!(d.leaders().len(), 1, "seed {seed}: bridge not crossed");
    }
}

/// Search targets that are themselves leaders (not routed through relays):
/// a two-leader duel where the target is hit directly.
#[test]
fn direct_leader_to_leader_search() {
    // 0 knows 1 and nothing else; wake both: 0 searches 1 while 1 is a
    // leader (no relay in between).
    let graph = KnowledgeGraph::from_edges(2, [(0, 1)]);
    for (name, mut sched) in [
        (
            "fifo",
            Box::new(FifoScheduler::new()) as Box<dyn ard_netsim::Scheduler>,
        ),
        (
            "lifo",
            Box::new(LifoScheduler::new()) as Box<dyn ard_netsim::Scheduler>,
        ),
    ] {
        let mut d = Discovery::new(&graph, Variant::Oblivious);
        d.run_all(sched.as_mut()).unwrap();
        d.check_requirements(&graph)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(d.leaders(), vec![NodeId::new(1)], "{name}");
    }
}

/// Regression test for the [D6] stale-release race: an in-flight release
/// delivered *after* a newer conquer wave must not clobber the relay's
/// pointer. Seed 89 on this topology reproduced the race before the
/// leader-phase staleness guard existed (see EXPERIMENTS.md findings).
#[test]
fn stale_release_does_not_clobber_final_conquer() {
    let graph = gen::random_weakly_connected(12, 24, 89 % 7);
    let mut d = Discovery::new(&graph, Variant::Oblivious);
    d.run_all(&mut RandomScheduler::seeded(89)).unwrap();
    d.check_requirements(&graph).unwrap();
    let leader = d.leaders()[0];
    for node in d.runner().nodes() {
        if node.id() != leader {
            assert_eq!(
                node.next_pointer(),
                leader,
                "{} kept a stale pointer past the final conquer wave",
                node.id()
            );
        }
    }
}

/// Probes issued between staged wake-ups observe monotonically growing
/// snapshots.
#[test]
fn probe_snapshots_grow_monotonically() {
    let graph = gen::path(8);
    let mut d = Discovery::new(&graph, Variant::AdHoc);
    let mut sched = FifoScheduler::new();
    let mut last = 0;
    for v in (0..8).rev() {
        d.wake_now(NodeId::new(v), &mut sched);
        d.run(&mut sched).unwrap();
        let snap = d.probe_blocking(NodeId::new(7), &mut sched).unwrap();
        assert!(
            snap.len() >= last,
            "snapshot shrank: {} < {last}",
            snap.len()
        );
        last = snap.len();
    }
    assert_eq!(last, 8);
}
