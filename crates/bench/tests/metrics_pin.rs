//! Regression pins for the metering refactor: metering moved to *send* time
//! (via the non-allocating [`Envelope::carried_id_count`]) and knowledge
//! growth to *delivery* time (via `for_each_carried_id`), with no id `Vec`
//! materialised on either side. Every total below was produced by the
//! pre-refactor engine (which collected `carried_ids()` vectors on both
//! sides) on the same fixtures — byte-for-byte identical accounting is the
//! contract.

use ard_core::{Discovery, Variant};
use ard_graph::gen;
use ard_netsim::{FifoScheduler, Metrics, RandomScheduler, Scheduler};

fn run(variant: Variant, sched: &mut dyn Scheduler) -> Metrics {
    let graph = gen::random_weakly_connected(48, 96, 5);
    let mut d = Discovery::new(&graph, variant);
    d.run_all(sched).expect("livelock");
    d.check_requirements(&graph).expect("requirements violated");
    d.runner().metrics().clone()
}

struct Pin {
    variant: Variant,
    random: bool,
    messages: u64,
    bits: u64,
    deliveries: u64,
    depth: u64,
    /// `(kind, messages, bits)` for every kind the run produces.
    kinds: &'static [(&'static str, u64, u64)],
}

#[test]
fn metrics_totals_match_pre_refactor_engine() {
    let pins = [
        Pin {
            variant: Variant::Oblivious,
            random: false,
            messages: 593,
            bits: 19127,
            deliveries: 593,
            depth: 234,
            kinds: &[
                ("conquer", 75, 900),
                ("info", 47, 7600),
                ("merge accept", 47, 188),
                ("merge fail", 5, 20),
                ("more/done", 75, 375),
                ("query", 38, 1368),
                ("query reply", 38, 1976),
                ("release", 134, 3350),
                ("search", 134, 3350),
            ],
        },
        Pin {
            variant: Variant::Oblivious,
            random: true,
            messages: 588,
            bits: 18971,
            deliveries: 588,
            depth: 240,
            kinds: &[
                ("conquer", 73, 876),
                ("info", 47, 7534),
                ("merge accept", 47, 188),
                ("merge fail", 4, 16),
                ("more/done", 73, 365),
                ("query", 36, 1296),
                ("query reply", 36, 1896),
                ("release", 136, 3400),
                ("search", 136, 3400),
            ],
        },
        Pin {
            variant: Variant::Bounded,
            random: false,
            messages: 543,
            bits: 18819,
            deliveries: 543,
            depth: 188,
            kinds: &[
                ("conquer", 47, 564),
                ("info", 47, 7612),
                ("merge accept", 47, 188),
                ("merge fail", 5, 20),
                ("more/done", 47, 235),
                ("query", 38, 1368),
                ("query reply", 38, 1982),
                ("release", 137, 3425),
                ("search", 137, 3425),
            ],
        },
        Pin {
            variant: Variant::Bounded,
            random: true,
            messages: 548,
            bits: 18942,
            deliveries: 548,
            depth: 177,
            kinds: &[
                ("conquer", 47, 564),
                ("info", 47, 7630),
                ("merge accept", 47, 188),
                ("merge fail", 6, 24),
                ("more/done", 47, 235),
                ("query", 37, 1332),
                ("query reply", 37, 1969),
                ("release", 140, 3500),
                ("search", 140, 3500),
            ],
        },
    ];
    for pin in pins {
        let mut sched: Box<dyn Scheduler> = if pin.random {
            Box::new(RandomScheduler::seeded(42))
        } else {
            Box::new(FifoScheduler::new())
        };
        let m = run(pin.variant, sched.as_mut());
        let ctx = format!(
            "{:?}/{}",
            pin.variant,
            if pin.random { "random" } else { "fifo" }
        );
        assert_eq!(m.total_messages(), pin.messages, "{ctx}: messages");
        assert_eq!(m.total_bits(), pin.bits, "{ctx}: bits");
        assert_eq!(m.deliveries(), pin.deliveries, "{ctx}: deliveries");
        assert_eq!(m.wakeups(), 48, "{ctx}: wakeups");
        assert_eq!(m.max_causal_depth(), pin.depth, "{ctx}: causal depth");
        let kinds: Vec<(&str, u64, u64)> = m
            .kinds()
            .map(|(k, c)| (k, c.messages, c.bits))
            .collect();
        assert_eq!(kinds, pin.kinds, "{ctx}: per-kind breakdown");
    }
}
