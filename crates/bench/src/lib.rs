//! Experiment implementations behind the `tables` binary.
//!
//! The paper is a theory paper: its evaluation artifacts are Theorems 1–8,
//! Lemmas 5.5–5.10 and the Figure 1 state diagram. Each experiment here
//! regenerates one of them as an empirical table (see `DESIGN.md` §5 for
//! the full index, and `EXPERIMENTS.md` for recorded paper-vs-measured
//! results). Run them all with:
//!
//! ```text
//! cargo run --release -p ard-bench --bin tables
//! ```
//!
//! or a single experiment with `-- --exp e5`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod table;

pub use table::Table;

/// Returns every experiment's table, in index order. `quick` shrinks the
/// sweeps (for tests and debug builds).
pub fn all_tables(quick: bool) -> Vec<Table> {
    vec![
        experiments::e1_generic_messages(quick),
        experiments::e2_bounded_messages(quick),
        experiments::e3_adhoc_messages(quick),
        experiments::e4_bit_complexity(quick),
        experiments::e5_tree_lower_bound(quick),
        experiments::e6_uf_reduction(quick),
        experiments::e7_message_breakdown(quick),
        experiments::e8_dynamic_additions(quick),
        experiments::e9_baseline_comparison(quick),
        experiments::e10_probe_amortization(quick),
        experiments::e11_time_complexity(quick),
        experiments::e12_overlay_pipeline(quick),
        experiments::e13_phase_distribution(quick),
        experiments::e14_schedule_sensitivity(quick),
        experiments::f1_transition_coverage(quick),
        experiments::a1_path_compression(quick),
        experiments::a2_balanced_queries(quick),
        experiments::a3_union_find_variants(quick),
    ]
}

/// Looks up one experiment by id (e.g. `"e5"`, `"f1"`, `"a2"`).
pub fn table_by_id(id: &str, quick: bool) -> Option<Table> {
    all_tables(quick)
        .into_iter()
        .find(|t| t.id.eq_ignore_ascii_case(id))
}
