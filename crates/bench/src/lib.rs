//! Experiment implementations behind the `tables` binary.
//!
//! The paper is a theory paper: its evaluation artifacts are Theorems 1–8,
//! Lemmas 5.5–5.10 and the Figure 1 state diagram. Each experiment here
//! regenerates one of them as an empirical table (see `DESIGN.md` §5 for
//! the full index, and `EXPERIMENTS.md` for recorded paper-vs-measured
//! results). Run them all with:
//!
//! ```text
//! cargo run --release -p ard-bench --bin tables
//! ```
//!
//! or a single experiment with `-- --exp e5`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod explorebench;
pub mod parallel;
mod table;
pub mod throughput;

pub use table::Table;

/// Returns every experiment's table, in index order. `quick` shrinks the
/// sweeps (for tests and debug builds).
///
/// Tables are built on the worker pool configured via
/// [`parallel::set_jobs`] (sequentially by default); the returned order and
/// every table's contents are identical whatever the job count.
pub fn all_tables(quick: bool) -> Vec<Table> {
    let builders: Vec<fn(bool) -> Table> = vec![
        experiments::e1_generic_messages,
        experiments::e2_bounded_messages,
        experiments::e3_adhoc_messages,
        experiments::e4_bit_complexity,
        experiments::e5_tree_lower_bound,
        experiments::e6_uf_reduction,
        experiments::e7_message_breakdown,
        experiments::e8_dynamic_additions,
        experiments::e9_baseline_comparison,
        experiments::e10_probe_amortization,
        experiments::e11_time_complexity,
        experiments::e12_overlay_pipeline,
        experiments::e13_phase_distribution,
        experiments::e14_schedule_sensitivity,
        experiments::e15_scale,
        experiments::f1_transition_coverage,
        experiments::a1_path_compression,
        experiments::a2_balanced_queries,
        experiments::a3_union_find_variants,
    ];
    parallel::map_configured(builders, |build| build(quick))
}

/// Looks up one experiment by id (e.g. `"e5"`, `"f1"`, `"a2"`).
pub fn table_by_id(id: &str, quick: bool) -> Option<Table> {
    all_tables(quick)
        .into_iter()
        .find(|t| t.id.eq_ignore_ascii_case(id))
}
