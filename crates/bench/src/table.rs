use std::fmt;

/// A rendered experiment result: a titled, aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id (`e1`…`e10`, `f1`, `a1`…`a3`).
    pub id: &'static str,
    /// One-line description including the paper artifact it regenerates.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (stringified cells).
    pub rows: Vec<Vec<String>>,
    /// Free-form conclusion lines printed under the table (e.g. the
    /// paper-vs-measured verdict).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &'static str, title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            id,
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Column-aligned plain-text rendering.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("[{}] {}\n", self.id.to_uppercase(), self.title));
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::from("  ");
            for (cell, w) in cells.iter().zip(widths) {
                s.push_str(&format!("{cell:>w$}  ", w = *w));
            }
            s.trim_end().to_string() + "\n"
        };
        out.push_str(&line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len() + 2;
        out.push_str(&format!("  {}\n", "-".repeat(total.saturating_sub(2))));
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        for note in &self.notes {
            out.push_str(&format!("  * {note}\n"));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("e1", "demo", &["n", "messages"]);
        t.push_row(vec!["8".into(), "123".into()]);
        t.push_row(vec!["4096".into(), "7".into()]);
        t.push_note("all good");
        let s = t.render();
        assert!(s.contains("[E1] demo"));
        assert!(s.contains("* all good"));
        // The 'n' column is right-aligned to width 4.
        assert!(s.contains("   8"));
        assert!(s.contains("4096"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("e1", "demo", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }
}
