//! A `std::thread::scope`-based parallel trial runner.
//!
//! Experiment sweeps repeat independent trials (each trial owns its topology
//! seed and its seeded [`RandomScheduler`](ard_netsim::RandomScheduler)), so
//! they parallelize trivially: workers pull trial indices from a shared
//! counter and write results into per-index slots, and the caller reads the
//! slots back **in input order**. Because every trial is deterministic in its
//! inputs and the merge order is the input order, the output is byte-for-byte
//! identical whatever the job count — `--jobs N` only changes wall-clock
//! time, never results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The process-wide worker count used by [`map_configured`] (set from the
/// `--jobs` CLI flag). Defaults to 1 (fully sequential).
static JOBS: AtomicUsize = AtomicUsize::new(1);

/// Sets the worker count used by [`map_configured`]. Values are clamped to
/// at least 1. Changing this never changes any experiment's output, only how
/// many trials run concurrently.
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::Relaxed);
}

/// The currently configured worker count.
pub fn jobs() -> usize {
    JOBS.load(Ordering::Relaxed)
}

/// Maps `f` over `items` on `jobs` scoped worker threads, returning results
/// in input order.
///
/// With `jobs <= 1` (or fewer items than workers) this degrades gracefully:
/// a single worker processes the items strictly in order, with no thread
/// spawned for the sequential case. A panic inside `f` propagates to the
/// caller when the scope joins.
///
/// # Example
///
/// ```
/// let squares = ard_bench::parallel::parallel_map(4, (0u64..100).collect(), |x| x * x);
/// assert_eq!(squares, (0u64..100).map(|x| x * x).collect::<Vec<_>>());
/// ```
pub fn parallel_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..work.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= work.len() {
                    break;
                }
                let item = work[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each work slot is claimed exactly once");
                *slots[i].lock().unwrap() = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every claimed slot is filled before the scope joins")
        })
        .collect()
}

/// [`parallel_map`] with the process-wide [`jobs`] worker count.
pub fn map_configured<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map(jobs(), items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_width() {
        let items: Vec<usize> = (0..57).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = parallel_map(jobs, items.clone(), |x| x * 3 + 1);
            assert_eq!(got, expected, "jobs = {jobs}");
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        assert_eq!(parallel_map(4, Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(parallel_map(4, vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn seeded_trials_merge_in_seed_order() {
        use ard_netsim::RandomScheduler;
        use rand::{Rng, RngCore, SeedableRng};
        // Each trial owns a seeded RNG (as sweep trials own seeded
        // RandomSchedulers); the merged sequence must match sequential.
        let trial = |seed: u64| {
            let _owns_scheduler = RandomScheduler::seeded(seed);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            (seed, rng.next_u64(), rng.gen_range(0u32..1000))
        };
        let seeds: Vec<u64> = (0..32).collect();
        let sequential: Vec<_> = seeds.iter().map(|&s| trial(s)).collect();
        assert_eq!(parallel_map(4, seeds, trial), sequential);
    }

    #[test]
    fn set_jobs_clamps_to_one() {
        let before = jobs();
        set_jobs(0);
        assert_eq!(jobs(), 1);
        set_jobs(before);
    }
}
