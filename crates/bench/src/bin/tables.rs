//! Regenerates the paper's evaluation artifacts as empirical tables.
//!
//! ```text
//! cargo run --release -p ard-bench --bin tables            # everything
//! cargo run --release -p ard-bench --bin tables -- --exp e5
//! cargo run --release -p ard-bench --bin tables -- --quick # small sweeps
//! cargo run --release -p ard-bench --bin tables -- --list
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut exp: Option<String> = None;
    let mut list = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--list" => list = true,
            "--exp" => {
                i += 1;
                match args.get(i) {
                    Some(id) => exp = Some(id.clone()),
                    None => {
                        eprintln!("--exp needs an id (e1..e10, f1, a1..a3)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: tables [--quick] [--list] [--exp <id>]");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    if list {
        for t in ard_bench::all_tables(true) {
            println!("{:4}  {}", t.id, t.title);
        }
        return ExitCode::SUCCESS;
    }

    match exp {
        Some(id) => match ard_bench::table_by_id(&id, quick) {
            Some(t) => println!("{t}"),
            None => {
                eprintln!("unknown experiment id: {id} (try --list)");
                return ExitCode::FAILURE;
            }
        },
        None => {
            for t in ard_bench::all_tables(quick) {
                println!("{t}");
            }
        }
    }
    ExitCode::SUCCESS
}
