//! Regenerates the paper's evaluation artifacts as empirical tables.
//!
//! ```text
//! cargo run --release -p ard-bench --bin tables            # everything
//! cargo run --release -p ard-bench --bin tables -- --exp e5
//! cargo run --release -p ard-bench --bin tables -- --quick # small sweeps
//! cargo run --release -p ard-bench --bin tables -- --jobs 4
//! cargo run --release -p ard-bench --bin tables -- --list
//! cargo run --release -p ard-bench --bin tables -- --bench-throughput BENCH_throughput.json
//! cargo run --release -p ard-bench --bin tables -- --bench-explore BENCH_explore.json
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut exp: Option<String> = None;
    let mut list = false;
    let mut jobs = 1usize;
    let mut throughput_path: Option<String> = None;
    let mut explore_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--list" => list = true,
            "--exp" => {
                i += 1;
                match args.get(i) {
                    Some(id) => exp = Some(id.clone()),
                    None => {
                        eprintln!("--exp needs an id (e1..e10, f1, a1..a3)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => jobs = n,
                    _ => {
                        eprintln!("--jobs needs a thread count >= 1");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--bench-throughput" => {
                // Optional path operand; defaults to BENCH_throughput.json.
                let next = args.get(i + 1);
                let path = match next {
                    Some(p) if !p.starts_with("--") => {
                        i += 1;
                        p.clone()
                    }
                    _ => "BENCH_throughput.json".to_string(),
                };
                throughput_path = Some(path);
            }
            "--bench-explore" => {
                // Optional path operand; defaults to BENCH_explore.json.
                let next = args.get(i + 1);
                let path = match next {
                    Some(p) if !p.starts_with("--") => {
                        i += 1;
                        p.clone()
                    }
                    _ => "BENCH_explore.json".to_string(),
                };
                explore_path = Some(path);
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: tables [--quick] [--list] [--exp <id>] [--jobs N] [--bench-throughput [PATH]] [--bench-explore [PATH]]"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    // Trials merge in seed order, so any job count gives identical output.
    ard_bench::parallel::set_jobs(jobs);

    if let Some(path) = throughput_path {
        // --quick keeps the dense-knowledge grid (n ≤ 4096) and skips the
        // large tail plus the multicore sweep: seconds instead of minutes.
        let sizes: Vec<usize> = if quick {
            ard_bench::throughput::THROUGHPUT_SIZES
                .into_iter()
                .filter(|&n| n <= 4096)
                .collect()
        } else {
            ard_bench::throughput::THROUGHPUT_SIZES.to_vec()
        };
        let points = ard_bench::throughput::measure(&sizes, 3);
        for p in &points {
            println!(
                "n={:<7} {:<7} {:>9} events in {:>8.3}s  ->  {:>12.0} events/s  ({:>7.1} knowledge B/node, {:>6.1} payload B/event, peak {} B)",
                p.n, p.scheduler, p.events, p.secs, p.events_per_sec, p.knowledge_bytes_per_node,
                p.payload_bytes_per_event, p.payload_peak_bytes
            );
        }
        let sharded = if quick {
            Vec::new()
        } else {
            ard_bench::throughput::measure_sharded(
                &ard_bench::throughput::SHARDED_SIZES,
                &ard_bench::throughput::SHARD_COUNTS,
            )
        };
        for p in &sharded {
            println!(
                "n={:<7} shards={:<2} {:>9} events in {:>8.3}s  ->  {:>12.0} events/s",
                p.n, p.shards, p.events, p.secs, p.events_per_sec
            );
        }
        let json = ard_bench::throughput::to_json(&points, &sharded);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
        return ExitCode::SUCCESS;
    }

    if let Some(path) = explore_path {
        let budget = if quick {
            ard_bench::explorebench::EXPLORE_BUDGET / 10
        } else {
            ard_bench::explorebench::EXPLORE_BUDGET
        };
        let points = ard_bench::explorebench::measure(budget, 3);
        for p in &points {
            println!(
                "jobs={:<2} checkpoint={:<5} {:>7} runs in {:>8.3}s  ->  {:>10.0} runs/s  ({:>5.2}x)",
                p.jobs, p.checkpoint, p.runs, p.secs, p.runs_per_sec, p.speedup
            );
        }
        let reduction_budget = if quick {
            ard_bench::explorebench::REDUCTION_BUDGET / 10
        } else {
            ard_bench::explorebench::REDUCTION_BUDGET
        };
        let r = ard_bench::explorebench::measure_reduction(
            reduction_budget,
            ard_bench::explorebench::REDUCTION_SPIN,
        );
        println!(
            "reduction depth={}: full {} runs ({}) in {:.3}s | reduced {} runs ({}) in {:.3}s | pruned={} deduped={} | >={:.1}x fewer",
            r.depth,
            r.full_runs,
            r.full_stop,
            r.full_secs,
            r.reduced_runs,
            r.reduced_stop,
            r.reduced_secs,
            r.sleep_pruned,
            r.digest_deduped,
            r.ratio
        );
        let json = ard_bench::explorebench::to_json(&points, &r);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
        return ExitCode::SUCCESS;
    }

    if list {
        for t in ard_bench::all_tables(true) {
            println!("{:4}  {}", t.id, t.title);
        }
        return ExitCode::SUCCESS;
    }

    match exp {
        Some(id) => match ard_bench::table_by_id(&id, quick) {
            Some(t) => println!("{t}"),
            None => {
                eprintln!("unknown experiment id: {id} (try --list)");
                return ExitCode::FAILURE;
            }
        },
        None => {
            for t in ard_bench::all_tables(quick) {
                println!("{t}");
            }
        }
    }
    ExitCode::SUCCESS
}
