//! Engine-throughput measurement: events/sec of the discrete-event
//! simulator running the generic (Oblivious) discovery algorithm.
//!
//! An "event" is one `Runner::step` — a wake-up or a message delivery.
//! This is the metric `BENCH_throughput.json` records so successive PRs
//! have a perf trajectory to compare against; regenerate it with
//! `scripts/bench.sh` (or `tables --bench-throughput`).

use std::time::Instant;

use ard_core::{Discovery, Variant};
use ard_graph::gen;
use ard_netsim::{FifoScheduler, RandomScheduler, Scheduler};

/// Network sizes the throughput sweep covers. The large tail exercises the
/// SoA node table and interval-coded knowledge (n > 8192 switches the
/// runner to run-coded sets); `measure` drops to one repetition there.
pub const THROUGHPUT_SIZES: [usize; 5] = [256, 1024, 4096, 65536, 1_048_576];

/// Sizes above this measure with a single repetition (a full 10⁶-node
/// discovery is ~1.5·10⁷ events; best-of-3 would triple a minutes-long
/// sweep for noise reduction the big numbers don't need).
pub const SINGLE_REP_ABOVE: usize = 16_384;

/// Shard counts the multicore sweep measures; `1` doubles as the
/// round-engine baseline the speedups are computed against.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Network sizes the multicore sweep covers — the two sizes where the
/// scale collapse lived.
pub const SHARDED_SIZES: [usize; 2] = [65536, 1_048_576];

/// One measured (n, scheduler) throughput point.
#[derive(Clone, Debug)]
pub struct ThroughputPoint {
    /// Number of nodes in the random weakly connected topology.
    pub n: usize,
    /// Scheduler name (`"fifo"` or `"random"`).
    pub scheduler: &'static str,
    /// Simulator events (wake-ups + deliveries) executed per run.
    pub events: u64,
    /// Best wall-clock seconds over the measured repetitions.
    pub secs: f64,
    /// `events / secs` for the best repetition.
    pub events_per_sec: f64,
    /// Heap bytes of per-node knowledge at quiescence, divided by `n` —
    /// the memory metric the interval-coded representation targets.
    pub knowledge_bytes_per_node: f64,
    /// Payload heap bytes enqueued per executed event — the message-size
    /// metric the run-length payload coding targets.
    pub payload_bytes_per_event: f64,
    /// High-water mark of payload heap bytes simultaneously in flight.
    pub payload_peak_bytes: u64,
}

/// One measured (n, shards) point of the multicore sharded sweep.
#[derive(Clone, Debug)]
pub struct ShardedPoint {
    /// Number of nodes in the random weakly connected topology.
    pub n: usize,
    /// Worker thread count of the sharded round engine.
    pub shards: usize,
    /// Simulator events executed (identical at every shard count).
    pub events: u64,
    /// Wall-clock seconds of the single measured run.
    pub secs: f64,
    /// `events / secs`.
    pub events_per_sec: f64,
}

fn make_scheduler(name: &'static str, seed: u64) -> Box<dyn Scheduler> {
    match name {
        "fifo" => Box::new(FifoScheduler::new()),
        "random" => Box::new(RandomScheduler::seeded(seed)),
        other => panic!("unknown scheduler {other}"),
    }
}

/// Runs one full discovery on a fresh `G(n, 3n)` graph and returns the
/// executed event count (the graph build is excluded from timing by the
/// caller re-using this via [`measure`]).
pub fn run_events(n: usize, scheduler: &'static str) -> u64 {
    let graph = gen::random_weakly_connected(n, 2 * n, n as u64);
    let mut d = Discovery::new(&graph, Variant::Oblivious);
    if scheduler == "fifo" {
        let budget = d.default_step_budget();
        d.run_all_sharded_capped(1, budget)
            .expect("throughput run livelocked");
    } else {
        let mut sched = make_scheduler(scheduler, n as u64 ^ 0xa5a5);
        d.run_all(sched.as_mut()).expect("throughput run livelocked");
    }
    d.runner().steps_executed()
}

/// Measures events/sec for every `(n, scheduler)` pair in the sweep,
/// taking the best of `reps` repetitions (graph generation excluded).
///
/// The `fifo` rows drive the single-shard round engine (byte-identical
/// to a `FifoScheduler` run, and the fastest sequential path); `random`
/// rows drive the sequential engine under the seeded random scheduler.
pub fn measure(sizes: &[usize], reps: u32) -> Vec<ThroughputPoint> {
    let mut points = Vec::new();
    for &n in sizes {
        let graph = gen::random_weakly_connected(n, 2 * n, n as u64);
        let reps = if n > SINGLE_REP_ABOVE { 1 } else { reps.max(1) };
        for scheduler in ["fifo", "random"] {
            let mut best_secs = f64::INFINITY;
            let mut events = 0u64;
            let mut knowledge_bytes = 0usize;
            let mut payload_sent = 0u64;
            let mut payload_peak = 0u64;
            for _ in 0..reps {
                let mut d = Discovery::new(&graph, Variant::Oblivious);
                let secs = if scheduler == "fifo" {
                    let budget = d.default_step_budget();
                    let start = Instant::now();
                    d.run_all_sharded_capped(1, budget)
                        .expect("throughput run livelocked");
                    start.elapsed().as_secs_f64()
                } else {
                    let mut sched = make_scheduler(scheduler, n as u64 ^ 0xa5a5);
                    let start = Instant::now();
                    d.run_all(sched.as_mut()).expect("throughput run livelocked");
                    start.elapsed().as_secs_f64()
                };
                events = d.runner().steps_executed();
                knowledge_bytes = d.runner().knowledge_bytes();
                payload_sent = d.runner().payload_bytes_sent();
                payload_peak = d.runner().payload_peak_bytes();
                best_secs = best_secs.min(secs);
            }
            points.push(ThroughputPoint {
                n,
                scheduler,
                events,
                secs: best_secs,
                events_per_sec: events as f64 / best_secs,
                knowledge_bytes_per_node: knowledge_bytes as f64 / n as f64,
                payload_bytes_per_event: payload_sent as f64 / events as f64,
                payload_peak_bytes: payload_peak,
            });
        }
    }
    points
}

/// Measures the sharded round engine at every `(n, shards)` pair — one
/// run each (the large sizes dominate the sweep's wall clock; shard
/// scaling differences dwarf single-run noise).
pub fn measure_sharded(sizes: &[usize], shard_counts: &[usize]) -> Vec<ShardedPoint> {
    let mut points = Vec::new();
    for &n in sizes {
        let graph = gen::random_weakly_connected(n, 2 * n, n as u64);
        for &shards in shard_counts {
            let mut d = Discovery::new(&graph, Variant::Oblivious);
            let budget = d.default_step_budget();
            let start = Instant::now();
            d.run_all_sharded_capped(shards, budget)
                .expect("sharded throughput run livelocked");
            let secs = start.elapsed().as_secs_f64();
            let events = d.runner().steps_executed();
            points.push(ShardedPoint {
                n,
                shards,
                events,
                secs,
                events_per_sec: events as f64 / secs,
            });
        }
    }
    points
}

/// Renders the points as the `BENCH_throughput.json` document.
pub fn to_json(points: &[ThroughputPoint], sharded: &[ShardedPoint]) -> String {
    let mut out = String::from("{\n  \"metric\": \"events_per_sec\",\n  \"workload\": \"oblivious discovery on random G(n, 3n)\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"scheduler\": \"{}\", \"events\": {}, \"secs\": {:.6}, \"events_per_sec\": {:.0}, \"knowledge_bytes_per_node\": {:.1}, \"payload_bytes_per_event\": {:.1}, \"payload_peak_bytes\": {}}}{}\n",
            p.n,
            p.scheduler,
            p.events,
            p.secs,
            p.events_per_sec,
            p.knowledge_bytes_per_node,
            p.payload_bytes_per_event,
            p.payload_peak_bytes,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"sharded\": [\n");
    for (i, p) in sharded.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"shards\": {}, \"events\": {}, \"secs\": {:.6}, \"events_per_sec\": {:.0}}}{}\n",
            p.n,
            p.shards,
            p.events,
            p.secs,
            p.events_per_sec,
            if i + 1 == sharded.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_all_pairs() {
        let points = measure(&[32], 1);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.events > 0);
            assert!(p.events_per_sec > 0.0);
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let points = measure(&[24], 1);
        let sharded = measure_sharded(&[24], &[1, 2]);
        let json = to_json(&points, &sharded);
        assert!(json.starts_with('{') && json.ends_with("}\n"));
        assert_eq!(json.matches("\"scheduler\"").count(), points.len());
        assert_eq!(json.matches("\"shards\"").count(), sharded.len());
        assert!(json.contains("\"payload_bytes_per_event\""));
        assert!(json.contains("\"sharded\""));
        assert!(!json.contains(",\n  ]"), "no trailing comma:\n{json}");
    }

    #[test]
    fn sharded_sweep_executes_identical_event_counts() {
        let points = measure_sharded(&[40], &[1, 2, 4]);
        assert_eq!(points.len(), 3);
        assert!(points.windows(2).all(|w| w[0].events == w[1].events));
    }

    #[test]
    fn deterministic_event_counts() {
        assert_eq!(run_events(48, "random"), run_events(48, "random"));
    }
}
