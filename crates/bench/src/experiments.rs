//! One function per experiment; see `DESIGN.md` §5 for the index.

use std::collections::BTreeMap;

use ard_baselines::{flood, law_siu, name_dropper};
use ard_core::{budgets, Config, Discovery, Transition, Variant, EXPECTED_TRANSITIONS};
use ard_graph::{gen, KnowledgeGraph};
use ard_lower_bounds::{tree_adversary, uf_reduction};
use ard_netsim::{Metrics, NodeId, RandomScheduler};
use ard_union_find::{alpha, Compression, OpSequence, UnionFind, UnionPolicy};

use crate::Table;

fn log2f(n: u64) -> f64 {
    (n.max(2) as f64).log2()
}

fn sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![64, 128, 256]
    } else {
        vec![64, 128, 256, 512, 1024, 2048, 4096]
    }
}

/// Runs one discovery to quiescence, checking requirements; returns the
/// finished driver and its reference graph.
fn run_once(
    n: usize,
    extra_edges: usize,
    variant: Variant,
    config: Config,
    seed: u64,
) -> (Discovery, KnowledgeGraph) {
    let graph = gen::random_weakly_connected(n, extra_edges, seed);
    let mut d = Discovery::with_config(&graph, variant, config);
    let mut sched = RandomScheduler::seeded(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    d.run_all(&mut sched).expect("run livelocked");
    d.check_requirements(&graph).expect("requirements violated");
    (d, graph)
}

/// Mean and sample standard deviation of a series.
fn mean_sd(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

fn message_sweep(variant: Variant, quick: bool, table: &mut Table) {
    let seeds: u64 = if quick { 2 } else { 5 };
    // Trials are independent — each owns its topology seed and its seeded
    // scheduler — so they run on the configured worker pool; merging by
    // input order keeps the table byte-identical whatever the job count.
    let trials: Vec<(usize, u64)> = sweep(quick)
        .into_iter()
        .flat_map(|n| (0..seeds).map(move |seed| (n, seed)))
        .collect();
    let measured = crate::parallel::map_configured(trials, |(n, seed)| {
        // Vary both the topology and the schedule across repetitions.
        let (d, graph) = run_once(n, 2 * n, variant, Config::paper(), n as u64 + 7919 * seed);
        let m = d.runner().metrics();
        let check = match variant {
            Variant::Oblivious => budgets::check_theorem_5(m, n as u64),
            _ => budgets::check_theorem_6(m, n as u64),
        };
        check.expect("theorem bound violated");
        (n, graph.edge_count(), m.total_messages() as f64)
    });
    for per_n in measured.chunks(seeds as usize) {
        let n = per_n[0].0;
        let e0 = per_n[per_n.len() - 1].1;
        let msgs: Vec<f64> = per_n.iter().map(|&(_, _, m)| m).collect();
        let (mean, sd) = mean_sd(&msgs);
        let nf = n as f64;
        let a = alpha(n as u64, n as u64);
        table.push_row(vec![
            n.to_string(),
            e0.to_string(),
            format!("{mean:.0} ± {sd:.0}"),
            format!("{:.2}", mean / nf),
            format!("{:.2}", mean / (nf * log2f(n as u64))),
            format!("{:.2}", mean / (nf * a as f64)),
        ]);
    }
    table.push_note(format!(
        "each row: mean ± sd over {seeds} independent topology+schedule seeds"
    ));
}

/// E1 — Theorem 5: the generic (Oblivious) algorithm sends `O(n log n)`
/// messages.
pub fn e1_generic_messages(quick: bool) -> Table {
    let mut t = Table::new(
        "e1",
        "Theorem 5 — generic (Oblivious) algorithm message complexity, random weakly connected G(n, 3n)",
        &["n", "|E0|", "messages (mean ± sd)", "msgs/n", "msgs/(n·log n)", "msgs/(n·α)"],
    );
    message_sweep(Variant::Oblivious, quick, &mut t);
    t.push_note("expect msgs/(n·log n) bounded by a constant (Theorem 5: O(n log n)); on benign random graphs it even shrinks — the log factor needs the adversarial tree of E5");
    t
}

/// E2 — Theorems 4 & 6: the Bounded algorithm sends `O(n·α)` messages and
/// detects termination.
pub fn e2_bounded_messages(quick: bool) -> Table {
    let mut t = Table::new(
        "e2",
        "Theorems 4+6 — Bounded algorithm message complexity and termination, random G(n, 3n)",
        &[
            "n",
            "|E0|",
            "messages (mean ± sd)",
            "msgs/n",
            "msgs/(n·log n)",
            "msgs/(n·α)",
        ],
    );
    message_sweep(Variant::Bounded, quick, &mut t);
    // Termination check on one representative size.
    let (d, _) = run_once(128, 256, Variant::Bounded, Config::paper(), 9);
    let all_terminated = d.runner().nodes().all(|n| n.is_terminated());
    t.push_note(format!(
        "expect msgs/n flat (Theorem 6: O(n·α), α ≤ 4 at any feasible n); every node terminated: {all_terminated}"
    ));
    t
}

/// E3 — Theorem 6: the Ad-hoc algorithm sends `O(n·α)` messages.
pub fn e3_adhoc_messages(quick: bool) -> Table {
    let mut t = Table::new(
        "e3",
        "Theorem 6 — Ad-hoc algorithm message complexity, random G(n, 3n)",
        &[
            "n",
            "|E0|",
            "messages (mean ± sd)",
            "msgs/n",
            "msgs/(n·log n)",
            "msgs/(n·α)",
        ],
    );
    message_sweep(Variant::AdHoc, quick, &mut t);
    t.push_note("expect msgs/n flat and below the Bounded variant (no final conquer wave)");
    t
}

/// E4 — Theorem 7 and Lemmas 5.9/5.10: bit complexity
/// `O(|E₀| log n + n log² n)`.
pub fn e4_bit_complexity(quick: bool) -> Table {
    let mut t = Table::new(
        "e4",
        "Theorem 7 — bit complexity O(|E0|·log n + n·log²n) with Lemma 5.9/5.10 per-kind budgets",
        &[
            "n",
            "|E0|",
            "total bits",
            "bits/(E0·b + n·b²)",
            "qreply id-bits",
            "≤2·E0·b",
            "info id-bits",
            "≤4n·b²",
        ],
    );
    for n in sweep(quick) {
        // Denser graphs stress the |E0| term.
        let extra = 4 * n;
        let (d, graph) = run_once(n, extra, Variant::Oblivious, Config::paper(), 7 + n as u64);
        let m = d.runner().metrics();
        let b = m.id_bits();
        let e0 = graph.edge_count() as u64;
        let denom = (e0 * b + n as u64 * b * b) as f64;
        budgets::check_lemma_5_9(m, e0).expect("Lemma 5.9 violated");
        budgets::check_lemma_5_10(m, n as u64).expect("Lemma 5.10 violated");
        budgets::check_theorem_7(m, n as u64, e0).expect("Theorem 7 violated");
        // Subtract the fixed per-message overhead (aux + kind tag) so the
        // budget columns compare id-bits against the paper's id-only bounds.
        let qreply = m.kind("query reply");
        let qreply_ids = qreply.bits - qreply.messages * (32 + 1 + 4);
        let info = m.kind("info");
        let info_ids = info.bits - info.messages * (8 + 4 * 32 + 4);
        assert!(qreply_ids <= 2 * e0 * b, "Lemma 5.9 id-bits");
        assert!(info_ids <= 4 * n as u64 * b * b, "Lemma 5.10 id-bits");
        t.push_row(vec![
            n.to_string(),
            e0.to_string(),
            m.total_bits().to_string(),
            format!("{:.2}", m.total_bits() as f64 / denom),
            qreply_ids.to_string(),
            (2 * e0 * b).to_string(),
            info_ids.to_string(),
            (4 * n as u64 * b * b).to_string(),
        ]);
    }
    t.push_note("b = ⌈log₂ n⌉; the budget columns are the paper's id-only bounds, compared against measured id-bits (total minus fixed per-message overhead)");
    t
}

/// E5 — Theorem 1: the subtree-freezing adversary forces
/// `≥ i·2^(i−1) − 2` messages on `T(i)` for the Oblivious problem.
pub fn e5_tree_lower_bound(quick: bool) -> Table {
    let mut t = Table::new(
        "e5",
        "Theorem 1 — adversarial lower bound on rooted binary trees T(i), Oblivious algorithm",
        &[
            "levels i",
            "n=2^i−1",
            "forced msgs",
            "bound i·2^(i−1)−2",
            "forced/bound",
            "msgs/(0.5·n·log n)",
        ],
    );
    let max_levels = if quick { 8 } else { 12 };
    for levels in 2..=max_levels {
        let r = tree_adversary::run(levels);
        assert!(r.messages >= r.bound, "T({levels}) below the lower bound");
        t.push_row(vec![
            levels.to_string(),
            r.n.to_string(),
            r.messages.to_string(),
            r.bound.to_string(),
            format!("{:.2}", r.messages as f64 / r.bound as f64),
            format!("{:.2}", r.messages as f64 / (0.5 * r.n as f64 * log2f(r.n))),
        ]);
    }
    t.push_note("expect forced/bound ≥ 1 throughout (the adversary achieves the Ω(n log n) proof bound) and msgs/(0.5·n·log n) ~ constant");
    t
}

/// E6 — Theorem 2 / Lemma 3.1: the Union-Find reduction; Ad-hoc messages
/// track `N·α(N,N)` for `N = 2n − 1 + m`.
pub fn e6_uf_reduction(quick: bool) -> Table {
    let mut t = Table::new(
        "e6",
        "Theorem 2 — Union-Find reduction: staged Ad-hoc execution over op sequences",
        &[
            "sets n",
            "finds m",
            "N=2n−1+m",
            "messages",
            "msgs/N",
            "N·α(N,N)",
            "msgs/(N·α)",
        ],
    );
    let sizes: &[usize] = if quick {
        &[32, 64, 128]
    } else {
        &[32, 64, 128, 256, 512, 1024]
    };
    for &n in sizes {
        let finds = n / 2;
        let seq = OpSequence::random(n, finds, n as u64);
        let out = uf_reduction::run(&seq);
        t.push_row(vec![
            n.to_string(),
            finds.to_string(),
            out.network_size.to_string(),
            out.messages.to_string(),
            format!("{:.2}", out.messages as f64 / out.network_size as f64),
            out.n_alpha.to_string(),
            format!("{:.2}", out.messages as f64 / out.n_alpha as f64),
        ]);
    }
    t.push_note("expect msgs/N flat (matching the Ω(N·α) lower bound up to a constant): the algorithm is asymptotically message-optimal");
    t
}

/// E7 — Lemmas 5.5–5.8: per-message-kind budgets on one representative run
/// per size.
pub fn e7_message_breakdown(quick: bool) -> Table {
    let mut t = Table::new(
        "e7",
        "Lemmas 5.5–5.8 — per-kind message budgets (Oblivious unless noted)",
        &["n", "kind group", "measured", "bound", "lemma"],
    );
    for n in sweep(quick) {
        let nu = n as u64;
        let (d, _) = run_once(n, 2 * n, Variant::Oblivious, Config::paper(), 3 * n as u64);
        let m = d.runner().metrics();
        let (db, _) = run_once(n, 2 * n, Variant::Bounded, Config::paper(), 3 * n as u64);
        let mb = db.runner().metrics();
        let rows: Vec<(String, u64, u64, &str)> = vec![
            ("query".into(), m.kind("query").messages, 4 * nu, "5.5"),
            (
                "query reply".into(),
                m.kind("query reply").messages,
                4 * nu,
                "5.5",
            ),
            (
                "search+release".into(),
                m.messages_of(&["search", "release"]),
                16 * nu * (alpha(nu, nu) + 1),
                "5.6 (O(n·α), C=16)",
            ),
            (
                "merge acc+info".into(),
                m.messages_of(&["merge accept", "info"]),
                2 * nu,
                "5.7",
            ),
            (
                "…+merge fail".into(),
                m.messages_of(&["merge accept", "merge fail", "info"]),
                3 * nu,
                "5.7 (corrected, see EXPERIMENTS.md)",
            ),
            (
                "conquer+more/done".into(),
                m.messages_of(&["conquer", "more/done"]),
                2 * nu * (log2f(nu).ceil() as u64),
                "5.8 generic",
            ),
            (
                "conquer+more/done (Bounded)".into(),
                mb.messages_of(&["conquer", "more/done"]),
                2 * nu,
                "5.8 bounded",
            ),
        ];
        for (kind, measured, bound, lemma) in rows {
            assert!(measured <= bound, "n={n} {kind}: {measured} > {bound}");
            t.push_row(vec![
                n.to_string(),
                kind,
                measured.to_string(),
                bound.to_string(),
                lemma.to_string(),
            ]);
        }
    }
    t.push_note("every group within its lemma budget; Lemma 5.7's literal 2n bound needs the 3n correction for repeated passive→conquered surrenders");
    t
}

/// E8 — Theorem 8: dynamic additions cost `O(m·α)` marginal messages, far
/// below re-running from scratch.
pub fn e8_dynamic_additions(quick: bool) -> Table {
    let mut t = Table::new(
        "e8",
        "Theorem 8 — dynamic node/link additions (Ad-hoc): marginal cost vs full re-run",
        &[
            "base n",
            "added nodes",
            "added links",
            "marginal msgs",
            "re-run msgs",
            "marginal/re-run",
            "marginal/addition",
        ],
    );
    let sizes: &[usize] = if quick {
        &[64, 128]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    for &n in sizes {
        let graph = gen::random_weakly_connected(n, 2 * n, n as u64);
        let mut d = Discovery::new(&graph, Variant::AdHoc);
        let mut sched = RandomScheduler::seeded(n as u64 + 1);
        d.run_all(&mut sched).expect("base run livelocked");
        let base_msgs = d.runner().metrics().total_messages();

        // Add n/8 nodes and n/8 links, running to quiescence after each.
        let added_nodes = n / 8;
        let added_links = n / 8;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64 + 2);
        for _ in 0..added_nodes {
            let total = d.graph().len();
            let peer = NodeId::new(rng.gen_range(0..total));
            d.add_node(vec![peer], &mut sched);
            d.run(&mut sched).expect("addition run livelocked");
        }
        for _ in 0..added_links {
            let total = d.graph().len();
            let u = NodeId::new(rng.gen_range(0..total));
            let v = NodeId::new(rng.gen_range(0..total));
            if u != v {
                d.add_link(u, v, &mut sched);
                d.run(&mut sched).expect("link run livelocked");
            }
        }
        let final_graph = d.graph().clone();
        d.check_requirements(&final_graph)
            .expect("dynamic run violated requirements");
        let marginal = d.runner().metrics().total_messages() - base_msgs;

        // Fresh run on the final graph, for comparison.
        let mut fresh = Discovery::new(&final_graph, Variant::AdHoc);
        fresh
            .run_all(&mut RandomScheduler::seeded(n as u64 + 3))
            .expect("fresh run livelocked");
        let rerun = fresh.runner().metrics().total_messages();

        let additions = (added_nodes + added_links) as f64;
        t.push_row(vec![
            n.to_string(),
            added_nodes.to_string(),
            added_links.to_string(),
            marginal.to_string(),
            rerun.to_string(),
            format!("{:.2}", marginal as f64 / rerun as f64),
            format!("{:.2}", marginal as f64 / additions),
        ]);
    }
    t.push_note("expect marginal/addition ~ constant (Theorem 8: O(m·α) total) and marginal ≪ re-run: no need to restart the algorithm on change");
    t
}

/// E9 — §1.1 context: the paper's algorithms vs Name-Dropper and flooding.
pub fn e9_baseline_comparison(quick: bool) -> Table {
    let mut t = Table::new(
        "e9",
        "§1.1 comparison — messages/bits vs prior algorithms on shared random G(n, 3n)",
        &["n", "algorithm", "messages", "bits", "time (rounds/causal)"],
    );
    let sizes: &[usize] = if quick {
        &[64, 128]
    } else {
        &[64, 128, 256, 512]
    };
    for &n in sizes {
        let graph = gen::random_weakly_connected(n, 2 * n, 77 + n as u64);
        for variant in [Variant::Oblivious, Variant::Bounded, Variant::AdHoc] {
            let mut d = Discovery::new(&graph, variant);
            d.run_all(&mut RandomScheduler::seeded(n as u64))
                .expect("run livelocked");
            let m = d.runner().metrics();
            t.push_row(vec![
                n.to_string(),
                format!("abraham-dolev {variant}"),
                m.total_messages().to_string(),
                m.total_bits().to_string(),
                m.max_causal_depth().to_string(),
            ]);
        }
        let nd = name_dropper::run(&graph, n as u64);
        t.push_row(vec![
            n.to_string(),
            "name-dropper [2]".to_string(),
            nd.metrics().total_messages().to_string(),
            nd.metrics().total_bits().to_string(),
            nd.round().to_string(),
        ]);
        let ls = law_siu::run(&graph, n as u64);
        t.push_row(vec![
            n.to_string(),
            "law-siu-style [5]".to_string(),
            ls.metrics().total_messages().to_string(),
            ls.metrics().total_bits().to_string(),
            ls.round().to_string(),
        ]);
        // Flooding's Θ(n²) messages × Θ(n log n)-bit payloads exhaust memory
        // beyond a couple hundred nodes — itself a data point.
        if n <= 192 {
            let mut sched = RandomScheduler::seeded(n as u64);
            let (fl, _) = flood::run(&graph, &mut sched, 100_000_000).expect("flooding livelocked");
            t.push_row(vec![
                n.to_string(),
                "flooding".to_string(),
                fl.metrics().total_messages().to_string(),
                fl.metrics().total_bits().to_string(),
                fl.metrics().max_causal_depth().to_string(),
            ]);
        } else {
            t.push_row(vec![
                n.to_string(),
                "flooding".to_string(),
                "(infeasible)".to_string(),
                "(infeasible)".to_string(),
                "-".to_string(),
            ]);
        }
    }
    t.push_note("expect abraham-dolev ≪ name-dropper ≪ flooding in messages and especially bits; name-dropper additionally needs synchrony and known n; flooding above ~192 nodes exhausts simulator memory");
    t
}

/// E10 — §4.5.2: amortized probe cost in the Ad-hoc variant.
pub fn e10_probe_amortization(quick: bool) -> Table {
    let mut t = Table::new(
        "e10",
        "§4.5.2 — Ad-hoc probes: m leader requests cost O((m+n)·α(m,n)) total",
        &[
            "n",
            "probes m",
            "probe msgs",
            "msgs/probe",
            "(m+n)·α",
            "total/(m+n)·α",
        ],
    );
    let sizes: &[usize] = if quick {
        &[64, 128]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    for &n in sizes {
        let graph = gen::random_weakly_connected(n, 2 * n, 5 + n as u64);
        let mut d = Discovery::new(&graph, Variant::AdHoc);
        let mut sched = RandomScheduler::seeded(n as u64);
        d.run_all(&mut sched).expect("run livelocked");
        let before = d.runner().metrics().total_messages();
        let m_probes = 2 * n;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64 + 9);
        for _ in 0..m_probes {
            let v = NodeId::new(rng.gen_range(0..n));
            d.probe_blocking(v, &mut sched).expect("probe livelocked");
        }
        let probe_msgs = d.runner().metrics().total_messages() - before;
        let bound = (m_probes as u64 + n as u64) * alpha(m_probes as u64, n as u64);
        t.push_row(vec![
            n.to_string(),
            m_probes.to_string(),
            probe_msgs.to_string(),
            format!("{:.2}", probe_msgs as f64 / m_probes as f64),
            bound.to_string(),
            format!("{:.2}", probe_msgs as f64 / bound as f64),
        ]);
    }
    t.push_note("path compression on probe replies keeps msgs/probe ~ 2 (one hop each way) after the first few requests");
    t
}

/// E11 — §7 discussion: asynchronous time. The paper notes the wake-up
/// time complexity is `Ω(n)` and its algorithm's synchronous-model time is
/// `O(T + n)`; the causal-depth measure (longest message chain ≈ rounds a
/// synchronous network would need) should therefore be `Θ(n)`.
pub fn e11_time_complexity(quick: bool) -> Table {
    let mut t = Table::new(
        "e11",
        "§7 — asynchronous time: causal depth (longest message chain) is Θ(n)",
        &["n", "variant", "causal depth", "depth/n"],
    );
    for n in sweep(quick) {
        for variant in [Variant::Oblivious, Variant::Bounded, Variant::AdHoc] {
            let (d, _) = run_once(n, 2 * n, variant, Config::paper(), 31 + n as u64);
            let depth = d.runner().metrics().max_causal_depth();
            assert!(depth <= 20 * n as u64, "depth super-linear at n={n}");
            t.push_row(vec![
                n.to_string(),
                variant.to_string(),
                depth.to_string(),
                format!("{:.2}", depth as f64 / n as f64),
            ]);
        }
    }
    t.push_note("depth/n settles to a constant: time is linear, matching the Ω(n) wake-up argument of §1.2 and the O(T+n) discussion of §7");
    t
}

/// E12 — §1 motivation: the end-to-end pipeline (discover → build a DHT →
/// serve lookups) with `O(log n)` routing hops.
pub fn e12_overlay_pipeline(quick: bool) -> Table {
    use ard_overlay::{bootstrap, Key};
    let mut t = Table::new(
        "e12",
        "§1 pipeline — overlay bootstrapped from discovery: lookup hops vs log n",
        &[
            "n",
            "discovery msgs",
            "lookups",
            "avg hops",
            "worst hops",
            "log2 n",
        ],
    );
    let sizes: &[usize] = if quick {
        &[64, 128]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    for &n in sizes {
        let graph = gen::random_weakly_connected(n, 2 * n, 41 + n as u64);
        let mut d = Discovery::new(&graph, Variant::AdHoc);
        let mut sched = RandomScheduler::seeded(n as u64);
        let outcome = d.run_all(&mut sched).expect("discovery livelocked");
        let leader = outcome.leaders[0];
        let members: Vec<NodeId> = d.runner().node(leader).done().iter().copied().collect();
        let mut overlay = bootstrap(&members);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(n as u64 + 13);
        let trials = 200u32;
        let mut total = 0u64;
        let mut worst = 0u32;
        for _ in 0..trials {
            let key = Key::new(rng.gen());
            let from = members[rng.gen_range(0..members.len())];
            let r = overlay
                .lookup_blocking(from, key, &mut sched)
                .expect("lookup livelocked");
            assert_eq!(r.owner, overlay.ring().owner(key));
            total += u64::from(r.hops);
            worst = worst.max(r.hops);
        }
        let log_n = log2f(n as u64);
        assert!(
            f64::from(worst) <= 2.5 * log_n + 2.0,
            "hops not logarithmic at n={n}"
        );
        t.push_row(vec![
            n.to_string(),
            outcome.metrics.total_messages().to_string(),
            trials.to_string(),
            format!("{:.2}", total as f64 / f64::from(trials)),
            worst.to_string(),
            format!("{:.1}", log_n),
        ]);
    }
    t.push_note("every lookup verified against the offline ring oracle; avg hops ≈ 0.6·log₂ n (greedy finger routing)");
    t
}

/// E13 — the counting argument inside Lemma 5.10's proof: "the number of
/// leader nodes that reach phase i is at most n/2^(i−1)" (a phase-i leader
/// commands ≥ 2^(i−1) members, and clusters are disjoint while their
/// leaders live).
pub fn e13_phase_distribution(quick: bool) -> Table {
    let mut t = Table::new(
        "e13",
        "Lemma 5.10 internals — leaders reaching phase i vs the n/2^(i−1) bound (Oblivious)",
        &["n", "phase i", "nodes reaching i", "bound n/2^(i−1)"],
    );
    let sizes: &[usize] = if quick { &[256] } else { &[256, 1024, 4096] };
    for &n in sizes {
        let (d, _) = run_once(n, 2 * n, Variant::Oblivious, Config::paper(), 51 + n as u64);
        // A node's phase only grows, so its final phase is the highest it
        // reached (as a leader; conquered nodes stop advancing).
        let max_phase = d
            .runner()
            .nodes()
            .map(|node| node.phase())
            .max()
            .unwrap_or(1);
        for i in 1..=max_phase {
            let reached = d.runner().nodes().filter(|node| node.phase() >= i).count() as u64;
            let bound = n as u64 / (1u64 << (i - 1).min(63));
            assert!(
                reached <= bound.max(1),
                "n={n} phase {i}: {reached} > {bound}"
            );
            t.push_row(vec![
                n.to_string(),
                i.to_string(),
                reached.to_string(),
                bound.to_string(),
            ]);
        }
    }
    t.push_note("the halving pattern is the engine of both the message bound (conquer waves shrink geometrically) and the info-bit bound");
    t
}

/// E14 — robustness: the message bounds are schedule- and
/// topology-insensitive (the theorems quantify over *all* asynchronous
/// executions; this samples hostile corners of that space).
pub fn e14_schedule_sensitivity(quick: bool) -> Table {
    use ard_netsim::{BoundedDelayScheduler, FifoScheduler, LifoScheduler, Scheduler};
    let mut t = Table::new(
        "e14",
        "Robustness — message counts across topologies × schedulers (Ad-hoc, n≈256)",
        &[
            "topology",
            "|E0|",
            "min msgs",
            "mean msgs",
            "max msgs",
            "spread",
            "bound ok",
        ],
    );
    let n = if quick { 96 } else { 256 };
    let topologies: Vec<(&str, KnowledgeGraph)> = vec![
        ("random G(n,3n)", gen::random_weakly_connected(n, 2 * n, 5)),
        ("scale-free", gen::scale_free(n, 2, 5)),
        ("path", gen::path(n)),
        ("ring", gen::ring(n)),
        ("star-in", gen::star_in(n)),
        (
            "tree",
            gen::binary_tree_down((usize::BITS - n.leading_zeros()) - 1),
        ),
    ];
    for (name, graph) in topologies {
        let nn = graph.len();
        let mut counts = Vec::new();
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(FifoScheduler::new()),
            Box::new(LifoScheduler::new()),
            Box::new(BoundedDelayScheduler::new(8, 3)),
        ];
        for seed in 0..4u64 {
            schedulers.push(Box::new(RandomScheduler::seeded(seed * 131 + 1)));
        }
        let mut all_ok = true;
        for mut sched in schedulers {
            let mut d = Discovery::new(&graph, Variant::AdHoc);
            d.run_all(sched.as_mut()).expect("run livelocked");
            d.check_requirements(&graph).expect("requirements violated");
            let m = d.runner().metrics();
            all_ok &= budgets::check_theorem_6(m, nn as u64).is_ok();
            counts.push(m.total_messages() as f64);
        }
        let (mean, _) = mean_sd(&counts);
        let min = counts.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = counts.iter().cloned().fold(0.0, f64::max);
        assert!(all_ok, "{name}: Theorem 6 bound violated");
        t.push_row(vec![
            name.to_string(),
            graph.edge_count().to_string(),
            format!("{min:.0}"),
            format!("{mean:.0}"),
            format!("{max:.0}"),
            format!("{:.2}x", max / min),
            "yes".to_string(),
        ]);
    }
    t.push_note("7 schedulers per topology (fifo, lifo, bounded-delay, 4 random seeds); worst/best spread stays small - the complexity is a property of the algorithm, not of lucky schedules");
    t
}

/// E15 — scale: the Theorem 5/6 message budgets re-verified at large `n`
/// (single seed per point; a 10⁶-node run is minutes, so no repetition),
/// plus the engine-side scale metrics the million-node engine targets:
/// executed events and knowledge-set bytes per node under interval coding.
pub fn e15_scale(quick: bool) -> Table {
    let mut t = Table::new(
        "e15",
        "Scale — Theorem 5/6 budgets and engine memory at large n, random G(n, 3n), single seed",
        &[
            "variant",
            "n",
            "|E0|",
            "messages",
            "msgs/n",
            "msgs/(n·log n)",
            "msgs/(n·α)",
            "events",
            "knowledge B/node",
        ],
    );
    // All sizes sit above the dense-knowledge cutoff, so every run
    // exercises the run-coded representation.
    let sizes: &[usize] = if quick { &[16_384] } else { &[65_536, 1_048_576] };
    for &n in sizes {
        for variant in [Variant::Oblivious, Variant::Bounded, Variant::AdHoc] {
            let started = std::time::Instant::now();
            let (d, graph) = run_once(n, 2 * n, variant, Config::paper(), n as u64);
            // A 10⁶-node run is minutes of silence otherwise.
            eprintln!(
                "e15: {variant:?} n={n}: {} events in {:.1}s",
                d.runner().steps_executed(),
                started.elapsed().as_secs_f64()
            );
            let m = d.runner().metrics();
            let check = match variant {
                Variant::Oblivious => budgets::check_theorem_5(m, n as u64),
                _ => budgets::check_theorem_6(m, n as u64),
            };
            check.expect("theorem bound violated at scale");
            let msgs = m.total_messages() as f64;
            let nf = n as f64;
            let a = alpha(n as u64, n as u64);
            t.push_row(vec![
                format!("{variant:?}"),
                n.to_string(),
                graph.edge_count().to_string(),
                format!("{msgs:.0}"),
                format!("{:.2}", msgs / nf),
                format!("{:.2}", msgs / (nf * log2f(n as u64))),
                format!("{:.2}", msgs / (nf * a as f64)),
                d.runner().steps_executed().to_string(),
                format!("{:.1}", d.runner().knowledge_bytes() as f64 / nf),
            ]);
        }
    }
    t.push_note("same budget checks as E1-E3 (check_theorem_5/6), applied at the scale the interval-coded engine unlocks; knowledge B/node would be n/8 bytes (8 KiB at 65536, 128 KiB at 10^6) under dense bitsets");
    t
}

/// F1 — Figure 1: the observed transition set equals the diagram exactly.
pub fn f1_transition_coverage(quick: bool) -> Table {
    let mut t = Table::new(
        "f1",
        "Figure 1 — state-transition coverage over the whole experiment sweep",
        &["transition", "observed count", "in diagram"],
    );
    let mut counts: BTreeMap<Transition, u64> = BTreeMap::new();
    let seeds = if quick { 10 } else { 60 };
    for seed in 0..seeds {
        for variant in [Variant::Oblivious, Variant::Bounded, Variant::AdHoc] {
            let graphs = [
                gen::random_weakly_connected(24, 60, seed),
                gen::path(12),
                gen::binary_tree_down(4),
                gen::star_in(12),
            ];
            for graph in graphs {
                let mut d = Discovery::new(&graph, variant);
                d.run_all(&mut RandomScheduler::seeded(seed * 131 + 17))
                    .expect("run livelocked");
                for node in d.runner().nodes() {
                    for &tr in node.transitions() {
                        *counts.entry(tr).or_default() += 1;
                    }
                }
            }
        }
    }
    let mut all_expected_seen = true;
    for &tr in EXPECTED_TRANSITIONS {
        let c = counts.get(&tr).copied().unwrap_or(0);
        if c == 0 {
            all_expected_seen = false;
        }
        t.push_row(vec![tr.to_string(), c.to_string(), "yes".to_string()]);
    }
    let mut unexpected = 0;
    for (&tr, &c) in &counts {
        if !EXPECTED_TRANSITIONS.contains(&tr) {
            unexpected += 1;
            t.push_row(vec![tr.to_string(), c.to_string(), "NO (bug!)".to_string()]);
        }
    }
    t.push_note(format!(
        "diagram coverage: every expected transition observed = {all_expected_seen}; transitions outside the diagram = {unexpected}"
    ));
    assert_eq!(unexpected, 0, "observed a transition outside Figure 1");
    t
}

/// A1 — ablation: path compression on releases/probe replies, on the
/// staged find-heavy reduction workload where pointer chains get deep.
pub fn a1_path_compression(quick: bool) -> Table {
    let mut t = Table::new(
        "a1",
        "Ablation — path compression (the union-find mechanism behind Theorem 6), adversarial staged workload",
        &["sets n", "N", "config", "search+release msgs", "total msgs", "msgs/N"],
    );
    let sizes: &[usize] = if quick {
        &[128, 256]
    } else {
        &[128, 256, 512, 1024, 2048]
    };
    for &n in sizes {
        let seq = OpSequence::adversarial_deep(n, n / 2);
        for (name, config) in [
            ("paper", Config::paper()),
            ("no compression", Config::without_path_compression()),
        ] {
            let out = uf_reduction::run_with_config(&seq, config);
            t.push_row(vec![
                n.to_string(),
                out.network_size.to_string(),
                name.to_string(),
                out.metrics.messages_of(&["search", "release"]).to_string(),
                out.messages.to_string(),
                format!("{:.2}", out.messages as f64 / out.network_size as f64),
            ]);
        }
    }
    t.push_note("with compression msgs/N stays flat (O(α) amortized); without it searches retrace ever-deeper pointer chains and msgs/N grows with n");
    t
}

/// A2 — ablation: balanced queries (`|more|+|done|+1` vs fetch-everything),
/// on complete graphs where Lemma 5.10's invariant is load-bearing.
pub fn a2_balanced_queries(quick: bool) -> Table {
    let mut t = Table::new(
        "a2",
        "Ablation — balanced queries (the §4.1 mechanism that makes Lemma 5.10 true), complete graphs",
        &["n", "|E0|", "config", "info bits", "max single info", "Lemma 5.10", "total bits"],
    );
    let sizes: &[usize] = if quick { &[48, 96] } else { &[64, 128, 256] };
    for &n in sizes {
        let graph = gen::complete(n);
        for (name, config) in [
            ("paper", Config::paper()),
            ("fetch all", Config::without_balanced_queries()),
        ] {
            let mut d = Discovery::with_config(&graph, Variant::Oblivious, config);
            d.run_all(&mut RandomScheduler::seeded(21 + n as u64))
                .expect("run livelocked");
            d.check_requirements(&graph).expect("requirements violated");
            let m = d.runner().metrics();
            let info = m.kind("info");
            let verdict = match budgets::check_lemma_5_10(m, n as u64) {
                Ok(()) => "holds",
                Err(_) => "VIOLATED",
            };
            t.push_row(vec![
                n.to_string(),
                graph.edge_count().to_string(),
                name.to_string(),
                info.bits.to_string(),
                info.max_bits.to_string(),
                verdict.to_string(),
                m.total_bits().to_string(),
            ]);
        }
    }
    t.push_note("fetch-all drains whole local sets into unbounded unexplored sets, which conquered leaders then re-ship: info bits break the 4n·log²n budget (and grow ~quadratically), exactly what the balanced rule prevents");
    t
}

/// A3 — ablation: union-find policy variants (context for the Theorem 2/6
/// connection).
pub fn a3_union_find_variants(quick: bool) -> Table {
    let mut t = Table::new(
        "a3",
        "Ablation — Tarjan union-find policies on the reduction's op sequences",
        &["n", "policy", "pointer traversals", "traversals/op"],
    );
    let sizes: &[usize] = if quick {
        &[1 << 10]
    } else {
        &[1 << 10, 1 << 12, 1 << 14]
    };
    for &n in sizes {
        let seq = OpSequence::adversarial_deep(n, n / 4);
        let ops = seq.len() as f64;
        let policies = [
            ("rank+compress", UnionPolicy::ByRank, Compression::Full),
            ("size+compress", UnionPolicy::BySize, Compression::Full),
            ("rank+halving", UnionPolicy::ByRank, Compression::Halving),
            ("rank only", UnionPolicy::ByRank, Compression::Off),
            ("compress only", UnionPolicy::Naive, Compression::Full),
            ("naive", UnionPolicy::Naive, Compression::Off),
        ];
        for (name, up, cp) in policies {
            let mut uf = UnionFind::with_policies(seq.n(), up, cp);
            seq.run(&mut uf);
            t.push_row(vec![
                seq.n().to_string(),
                name.to_string(),
                uf.traversals().to_string(),
                format!("{:.2}", uf.traversals() as f64 / ops),
            ]);
        }
    }
    t.push_note("rank+compression achieves O(α) amortized — the data-structure twin of the Ad-hoc algorithm's message bound; naive policies degrade toward the log/linear regimes");
    t
}

/// Helper for tests: a tiny representative metrics run.
pub fn quick_metrics() -> Metrics {
    let (d, _) = run_once(32, 64, Variant::Oblivious, Config::paper(), 1);
    d.runner().metrics().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table_renders_in_quick_mode() {
        for table in crate::all_tables(true) {
            let s = table.render();
            assert!(s.contains(&table.id.to_uppercase()), "{}", table.id);
            assert!(!table.rows.is_empty(), "{} has no rows", table.id);
        }
    }

    #[test]
    fn table_lookup_by_id() {
        assert!(crate::table_by_id("e5", true).is_some());
        assert!(crate::table_by_id("F1", true).is_some());
        assert!(crate::table_by_id("zz", true).is_none());
    }

    #[test]
    fn quick_metrics_nonempty() {
        let m = quick_metrics();
        assert!(m.total_messages() > 0);
    }

    /// `--jobs N` must be a pure wall-clock knob: the sweep tables render
    /// byte-identically at any worker count.
    #[test]
    fn sweep_tables_are_identical_across_job_counts() {
        let before = crate::parallel::jobs();
        crate::parallel::set_jobs(1);
        let sequential = e1_generic_messages(true).render();
        crate::parallel::set_jobs(4);
        let parallelized = e1_generic_messages(true).render();
        crate::parallel::set_jobs(before);
        assert_eq!(sequential, parallelized);
    }
}
