//! Explorer-throughput measurement: DFS schedules/sec of the
//! interleaving explorer on a pinned planted-race workload.
//!
//! The workload is the racy fixture in benchmark (violation-tolerant)
//! mode — six clients racing a coordinator, every run 13 scheduler
//! choices long — explored by branch-point DFS at depth 13, so the search
//! runs to its full budget instead of stopping at the first race. Each
//! event carries [`EXPLORE_SPIN`] rounds of deterministic per-event
//! compute (the fixture's `spin` knob), weighting the workload like a
//! protocol whose handlers do real work; that is what makes prefix
//! *re-execution* the dominant cost checkpoint/fork exists to remove. The
//! sweep crosses worker counts with checkpoint/fork prefix reuse on and
//! off; the `(jobs = 1, checkpoint = off)` cell is the pre-parallel
//! sequential engine and the baseline every speedup is relative to.
//! Results are byte-identical across the whole grid (the explorer
//! guarantees it; [`measure`] asserts it), so the grid measures pure
//! engine cost. This is the metric `BENCH_explore.json` records;
//! regenerate it with `scripts/bench.sh` (or `tables --bench-explore`).

use std::time::Instant;

use ard_netsim::explore::{explore_fork, fixtures, ExploreConfig, ExploreReport, ReduceMode};

/// Worker counts the explorer sweep covers.
pub const EXPLORE_JOBS: [usize; 4] = [1, 2, 4, 8];

/// DFS budget of the pinned workload (number of schedules executed).
pub const EXPLORE_BUDGET: u64 = 2_000;

/// Racing clients in the pinned workload: runs are `2 * 6 + 1 = 13`
/// scheduler choices long.
pub const EXPLORE_CLIENTS: usize = 6;

/// DFS branch-point depth of the pinned workload — the full run length,
/// so every decision of every schedule is in the search space.
pub const EXPLORE_DEPTH: usize = 13;

/// Per-event compute weight of the pinned workload (mixing rounds).
pub const EXPLORE_SPIN: u32 = 40_000;

/// Run cap of the reduction comparison: generous enough for the reduced
/// search to drain its whole frontier at depth 13, and the honest lower
/// bound on the full search's interleaving count when it runs out.
pub const REDUCTION_BUDGET: u64 = 100_000;

/// Per-event compute weight of the reduction comparison. The reduction
/// metric is search-space *size*, not handler cost, so the workload runs
/// light — the grid above already measures re-execution cost.
pub const REDUCTION_SPIN: u32 = 10;

/// One measured `(jobs, checkpoint)` cell of the explorer grid.
#[derive(Clone, Debug)]
pub struct ExplorePoint {
    /// Worker threads the explorer ran with.
    pub jobs: usize,
    /// Whether checkpoint/fork prefix reuse was enabled.
    pub checkpoint: bool,
    /// Schedules executed (identical across the grid).
    pub runs: u64,
    /// Best wall-clock seconds over the measured repetitions.
    pub secs: f64,
    /// `runs / secs` for the best repetition.
    pub runs_per_sec: f64,
    /// Wall-clock speedup vs the `(jobs = 1, checkpoint = off)` baseline.
    pub speedup: f64,
}

/// Runs the pinned workload once and returns its report.
pub fn run_workload(budget: u64, jobs: usize, checkpoint: bool) -> ExploreReport {
    run_workload_spin(budget, jobs, checkpoint, EXPLORE_SPIN)
}

/// [`run_workload`] with an explicit per-event compute weight (the unit
/// tests use a light one so debug builds stay fast).
pub fn run_workload_spin(budget: u64, jobs: usize, checkpoint: bool, spin: u32) -> ExploreReport {
    let config = ExploreConfig {
        random_walks: 0,
        dfs_budget: budget,
        dfs_depth: EXPLORE_DEPTH,
        seed: 0,
        fault: None,
        byzantine: None,
        churn: None,
        jobs,
        checkpoint,
        verify_snapshots: false,
        reduce: ReduceMode::None,
    };
    explore_fork(
        &config,
        &fixtures::RacySystem::tolerant(EXPLORE_CLIENTS).spin(spin),
    )
}

/// Measures the full `(checkpoint, jobs)` grid at the given budget,
/// taking the best of `reps` repetitions per cell.
///
/// # Panics
///
/// Panics if any cell's report diverges from the sequential baseline —
/// the explorer's byte-identical-results contract failing is a bug worth
/// stopping a benchmark run for.
pub fn measure(budget: u64, reps: u32) -> Vec<ExplorePoint> {
    measure_spin(budget, reps, EXPLORE_SPIN)
}

/// [`measure`] with an explicit per-event compute weight.
///
/// # Panics
///
/// Panics on result divergence, as [`measure`] does.
pub fn measure_spin(budget: u64, reps: u32, spin: u32) -> Vec<ExplorePoint> {
    let baseline_runs = run_workload_spin(budget, 1, false, spin).runs;
    let mut points = Vec::new();
    let mut baseline_secs = f64::INFINITY;
    for checkpoint in [false, true] {
        for jobs in EXPLORE_JOBS {
            let mut best_secs = f64::INFINITY;
            let mut runs = 0u64;
            for _ in 0..reps.max(1) {
                let start = Instant::now();
                let report = run_workload_spin(budget, jobs, checkpoint, spin);
                let secs = start.elapsed().as_secs_f64();
                assert!(
                    report.failure.is_none() && report.runs == baseline_runs,
                    "explorer results diverged at jobs={jobs} checkpoint={checkpoint}"
                );
                runs = report.runs;
                best_secs = best_secs.min(secs);
            }
            if !checkpoint && jobs == 1 {
                baseline_secs = best_secs;
            }
            points.push(ExplorePoint {
                jobs,
                checkpoint,
                runs,
                secs: best_secs,
                runs_per_sec: runs as f64 / best_secs,
                speedup: baseline_secs / best_secs,
            });
        }
    }
    points
}

/// Reduced-vs-full comparison on the pinned depth-13 workload: the number
/// of interleavings each mode executes before stopping, at the same cap.
#[derive(Clone, Debug)]
pub struct ReductionPoint {
    /// DFS branch-point depth of the comparison (the full run length).
    pub depth: usize,
    /// Run cap both modes were given.
    pub budget: u64,
    /// Interleavings the unreduced DFS executed.
    pub full_runs: u64,
    /// Why the unreduced DFS stopped (`budget exhausted` means
    /// `full_runs` is a lower bound on the true interleaving count).
    pub full_stop: String,
    /// Wall-clock seconds of the unreduced search.
    pub full_secs: f64,
    /// Interleavings the sleep-set-reduced DFS executed.
    pub reduced_runs: u64,
    /// Why the reduced DFS stopped (`frontier exhausted` means the
    /// reduced search covered every equivalence class).
    pub reduced_stop: String,
    /// Wall-clock seconds of the reduced search.
    pub reduced_secs: f64,
    /// Sibling branches skipped by sleep sets.
    pub sleep_pruned: u64,
    /// Branches cut by terminal/branch state-hash dedup.
    pub digest_deduped: u64,
    /// `full_runs / reduced_runs` — at least this many times fewer
    /// interleavings explored under reduction.
    pub ratio: f64,
}

/// Measures [`ReductionPoint`] on the pinned workload at `budget` runs per
/// mode.
///
/// The budget must be generous — large enough for the *reduced* search to
/// drain its frontier (`reduced_stop` = `frontier exhausted`); the full
/// search is expected to hit it, making `full_runs` a lower bound and
/// `ratio` an "at least this much" figure.
///
/// # Panics
///
/// Panics if either mode reports a violation — the tolerant workload has
/// none, so the two modes' violation sets must both be empty.
pub fn measure_reduction(budget: u64, spin: u32) -> ReductionPoint {
    measure_reduction_spec(budget, spin, EXPLORE_CLIENTS, EXPLORE_DEPTH)
}

/// [`measure_reduction`] with explicit client count and DFS depth (the
/// unit tests use a small workload whose frontiers drain in debug builds).
///
/// # Panics
///
/// Panics on a violation, as [`measure_reduction`] does.
pub fn measure_reduction_spec(budget: u64, spin: u32, clients: usize, depth: usize) -> ReductionPoint {
    let config = ExploreConfig {
        random_walks: 0,
        dfs_budget: budget,
        dfs_depth: depth,
        seed: 0,
        fault: None,
        byzantine: None,
        churn: None,
        jobs: 1,
        checkpoint: true,
        verify_snapshots: false,
        reduce: ReduceMode::None,
    };
    let system = fixtures::RacySystem::tolerant(clients).spin(spin);
    let start = Instant::now();
    let full = explore_fork(&config, &system);
    let full_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let reduced = explore_fork(
        &ExploreConfig {
            reduce: ReduceMode::Sleep,
            ..config
        },
        &system,
    );
    let reduced_secs = start.elapsed().as_secs_f64();
    assert!(
        full.failure.is_none() && reduced.failure.is_none(),
        "the tolerant workload has no violations; the modes' violation sets must match"
    );
    ReductionPoint {
        depth,
        budget,
        full_runs: full.runs,
        full_stop: full.stop.to_string(),
        full_secs,
        reduced_runs: reduced.runs,
        reduced_stop: reduced.stop.to_string(),
        reduced_secs,
        sleep_pruned: reduced.sleep_pruned,
        digest_deduped: reduced.digest_deduped,
        ratio: full.runs as f64 / reduced.runs.max(1) as f64,
    }
}

/// Renders the points as the `BENCH_explore.json` document.
pub fn to_json(points: &[ExplorePoint], reduction: &ReductionPoint) -> String {
    let mut out = String::from(
        "{\n  \"metric\": \"explore_runs_per_sec\",\n  \"workload\": \"dfs depth 13 over racy:6 (tolerant, spin 40000), baseline jobs=1 no checkpoint\",\n  \"points\": [\n",
    );
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"jobs\": {}, \"checkpoint\": {}, \"runs\": {}, \"secs\": {:.6}, \"runs_per_sec\": {:.0}, \"speedup\": {:.2}}}{}\n",
            p.jobs,
            p.checkpoint,
            p.runs,
            p.secs,
            p.runs_per_sec,
            p.speedup,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    let r = reduction;
    out.push_str(&format!(
        "  \"reduction\": {{\n    \"workload\": \"dfs depth {} over racy:{} (tolerant, spin {}), budget {} per mode\",\n    \"full_runs\": {},\n    \"full_stop\": \"{}\",\n    \"full_secs\": {:.6},\n    \"reduced_runs\": {},\n    \"reduced_stop\": \"{}\",\n    \"reduced_secs\": {:.6},\n    \"sleep_pruned\": {},\n    \"digest_deduped\": {},\n    \"ratio\": {:.1}\n  }}\n",
        r.depth,
        EXPLORE_CLIENTS,
        REDUCTION_SPIN,
        r.budget,
        r.full_runs,
        r.full_stop,
        r.full_secs,
        r.reduced_runs,
        r.reduced_stop,
        r.reduced_secs,
        r.sleep_pruned,
        r.digest_deduped,
        r.ratio,
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_covers_the_grid_and_agrees_with_the_baseline() {
        let points = measure_spin(64, 1, 10);
        assert_eq!(points.len(), 2 * EXPLORE_JOBS.len());
        let runs = points[0].runs;
        for p in &points {
            assert_eq!(p.runs, runs);
            assert!(p.runs_per_sec > 0.0);
            assert!(p.speedup > 0.0);
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let points = measure_spin(32, 1, 10);
        let reduction = measure_reduction_spec(10_000, 10, 3, 7);
        let json = to_json(&points, &reduction);
        assert!(json.starts_with('{') && json.ends_with("}\n"));
        assert_eq!(json.matches("\"checkpoint\"").count(), points.len());
        assert!(!json.contains(",\n  ]"), "no trailing comma:\n{json}");
        assert!(json.contains("\"reduction\""), "reduction section:\n{json}");
        assert!(json.contains("\"ratio\""), "ratio recorded:\n{json}");
    }

    #[test]
    fn reduction_explores_fewer_interleavings_with_no_violations() {
        let r = measure_reduction_spec(10_000, 10, 3, 7);
        assert_eq!(r.depth, 7);
        assert!(
            r.reduced_runs < r.full_runs,
            "reduced {} !< full {}",
            r.reduced_runs,
            r.full_runs
        );
        assert!(r.sleep_pruned > 0);
        assert!(r.ratio > 1.0);
    }

    #[test]
    fn workload_is_deterministic() {
        let a = run_workload_spin(48, 1, false, 10);
        let b = run_workload_spin(48, 4, true, 10);
        assert_eq!(a.runs, b.runs);
        assert!(a.failure.is_none() && b.failure.is_none());
    }
}
