//! Criterion explorer bench: DFS schedules/sec on the pinned planted-race
//! workload, the wall-clock companion to `BENCH_explore.json` (regenerate
//! that with `scripts/bench.sh`).
//!
//! Each iteration runs one full exploration — branch-point DFS at depth 13
//! over the violation-tolerant racy fixture — for every `(jobs,
//! checkpoint)` cell of the scaling grid. Throughput is reported in
//! explored schedules per second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ard_bench::explorebench::{run_workload, EXPLORE_JOBS};

fn bench_explore(c: &mut Criterion) {
    let budget = 400;
    let runs = run_workload(budget, 1, false).runs;
    let mut group = c.benchmark_group("explore_throughput");
    group.sample_size(10);
    for checkpoint in [false, true] {
        for jobs in EXPLORE_JOBS {
            group.throughput(Throughput::Elements(runs));
            let label = if checkpoint { "checkpoint" } else { "scratch" };
            group.bench_with_input(BenchmarkId::new(label, jobs), &jobs, |b, &jobs| {
                b.iter(|| std::hint::black_box(run_workload(budget, jobs, checkpoint).runs));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
