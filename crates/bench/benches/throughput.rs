//! Criterion throughput bench: simulator events/sec on the generic
//! (Oblivious) algorithm, the wall-clock companion to
//! `BENCH_throughput.json` (regenerate that with `scripts/bench.sh`).
//!
//! Each iteration runs one full discovery to quiescence on a pre-built
//! random `G(n, 3n)` graph; throughput is reported in simulator events
//! (wake-ups + deliveries) per second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ard_bench::throughput::run_events;
use ard_core::{Discovery, Variant};
use ard_graph::gen;
use ard_netsim::{FifoScheduler, RandomScheduler, Scheduler};

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("events_per_sec");
    group.sample_size(10);
    // The JSON sweep (`tables --bench-throughput`) covers the large tail
    // with single repetitions; criterion's 10-sample statistics at n = 10⁶
    // would take an hour for no extra signal.
    for n in ard_bench::throughput::THROUGHPUT_SIZES
        .into_iter()
        .filter(|&n| n <= ard_bench::throughput::SINGLE_REP_ABOVE)
    {
        let graph = gen::random_weakly_connected(n, 2 * n, n as u64);
        for scheduler in ["fifo", "random"] {
            group.throughput(Throughput::Elements(run_events(n, scheduler)));
            group.bench_with_input(
                BenchmarkId::new(scheduler, n),
                &graph,
                |b, graph| {
                    b.iter(|| {
                        let mut sched: Box<dyn Scheduler> = match scheduler {
                            "fifo" => Box::new(FifoScheduler::new()),
                            _ => Box::new(RandomScheduler::seeded(n as u64 ^ 0xa5a5)),
                        };
                        let mut d = Discovery::new(graph, Variant::Oblivious);
                        d.run_all(sched.as_mut()).expect("livelock");
                        std::hint::black_box(d.runner().steps_executed())
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
