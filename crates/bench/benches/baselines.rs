//! Criterion benches comparing the paper's algorithms against the §1.1
//! baselines on identical topologies (wall-clock companion to table E9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ard_baselines::{flood, name_dropper};
use ard_core::{Discovery, Variant};
use ard_graph::gen;
use ard_netsim::RandomScheduler;

fn bench_baseline_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_comparison");
    group.sample_size(10);
    let n = 256;
    let graph = gen::random_weakly_connected(n, 2 * n, 7);

    group.bench_function(BenchmarkId::new("abraham_dolev_adhoc", n), |b| {
        b.iter(|| {
            let mut d = Discovery::new(&graph, Variant::AdHoc);
            let mut sched = RandomScheduler::seeded(1);
            std::hint::black_box(
                d.run_all(&mut sched)
                    .expect("livelock")
                    .metrics
                    .total_messages(),
            )
        });
    });
    group.bench_function(BenchmarkId::new("name_dropper", n), |b| {
        b.iter(|| std::hint::black_box(name_dropper::run(&graph, 1).metrics().total_messages()));
    });
    group.bench_function(BenchmarkId::new("flooding", n), |b| {
        b.iter(|| {
            let mut sched = RandomScheduler::seeded(1);
            let (runner, _) = flood::run(&graph, &mut sched, 100_000_000).expect("livelock");
            std::hint::black_box(runner.metrics().total_messages())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_baseline_comparison);
criterion_main!(benches);
