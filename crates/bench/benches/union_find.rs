//! Criterion benches for the union-find substrate (ablation A3's wall-clock
//! companion): policy variants over random and adversarial op sequences.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ard_union_find::{Compression, OpSequence, UnionFind, UnionPolicy};

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("union_find");
    group.sample_size(10);
    let n = 1 << 14;
    let random = OpSequence::random(n, n, 3);
    let adversarial = OpSequence::adversarial_deep(n, n / 4);
    let policies = [
        ("rank_compress", UnionPolicy::ByRank, Compression::Full),
        ("rank_halving", UnionPolicy::ByRank, Compression::Halving),
        ("rank_only", UnionPolicy::ByRank, Compression::Off),
        ("naive", UnionPolicy::Naive, Compression::Off),
    ];
    for (seq_name, seq) in [("random", &random), ("adversarial", &adversarial)] {
        for (policy_name, up, cp) in policies {
            let id = BenchmarkId::new(policy_name, seq_name);
            group.bench_with_input(id, seq, |b, seq| {
                b.iter(|| {
                    let mut uf = UnionFind::with_policies(seq.n(), up, cp);
                    seq.run(&mut uf);
                    std::hint::black_box(uf.traversals())
                });
            });
        }
    }
    group.finish();
}

fn bench_reduction_compile(c: &mut Criterion) {
    let seq = OpSequence::random(1 << 10, 1 << 9, 5);
    c.bench_function("uf_reduction_compile", |b| {
        b.iter(|| std::hint::black_box(ard_lower_bounds::uf_reduction::compile(&seq).graph.len()));
    });
}

criterion_group!(benches, bench_policies, bench_reduction_compile);
criterion_main!(benches);
