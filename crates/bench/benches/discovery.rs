//! Criterion benches for full discovery runs — wall-clock companions to the
//! message-count tables E1–E3 (one bench group per variant) plus the E5
//! adversarial tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ard_core::{Discovery, Variant};
use ard_graph::gen;
use ard_lower_bounds::tree_adversary;
use ard_netsim::RandomScheduler;

fn bench_variants(c: &mut Criterion) {
    for (group_name, variant) in [
        ("generic_messages", Variant::Oblivious),
        ("bounded_messages", Variant::Bounded),
        ("adhoc_messages", Variant::AdHoc),
    ] {
        let mut group = c.benchmark_group(group_name);
        group.sample_size(10);
        for n in [64usize, 256, 1024] {
            let graph = gen::random_weakly_connected(n, 2 * n, n as u64);
            group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
                b.iter(|| {
                    let mut d = Discovery::new(graph, variant);
                    let mut sched = RandomScheduler::seeded(n as u64);
                    let outcome = d.run_all(&mut sched).expect("livelock");
                    std::hint::black_box(outcome.metrics.total_messages())
                });
            });
        }
        group.finish();
    }
}

fn bench_tree_adversary(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_adversary");
    group.sample_size(10);
    for levels in [6u32, 8, 10] {
        group.bench_with_input(
            BenchmarkId::from_parameter(levels),
            &levels,
            |b, &levels| {
                b.iter(|| std::hint::black_box(tree_adversary::run(levels).messages));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_variants, bench_tree_adversary);
criterion_main!(benches);
