//! Property-based tests of the overlay: routing always agrees with the
//! offline oracle and the store behaves like a map, for arbitrary
//! memberships, keys and schedules.

use proptest::prelude::*;

use ard_netsim::{Envelope, NodeId, RandomScheduler};
use ard_overlay::{bootstrap, key_of, Key, OverlayMessage, RingTable};

use std::collections::{BTreeSet, HashMap};

fn arbitrary_members() -> impl Strategy<Value = Vec<NodeId>> {
    prop::collection::btree_set(0usize..500, 1..40)
        .prop_map(|set| set.into_iter().map(NodeId::new).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Distributed lookups always return the oracle owner.
    #[test]
    fn lookups_match_oracle(
        members in arbitrary_members(),
        raw_keys in prop::collection::vec(any::<u64>(), 1..12),
        seed in 0u64..100_000,
    ) {
        let mut overlay = bootstrap(&members);
        let mut sched = RandomScheduler::seeded(seed);
        for (i, raw) in raw_keys.iter().enumerate() {
            let key = Key::new(*raw);
            let from = members[i % members.len()];
            let r = overlay.lookup_blocking(from, key, &mut sched).unwrap();
            prop_assert_eq!(r.owner, overlay.ring().owner(key));
        }
    }

    /// The store behaves exactly like a `HashMap` oracle under arbitrary
    /// interleavings of puts and gets from arbitrary members.
    #[test]
    fn store_matches_map_oracle(
        members in arbitrary_members(),
        ops in prop::collection::vec((any::<u64>(), any::<u64>(), any::<bool>(), 0usize..40), 1..25),
        seed in 0u64..100_000,
    ) {
        let mut overlay = bootstrap(&members);
        let mut sched = RandomScheduler::seeded(seed);
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        for (raw, value, is_put, who) in ops {
            let from = members[who % members.len()];
            // Bucket keys so puts and gets actually collide sometimes.
            let raw = raw % 16;
            let key = Key::new(raw);
            if is_put {
                overlay.put_blocking(from, key, value, &mut sched).unwrap();
                oracle.insert(raw, value);
            } else {
                let got = overlay.get_blocking(from, key, &mut sched).unwrap();
                prop_assert_eq!(got.value, oracle.get(&raw).copied());
            }
        }
        prop_assert_eq!(overlay.stored_total(), oracle.len());
    }

    /// Ring placement invariants: distinct keys, closed successor cycle,
    /// owner is idempotent under re-bootstrap.
    #[test]
    fn ring_invariants(members in arbitrary_members()) {
        let ring = RingTable::new(&members);
        let keys: BTreeSet<Key> = members.iter().map(|&m| key_of(m)).collect();
        prop_assert_eq!(keys.len(), members.len());
        // Successor cycle visits everyone exactly once.
        let start = members[0];
        let mut cur = start;
        let mut visited = BTreeSet::new();
        loop {
            prop_assert!(visited.insert(cur));
            cur = ring.successor_of(cur);
            if cur == start {
                break;
            }
        }
        prop_assert_eq!(visited.len(), members.len());
        // Stability: a rebuilt ring owns identically.
        let ring2 = RingTable::new(&members);
        for probe in [0u64, u64::MAX / 2, u64::MAX] {
            prop_assert_eq!(ring.owner(Key::new(probe)), ring2.owner(Key::new(probe)));
        }
    }
}

// ---------------------------------------------------------------------
// Envelope visitor equivalence.
// ---------------------------------------------------------------------

fn arb_overlay_message() -> impl Strategy<Value = (OverlayMessage, Vec<NodeId>)> {
    let nid = || (0usize..512).prop_map(NodeId::new);
    prop_oneof![
        (any::<u64>(), nid(), any::<u32>()).prop_map(|(k, origin, hops)| (
            OverlayMessage::Lookup { key: Key::new(k), origin, hops },
            vec![origin]
        )),
        (any::<u64>(), nid(), any::<u32>()).prop_map(|(k, owner, hops)| (
            OverlayMessage::Found { key: Key::new(k), owner, hops },
            vec![owner]
        )),
        (any::<u64>(), any::<u64>(), nid(), any::<u32>(), any::<bool>()).prop_map(
            |(k, value, origin, hops, deliver)| (
                OverlayMessage::Put { key: Key::new(k), value, origin, hops, deliver },
                vec![origin]
            )
        ),
        (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(|(k, value, hops)| (
            OverlayMessage::PutAck { key: Key::new(k), value, hops },
            vec![]
        )),
        (any::<u64>(), nid(), any::<u32>(), any::<bool>()).prop_map(
            |(k, origin, hops, deliver)| (
                OverlayMessage::Get { key: Key::new(k), origin, hops, deliver },
                vec![origin]
            )
        ),
        (any::<u64>(), any::<u64>()).prop_map(|(k, value)| (
            OverlayMessage::Replicate { key: Key::new(k), value },
            vec![]
        )),
        (any::<u64>(), any::<bool>(), any::<u64>(), any::<u32>()).prop_map(
            |(k, some, value, hops)| (
                OverlayMessage::GetReply {
                    key: Key::new(k),
                    value: some.then_some(value),
                    hops,
                },
                vec![]
            )
        ),
    ]
}

proptest! {
    /// For every overlay message variant, the non-allocating visitor yields
    /// exactly the payload's ids in payload order, and the counting and
    /// `Vec`-collecting conveniences agree with it.
    #[test]
    fn overlay_visitor_yields_payload_ids((msg, expected) in arb_overlay_message()) {
        let mut visited = Vec::new();
        msg.for_each_carried_id(&mut |id| visited.push(id));
        prop_assert_eq!(&visited, &expected);
        prop_assert_eq!(msg.carried_ids(), expected);
        prop_assert_eq!(msg.carried_id_count(), visited.len());
    }
}
