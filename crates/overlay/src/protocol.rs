//! The asynchronous lookup protocol over the bootstrapped ring.

use std::collections::HashMap;

use ard_netsim::{Context, Envelope, LivelockError, NodeId, Protocol, Runner, Scheduler};

use crate::ring::{key_of, Key, RingTable};

/// Messages of the overlay protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OverlayMessage {
    /// A `find_successor(key)` request being routed greedily along fingers.
    Lookup {
        /// The key being resolved.
        key: Key,
        /// The node (dense overlay index) that issued the lookup.
        origin: NodeId,
        /// Hops taken so far.
        hops: u32,
    },
    /// The answer, sent directly to the origin (its id travelled with the
    /// lookup, so the knowledge graph allows the direct reply).
    Found {
        /// The key that was resolved.
        key: Key,
        /// The owner (dense overlay index): `successor(key)` on the ring.
        owner: NodeId,
        /// Total routing hops.
        hops: u32,
    },
    /// A store-write being routed to `key`'s owner.
    Put {
        /// The key to write.
        key: Key,
        /// The value blob.
        value: u64,
        /// The requesting node (dense overlay index).
        origin: NodeId,
        /// Hops taken so far.
        hops: u32,
        /// Set on the final hop: the receiver *is* the owner and must
        /// execute rather than route.
        deliver: bool,
    },
    /// Owner → origin: the write is durable.
    PutAck {
        /// The key written.
        key: Key,
        /// The value written (echoed for the caller's convenience).
        value: u64,
        /// Total routing hops.
        hops: u32,
    },
    /// A store-read being routed to `key`'s owner.
    Get {
        /// The key to read.
        key: Key,
        /// The requesting node (dense overlay index).
        origin: NodeId,
        /// Hops taken so far.
        hops: u32,
        /// Set on the final hop (see [`OverlayMessage::Put::deliver`]).
        deliver: bool,
    },
    /// Owner → its ring successor: a replica of a freshly written pair
    /// (the fault-tolerance machinery of [`crate::fault`]).
    Replicate {
        /// The key written.
        key: Key,
        /// The value written.
        value: u64,
    },
    /// Owner → origin: the read result.
    GetReply {
        /// The key read.
        key: Key,
        /// The stored value, if any.
        value: Option<u64>,
        /// Total routing hops.
        hops: u32,
    },
}

impl Envelope for OverlayMessage {
    fn kind(&self) -> &'static str {
        match self {
            OverlayMessage::Lookup { .. } => "lookup",
            OverlayMessage::Found { .. } => "found",
            OverlayMessage::Put { .. } => "put",
            OverlayMessage::PutAck { .. } => "put ack",
            OverlayMessage::Get { .. } => "get",
            OverlayMessage::Replicate { .. } => "replicate",
            OverlayMessage::GetReply { .. } => "get reply",
        }
    }
    fn for_each_carried_id(&self, f: &mut dyn FnMut(NodeId)) {
        match self {
            OverlayMessage::Lookup { origin, .. }
            | OverlayMessage::Put { origin, .. }
            | OverlayMessage::Get { origin, .. } => f(*origin),
            OverlayMessage::Found { owner, .. } => f(*owner),
            OverlayMessage::PutAck { .. }
            | OverlayMessage::GetReply { .. }
            | OverlayMessage::Replicate { .. } => {}
        }
    }
    fn aux_bits(&self) -> u64 {
        match self {
            OverlayMessage::Lookup { .. } | OverlayMessage::Found { .. } => 64 + 8,
            OverlayMessage::Put { .. } | OverlayMessage::PutAck { .. } => 64 + 64 + 8 + 1,
            OverlayMessage::Replicate { .. } => 64 + 64,
            OverlayMessage::Get { .. } => 64 + 8 + 1,
            OverlayMessage::GetReply { .. } => 64 + 64 + 1 + 8,
        }
    }
}

/// One overlay node: its place on the circle, its successor, and its finger
/// table (all computed at bootstrap from the discovered membership).
#[derive(Debug)]
pub struct OverlayNode {
    id: NodeId,
    key: Key,
    successor: NodeId,
    successor_key: Key,
    /// `(key, node)` fingers sorted by key.
    fingers: Vec<(Key, NodeId)>,
    results: Vec<LookupResult>,
    /// The next ring successors (dense ids), for repair after failures.
    successor_list: Vec<(Key, NodeId)>,
    /// Whether this node has failed (blackholes all traffic).
    failed: bool,
    /// The key-value shard this node owns (raw key → value).
    store: std::collections::BTreeMap<u64, u64>,
    /// Replicas held on behalf of this node's ring predecessor.
    replicas: std::collections::BTreeMap<u64, u64>,
    /// Completed put/get operations issued by this node:
    /// `(key, value, hops)`.
    completed_store_ops: Vec<(Key, Option<u64>, u32)>,
}

/// A completed lookup, recorded at its origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LookupResult {
    /// The key that was resolved.
    pub key: Key,
    /// The owning member (original discovery-world id).
    pub owner: NodeId,
    /// Routing hops the request took.
    pub hops: u32,
}

impl OverlayNode {
    /// Greedy Chord routing: the finger whose key most closely *precedes*
    /// `key`, falling back to the successor.
    fn closest_preceding(&self, key: Key) -> NodeId {
        self.fingers
            .iter()
            .rev()
            .find(|&&(k, n)| n != self.id && k.in_interval(self.key, key) && k != key)
            .map(|&(_, n)| n)
            .unwrap_or(self.successor)
    }

    fn route(
        &mut self,
        key: Key,
        origin: NodeId,
        hops: u32,
        ctx: &mut Context<'_, OverlayMessage>,
    ) {
        if key.in_interval(self.key, self.successor_key) || self.successor == self.id {
            // The successor owns the key.
            let owner = if self.successor == self.id {
                self.id
            } else {
                self.successor
            };
            let found = OverlayMessage::Found { key, owner, hops };
            if origin == self.id {
                self.record(key, owner, hops);
            } else {
                ctx.send(origin, found);
            }
        } else {
            let next = self.closest_preceding(key);
            debug_assert_ne!(next, self.id);
            ctx.send(
                next,
                OverlayMessage::Lookup {
                    key,
                    origin,
                    hops: hops + 1,
                },
            );
        }
    }

    fn record(&mut self, key: Key, owner_dense: NodeId, hops: u32) {
        // `owner` is translated to the original id by `Overlay::lookup*`.
        self.results.push(LookupResult {
            key,
            owner: owner_dense,
            hops,
        });
    }

    /// Number of key-value pairs this node currently stores (primary
    /// copies only; replicas are counted separately).
    pub fn store_len(&self) -> usize {
        self.store.len()
    }

    /// Number of replica pairs held for this node's ring predecessor.
    pub fn replica_len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether this node has been failed.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    pub(crate) fn mark_failed(&mut self) {
        self.failed = true;
    }

    /// Whether this node would still have a live successor after `failed`
    /// members die — the validation half of stabilization, run before any
    /// state is mutated so an over-tolerance failure pattern can be
    /// rejected wholesale (see [`StabilizeError`](crate::fault::StabilizeError)).
    pub(crate) fn successor_survives(&self, failed: &std::collections::BTreeSet<NodeId>) -> bool {
        !failed.contains(&self.successor)
            || self.successor_list.iter().any(|(_, s)| !failed.contains(s))
    }

    /// Repairs this node after `failed` members died: adopt the first live
    /// successor-list entry and drop dead fingers. Returns whether anything
    /// changed.
    ///
    /// # Panics
    ///
    /// Panics if the entire successor list is dead; unreachable when
    /// callers validate with [`Self::successor_survives`] first.
    pub(crate) fn stabilize(&mut self, failed: &std::collections::BTreeSet<NodeId>) -> bool {
        let mut changed = false;
        if failed.contains(&self.successor) {
            let (k, s) = *self
                .successor_list
                .iter()
                .find(|(_, s)| !failed.contains(s))
                .expect("successor list exhausted: too many consecutive ring deaths");
            self.successor = s;
            self.successor_key = k;
            changed = true;
        }
        let before = self.fingers.len();
        self.fingers.retain(|(_, n)| !failed.contains(n));
        changed || self.fingers.len() != before
    }

    pub(crate) fn completed_store_ops(&self) -> &[(Key, Option<u64>, u32)] {
        &self.completed_store_ops
    }

    /// Routes a put/get toward its key's owner (or executes it if this node
    /// is the owner).
    pub(crate) fn route_store(
        &mut self,
        msg: OverlayMessage,
        ctx: &mut Context<'_, OverlayMessage>,
    ) {
        let (key, origin, hops, deliver) = match &msg {
            OverlayMessage::Put {
                key,
                origin,
                hops,
                deliver,
                ..
            }
            | OverlayMessage::Get {
                key,
                origin,
                hops,
                deliver,
                ..
            } => (*key, *origin, *hops, *deliver),
            other => unreachable!("route_store got {other:?}"),
        };
        if deliver || self.successor == self.id {
            self.execute_store(msg, ctx);
            return;
        }
        if key.in_interval(self.key, self.successor_key) {
            // The successor owns the key: final hop.
            let final_msg = match msg {
                OverlayMessage::Put {
                    key,
                    value,
                    origin,
                    hops,
                    ..
                } => OverlayMessage::Put {
                    key,
                    value,
                    origin,
                    hops: hops + 1,
                    deliver: true,
                },
                OverlayMessage::Get {
                    key, origin, hops, ..
                } => OverlayMessage::Get {
                    key,
                    origin,
                    hops: hops + 1,
                    deliver: true,
                },
                _ => unreachable!(),
            };
            ctx.send(self.successor, final_msg);
        } else {
            let next = self.closest_preceding(key);
            debug_assert_ne!(next, self.id);
            let fwd = match msg {
                OverlayMessage::Put {
                    key,
                    value,
                    origin,
                    hops,
                    deliver,
                } => OverlayMessage::Put {
                    key,
                    value,
                    origin,
                    hops: hops + 1,
                    deliver,
                },
                OverlayMessage::Get {
                    key,
                    origin,
                    hops,
                    deliver,
                } => OverlayMessage::Get {
                    key,
                    origin,
                    hops: hops + 1,
                    deliver,
                },
                _ => unreachable!(),
            };
            ctx.send(next, fwd);
        }
        let _ = (origin, hops);
    }

    /// Executes a put/get as the key's owner and answers the origin.
    fn execute_store(&mut self, msg: OverlayMessage, ctx: &mut Context<'_, OverlayMessage>) {
        match msg {
            OverlayMessage::Put {
                key,
                value,
                origin,
                hops,
                ..
            } => {
                self.store.insert(key.raw(), value);
                // Fault tolerance: mirror the pair to the ring successor.
                if self.successor != self.id {
                    ctx.send(self.successor, OverlayMessage::Replicate { key, value });
                }
                if origin == self.id {
                    self.completed_store_ops.push((key, Some(value), hops));
                } else {
                    ctx.send(origin, OverlayMessage::PutAck { key, value, hops });
                }
            }
            OverlayMessage::Get {
                key, origin, hops, ..
            } => {
                // Primary copy first; fall back to a replica inherited from
                // a dead predecessor.
                let value = self
                    .store
                    .get(&key.raw())
                    .or_else(|| self.replicas.get(&key.raw()))
                    .copied();
                if origin == self.id {
                    self.completed_store_ops.push((key, value, hops));
                } else {
                    ctx.send(origin, OverlayMessage::GetReply { key, value, hops });
                }
            }
            other => unreachable!("execute_store got {other:?}"),
        }
    }
}

impl Protocol for OverlayNode {
    type Message = OverlayMessage;

    fn on_wake(&mut self, _ctx: &mut Context<'_, OverlayMessage>) {
        // Overlay nodes are passive servers; lookups are injected by the
        // driver and routing work arrives as messages.
    }

    fn on_message(
        &mut self,
        _from: NodeId,
        msg: OverlayMessage,
        ctx: &mut Context<'_, OverlayMessage>,
    ) {
        if self.failed {
            // A dead node: traffic addressed to it is lost.
            return;
        }
        match msg {
            OverlayMessage::Lookup { key, origin, hops } => self.route(key, origin, hops, ctx),
            OverlayMessage::Replicate { key, value } => {
                self.replicas.insert(key.raw(), value);
            }
            OverlayMessage::Found { key, owner, hops } => self.record(key, owner, hops),
            m @ (OverlayMessage::Put { .. } | OverlayMessage::Get { .. }) => {
                self.route_store(m, ctx)
            }
            OverlayMessage::PutAck { key, value, hops } => {
                self.completed_store_ops.push((key, Some(value), hops));
            }
            OverlayMessage::GetReply { key, value, hops } => {
                self.completed_store_ops.push((key, value, hops));
            }
        }
    }
}

/// The assembled overlay network.
///
/// Created by [`bootstrap`] from a discovered membership list; lookups are
/// issued through [`lookup_blocking`](Overlay::lookup_blocking) (or
/// [`lookup`](Overlay::lookup) plus manual stepping) and metered by the
/// underlying [`Metrics`](ard_netsim::Metrics).
pub struct Overlay {
    runner: Runner<OverlayNode>,
    members: Vec<NodeId>,
    dense_of: HashMap<NodeId, usize>,
    ring: RingTable,
}

/// Builds a ring overlay from a membership list (typically a discovery
/// leader's `done` set or a probe snapshot). Node placement hashes the
/// *original* ids, so the ring is stable across rebuilds.
///
/// # Panics
///
/// Panics on an empty or duplicate-containing membership.
pub fn bootstrap(members: &[NodeId]) -> Overlay {
    let ring = RingTable::new(members);
    let dense_of: HashMap<NodeId, usize> =
        members.iter().enumerate().map(|(i, &m)| (m, i)).collect();
    assert_eq!(dense_of.len(), members.len(), "duplicate member");
    let dense = |m: NodeId| NodeId::new(dense_of[&m]);

    let mut nodes = Vec::with_capacity(members.len());
    let mut knowledge = Vec::with_capacity(members.len());
    for &m in members {
        let successor = ring.successor_of(m);
        let mut fingers: Vec<(Key, NodeId)> = ring
            .fingers_of(m)
            .into_iter()
            .map(|(k, f)| (k, dense(f)))
            .collect();
        fingers.sort();
        // The successor list: the next SUCCESSOR_LIST_LEN distinct ring
        // successors (fewer on tiny rings).
        let mut successor_list: Vec<(Key, NodeId)> = Vec::new();
        let mut cur = m;
        for _ in 0..crate::fault::SUCCESSOR_LIST_LEN {
            cur = ring.successor_of(cur);
            if cur == m {
                break;
            }
            successor_list.push((key_of(cur), dense(cur)));
        }
        let mut known: Vec<NodeId> = fingers.iter().map(|&(_, f)| f).collect();
        known.push(dense(successor));
        known.extend(successor_list.iter().map(|&(_, s)| s));
        known.sort_unstable();
        known.dedup();
        known.retain(|&k| k != dense(m));
        nodes.push(OverlayNode {
            id: dense(m),
            key: key_of(m),
            successor: dense(successor),
            successor_key: key_of(successor),
            fingers,
            successor_list,
            failed: false,
            results: Vec::new(),
            store: std::collections::BTreeMap::new(),
            replicas: std::collections::BTreeMap::new(),
            completed_store_ops: Vec::new(),
        });
        knowledge.push(known);
    }
    Overlay {
        runner: Runner::new(nodes, knowledge),
        members: members.to_vec(),
        dense_of,
        ring,
    }
}

impl Overlay {
    /// Number of overlay members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the overlay has no members (never true once bootstrapped).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The offline routing oracle (for verification).
    pub fn ring(&self) -> &RingTable {
        &self.ring
    }

    /// The underlying simulator (metrics, tracing).
    pub fn runner(&self) -> &Runner<OverlayNode> {
        &self.runner
    }

    fn dense(&self, member: NodeId) -> NodeId {
        NodeId::new(*self.dense_of.get(&member).expect("not an overlay member"))
    }

    pub(crate) fn dense_id(&self, member: NodeId) -> NodeId {
        self.dense(member)
    }

    /// All members (original ids), in id order.
    pub fn members_vec(&self) -> &[NodeId] {
        &self.members
    }

    /// Mutable access to the underlying simulator.
    pub fn runner_mut(&mut self) -> &mut Runner<OverlayNode> {
        &mut self.runner
    }

    /// Runs the network to quiescence within a generous budget.
    pub(crate) fn drain(&mut self, sched: &mut dyn Scheduler) -> Result<(), LivelockError> {
        self.runner
            .run(sched, 64 * (self.len() as u64 + 2))
            .map(|_| ())
    }

    pub(crate) fn last_store_result(&self, from: NodeId) -> crate::store::StoreResult {
        let origin = self.dense(from);
        let &(key, value, hops) = self
            .runner
            .node(origin)
            .completed_store_ops()
            .last()
            .expect("store op answered at quiescence");
        crate::store::StoreResult { key, value, hops }
    }

    /// Injects a lookup for `key` at member `from` (original id); the
    /// request routes asynchronously under `sched`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a member.
    pub fn lookup(&mut self, from: NodeId, key: Key, sched: &mut dyn Scheduler) {
        let origin = self.dense(from);
        self.runner.exec(origin, sched, |node, ctx| {
            node.route(key, node.id, 0, ctx);
        });
    }

    /// Issues a lookup and runs the network to quiescence, returning the
    /// result (with `owner` translated back to the original id space).
    ///
    /// # Errors
    ///
    /// Returns [`LivelockError`] if routing does not quiesce (a protocol
    /// bug).
    pub fn lookup_blocking(
        &mut self,
        from: NodeId,
        key: Key,
        sched: &mut dyn Scheduler,
    ) -> Result<LookupResult, LivelockError> {
        self.lookup(from, key, sched);
        self.runner.run(sched, 64 * (self.len() as u64 + 2))?;
        let origin = self.dense(from);
        let mut result = *self
            .runner
            .node(origin)
            .results
            .last()
            .expect("lookup answered at quiescence");
        result.owner = self.members[result.owner.index()];
        Ok(result)
    }

    /// All completed lookups recorded at `from`, owners translated to
    /// original ids.
    pub fn results_of(&self, from: NodeId) -> Vec<LookupResult> {
        let origin = self.dense(from);
        self.runner
            .node(origin)
            .results
            .iter()
            .map(|r| LookupResult {
                owner: self.members[r.owner.index()],
                ..*r
            })
            .collect()
    }
}

impl std::fmt::Debug for Overlay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Overlay({} members)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ard_netsim::{FifoScheduler, RandomScheduler};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn members(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn lookups_agree_with_the_oracle() {
        let m = members(64);
        let mut overlay = bootstrap(&m);
        let mut sched = RandomScheduler::seeded(1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let key = Key::new(rng.gen());
            let from = m[rng.gen_range(0..m.len())];
            let result = overlay.lookup_blocking(from, key, &mut sched).unwrap();
            assert_eq!(result.owner, overlay.ring().owner(key), "key {key}");
        }
    }

    #[test]
    fn hops_are_logarithmic() {
        let m = members(256);
        let mut overlay = bootstrap(&m);
        let mut sched = FifoScheduler::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut worst = 0;
        let mut total = 0u64;
        let trials = 200;
        for _ in 0..trials {
            let key = Key::new(rng.gen());
            let from = m[rng.gen_range(0..m.len())];
            let r = overlay.lookup_blocking(from, key, &mut sched).unwrap();
            worst = worst.max(r.hops);
            total += u64::from(r.hops);
        }
        // log₂ 256 = 8; greedy finger routing halves distance per hop.
        assert!(worst <= 2 * 8, "worst hops {worst}");
        assert!(total / trials <= 8, "avg hops {}", total / trials);
    }

    #[test]
    fn singleton_overlay_answers_itself() {
        let m = members(1);
        let mut overlay = bootstrap(&m);
        let mut sched = FifoScheduler::new();
        let r = overlay
            .lookup_blocking(m[0], Key::new(42), &mut sched)
            .unwrap();
        assert_eq!(r.owner, m[0]);
        assert_eq!(r.hops, 0);
        assert_eq!(overlay.runner().metrics().total_messages(), 0);
    }

    #[test]
    fn sparse_original_ids_are_supported() {
        // Membership with gaps (survivors of a crash).
        let m: Vec<NodeId> = (0..40).step_by(3).map(NodeId::new).collect();
        let mut overlay = bootstrap(&m);
        let mut sched = RandomScheduler::seeded(5);
        for raw in [0u64, u64::MAX / 3, u64::MAX] {
            let r = overlay
                .lookup_blocking(m[0], Key::new(raw), &mut sched)
                .unwrap();
            assert!(m.contains(&r.owner));
            assert_eq!(r.owner, overlay.ring().owner(Key::new(raw)));
        }
    }

    #[test]
    fn own_range_lookup_is_free() {
        let m = members(32);
        let mut overlay = bootstrap(&m);
        let mut sched = FifoScheduler::new();
        // A key just past a node's own key is owned by its successor and
        // answered locally without any messages.
        let from = m[7];
        let key = Key::new(key_of(from).raw().wrapping_add(1));
        let before = overlay.runner().metrics().total_messages();
        let r = overlay.lookup_blocking(from, key, &mut sched).unwrap();
        assert_eq!(r.hops, 0);
        assert_eq!(overlay.runner().metrics().total_messages(), before);
        assert_eq!(r.owner, overlay.ring().successor_of(from));
    }

    #[test]
    fn results_accumulate_per_origin() {
        let m = members(16);
        let mut overlay = bootstrap(&m);
        let mut sched = FifoScheduler::new();
        for raw in [1u64, 2, 3] {
            overlay
                .lookup_blocking(m[0], Key::new(raw), &mut sched)
                .unwrap();
        }
        assert_eq!(overlay.results_of(m[0]).len(), 3);
        assert_eq!(overlay.results_of(m[1]).len(), 0);
    }
}
