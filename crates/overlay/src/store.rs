//! A key-value store on the overlay: `put`/`get` requests route to the
//! key's owner exactly like lookups, making the discovered membership a
//! usable distributed hash table.
//!
//! Values are opaque `u64` blobs (a deliberate simplification — the routing
//! and ownership logic is what the overlay demonstrates; widening the value
//! type is mechanical).

use ard_netsim::{LivelockError, NodeId, Scheduler};

use crate::protocol::{Overlay, OverlayMessage};
use crate::ring::Key;

/// Outcome of a blocking store operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreResult {
    /// The key operated on.
    pub key: Key,
    /// The value read (for gets; `None` if absent) or written (for puts).
    pub value: Option<u64>,
    /// Routing hops the request took.
    pub hops: u32,
}

impl Overlay {
    /// Stores `value` under `key` at the key's owner, routing from `from`.
    /// Returns the hop count once the acknowledgement arrives.
    ///
    /// # Errors
    ///
    /// Returns [`LivelockError`] if routing does not quiesce.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a member.
    pub fn put_blocking(
        &mut self,
        from: NodeId,
        key: Key,
        value: u64,
        sched: &mut dyn Scheduler,
    ) -> Result<StoreResult, LivelockError> {
        let origin = self.dense_id(from);
        self.runner_mut().exec(origin, sched, |node, ctx| {
            node.route_store(
                OverlayMessage::Put {
                    key,
                    value,
                    origin,
                    hops: 0,
                    deliver: false,
                },
                ctx,
            );
        });
        self.drain(sched)?;
        let r = self.last_store_result(from);
        debug_assert_eq!(r.key, key);
        Ok(r)
    }

    /// Reads the value under `key` from its owner, routing from `from`.
    ///
    /// # Errors
    ///
    /// Returns [`LivelockError`] if routing does not quiesce.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a member.
    pub fn get_blocking(
        &mut self,
        from: NodeId,
        key: Key,
        sched: &mut dyn Scheduler,
    ) -> Result<StoreResult, LivelockError> {
        let origin = self.dense_id(from);
        self.runner_mut().exec(origin, sched, |node, ctx| {
            node.route_store(
                OverlayMessage::Get {
                    key,
                    origin,
                    hops: 0,
                    deliver: false,
                },
                ctx,
            );
        });
        self.drain(sched)?;
        let r = self.last_store_result(from);
        debug_assert_eq!(r.key, key);
        Ok(r)
    }

    /// Number of key-value pairs stored at `member`.
    ///
    /// # Panics
    ///
    /// Panics if `member` is not a member.
    pub fn stored_at(&self, member: NodeId) -> usize {
        self.runner().node(self.dense_id(member)).store_len()
    }

    /// Total key-value pairs across the whole ring.
    pub fn stored_total(&self) -> usize {
        self.runner().nodes().map(|n| n.store_len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bootstrap, key_of};
    use ard_netsim::{FifoScheduler, RandomScheduler};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn members(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn put_then_get_round_trips() {
        let m = members(32);
        let mut overlay = bootstrap(&m);
        let mut sched = RandomScheduler::seeded(1);
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..50u64 {
            let key = Key::new(rng.gen());
            let from = m[rng.gen_range(0..m.len())];
            let put = overlay.put_blocking(from, key, i, &mut sched).unwrap();
            assert_eq!(put.value, Some(i));
            let reader = m[rng.gen_range(0..m.len())];
            let got = overlay.get_blocking(reader, key, &mut sched).unwrap();
            assert_eq!(got.value, Some(i), "key {key}");
        }
        assert_eq!(overlay.stored_total(), 50);
    }

    #[test]
    fn values_land_on_the_oracle_owner() {
        let m = members(16);
        let mut overlay = bootstrap(&m);
        let mut sched = FifoScheduler::new();
        for raw in [7u64, 1 << 40, u64::MAX - 3] {
            let key = Key::new(raw);
            overlay.put_blocking(m[0], key, raw, &mut sched).unwrap();
            let owner = overlay.ring().owner(key);
            assert!(overlay.stored_at(owner) >= 1, "key {key} not at {owner}");
        }
    }

    #[test]
    fn get_of_absent_key_returns_none() {
        let m = members(8);
        let mut overlay = bootstrap(&m);
        let mut sched = FifoScheduler::new();
        let r = overlay
            .get_blocking(m[3], Key::new(99), &mut sched)
            .unwrap();
        assert_eq!(r.value, None);
    }

    #[test]
    fn overwrite_replaces() {
        let m = members(8);
        let mut overlay = bootstrap(&m);
        let mut sched = FifoScheduler::new();
        let key = Key::new(5);
        overlay.put_blocking(m[0], key, 1, &mut sched).unwrap();
        overlay.put_blocking(m[1], key, 2, &mut sched).unwrap();
        let got = overlay.get_blocking(m[2], key, &mut sched).unwrap();
        assert_eq!(got.value, Some(2));
        assert_eq!(overlay.stored_total(), 1);
    }

    #[test]
    fn own_key_is_served_locally() {
        let m = members(1);
        let mut overlay = bootstrap(&m);
        let mut sched = FifoScheduler::new();
        overlay
            .put_blocking(m[0], Key::new(1), 10, &mut sched)
            .unwrap();
        let got = overlay.get_blocking(m[0], Key::new(1), &mut sched).unwrap();
        assert_eq!(got.value, Some(10));
        assert_eq!(overlay.runner().metrics().total_messages(), 0);
    }

    #[test]
    fn store_hops_are_logarithmic() {
        let m = members(128);
        let mut overlay = bootstrap(&m);
        let mut sched = FifoScheduler::new();
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..64 {
            let key = Key::new(rng.gen());
            let from = m[rng.gen_range(0..m.len())];
            let r = overlay.put_blocking(from, key, i, &mut sched).unwrap();
            assert!(r.hops <= 16, "put took {} hops", r.hops);
        }
    }

    #[test]
    fn keys_spread_across_members() {
        let m = members(16);
        let mut overlay = bootstrap(&m);
        let mut sched = RandomScheduler::seeded(3);
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..160u64 {
            overlay
                .put_blocking(m[0], Key::new(rng.gen()), i, &mut sched)
                .unwrap();
        }
        // Consistent hashing: no member owns more than half of 160 keys.
        for &member in &m {
            assert!(overlay.stored_at(member) < 80, "{member} hoards keys");
        }
        // key_of spreads members, so at least a few distinct owners exist.
        let populated = m.iter().filter(|&&v| overlay.stored_at(v) > 0).count();
        assert!(populated >= 8, "only {populated} members own keys");
        let _ = key_of(m[0]);
    }
}
