//! The consistent-hashing ring: key space, node placement, and the offline
//! routing oracle used to verify the distributed protocol.

use std::fmt;

use ard_netsim::NodeId;

/// A point on the 64-bit identifier circle.
///
/// # Example
///
/// ```
/// use ard_overlay::Key;
///
/// let a = Key::new(10);
/// let b = Key::new(20);
/// assert!(Key::new(15).in_interval(a, b));   // (10, 20]
/// assert!(b.in_interval(a, b));              // right-inclusive
/// assert!(!a.in_interval(a, b));             // left-exclusive
/// assert!(Key::new(5).in_interval(b, a));    // wrapping interval (20, 10]
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(u64);

impl Key {
    /// Wraps a raw 64-bit key.
    pub fn new(raw: u64) -> Self {
        Key(raw)
    }

    /// The raw value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Whether `self` lies in the half-open circular interval `(from, to]`.
    /// The full circle is represented by `from == to` (everything is
    /// inside).
    pub fn in_interval(self, from: Key, to: Key) -> bool {
        if from == to {
            return true;
        }
        if from < to {
            from < self && self <= to
        } else {
            self > from || self <= to
        }
    }

    /// The point `2^exponent` steps clockwise (wrapping).
    pub fn offset(self, exponent: u32) -> Key {
        Key(self.0.wrapping_add(1u64 << exponent))
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{:016x}", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{:016x}", self.0)
    }
}

/// Deterministic placement of a node on the circle (splitmix64 of its id,
/// so placement is uniform and reproducible).
pub fn key_of(node: NodeId) -> Key {
    let mut z = (node.index() as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    Key(z ^ (z >> 31))
}

/// The assembled ring: the offline oracle for ownership and routing.
///
/// Built from a membership list (what resource discovery outputs); the
/// distributed protocol's answers are verified against it in tests.
#[derive(Clone, Debug)]
pub struct RingTable {
    /// `(key, node)` pairs sorted by key.
    placed: Vec<(Key, NodeId)>,
}

impl RingTable {
    /// Places `members` on the circle.
    ///
    /// # Panics
    ///
    /// Panics on an empty membership or on a (astronomically unlikely)
    /// 64-bit key collision.
    pub fn new(members: &[NodeId]) -> Self {
        assert!(!members.is_empty(), "a ring needs at least one member");
        let mut placed: Vec<(Key, NodeId)> = members.iter().map(|&m| (key_of(m), m)).collect();
        placed.sort();
        for pair in placed.windows(2) {
            assert_ne!(
                pair[0].0, pair[1].0,
                "key collision between {} and {}",
                pair[0].1, pair[1].1
            );
        }
        RingTable { placed }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.placed.len()
    }

    /// Whether the ring is empty (never true for a constructed ring).
    pub fn is_empty(&self) -> bool {
        self.placed.is_empty()
    }

    /// The members in key order.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.placed.iter().map(|&(_, m)| m)
    }

    /// The node that owns `key`: the first node clockwise from it (its
    /// *successor* in Chord terms).
    pub fn owner(&self, key: Key) -> NodeId {
        match self.placed.binary_search_by(|&(k, _)| k.cmp(&key)) {
            Ok(i) => self.placed[i].1,
            Err(i) => self.placed[i % self.placed.len()].1,
        }
    }

    /// The successor of member `node` on the ring.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a member.
    pub fn successor_of(&self, node: NodeId) -> NodeId {
        let key = key_of(node);
        let i = self
            .placed
            .binary_search_by(|&(k, _)| k.cmp(&key))
            .expect("node is a ring member");
        self.placed[(i + 1) % self.placed.len()].1
    }

    /// The finger table for `node`: for each `i` in `0..64`, the owner of
    /// `key_of(node) + 2^i`, deduplicated and excluding `node` itself.
    pub fn fingers_of(&self, node: NodeId) -> Vec<(Key, NodeId)> {
        let base = key_of(node);
        let mut fingers: Vec<(Key, NodeId)> = Vec::new();
        for exponent in 0..64 {
            let target = self.owner(base.offset(exponent));
            if target != node && fingers.last().map(|&(_, m)| m) != Some(target) {
                fingers.push((key_of(target), target));
            }
        }
        fingers.sort();
        fingers.dedup();
        fingers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn placement_is_deterministic_and_distinct() {
        let a = key_of(NodeId::new(5));
        let b = key_of(NodeId::new(5));
        assert_eq!(a, b);
        let keys: std::collections::BTreeSet<Key> =
            (0..1000).map(|i| key_of(NodeId::new(i))).collect();
        assert_eq!(keys.len(), 1000);
    }

    #[test]
    fn interval_wraps() {
        let lo = Key::new(u64::MAX - 5);
        let hi = Key::new(5);
        assert!(Key::new(0).in_interval(lo, hi));
        assert!(Key::new(u64::MAX).in_interval(lo, hi));
        assert!(!Key::new(100).in_interval(lo, hi));
        // Full circle.
        assert!(Key::new(42).in_interval(hi, hi));
    }

    #[test]
    fn owner_is_first_clockwise() {
        let ring = RingTable::new(&members(8));
        // Exhaustive: for each member's key, owner is itself; just past it,
        // owner is the successor.
        for m in ring.members().collect::<Vec<_>>() {
            assert_eq!(ring.owner(key_of(m)), m);
            let just_past = Key::new(key_of(m).raw().wrapping_add(1));
            assert_eq!(ring.owner(just_past), ring.successor_of(m));
        }
    }

    #[test]
    fn successors_form_a_single_cycle() {
        let ring = RingTable::new(&members(16));
        let start = NodeId::new(0);
        let mut cur = start;
        let mut seen = 0;
        loop {
            cur = ring.successor_of(cur);
            seen += 1;
            if cur == start {
                break;
            }
            assert!(seen <= 16, "successor chain does not close");
        }
        assert_eq!(seen, 16);
    }

    #[test]
    fn fingers_are_members_and_logarithmic() {
        let ring = RingTable::new(&members(128));
        let all: std::collections::BTreeSet<NodeId> = ring.members().collect();
        for m in ring.members().collect::<Vec<_>>() {
            let fingers = ring.fingers_of(m);
            assert!(!fingers.is_empty());
            // Distinct fingers number O(log n) — generous cap.
            assert!(fingers.len() <= 64);
            for (k, f) in fingers {
                assert!(all.contains(&f));
                assert_eq!(k, key_of(f));
                assert_ne!(f, m);
            }
        }
    }

    #[test]
    fn singleton_ring_owns_everything() {
        let ring = RingTable::new(&members(1));
        assert_eq!(ring.owner(Key::new(123)), NodeId::new(0));
        assert_eq!(ring.successor_of(NodeId::new(0)), NodeId::new(0));
        assert!(ring.fingers_of(NodeId::new(0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ring_rejected() {
        RingTable::new(&[]);
    }
}
