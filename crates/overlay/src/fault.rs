//! Fault tolerance: successor lists, replication and stabilization.
//!
//! The classic Chord machinery, scoped to what the discovery pipeline
//! needs: each node keeps a list of its `r` ring successors (computed at
//! bootstrap), every `put` is replicated to the owner's immediate
//! successor, and after members fail the ring is *stabilized* — each live
//! node adopts its first live successor and drops dead fingers. A key's
//! range then falls to the dead owner's successor, which already holds the
//! replica, so reads keep working through any failure pattern with no two
//! *adjacent* ring deaths (and routing tolerates up to `r − 1` consecutive
//! deaths).

use std::collections::BTreeSet;

use ard_netsim::{NodeId, Scheduler};

use crate::protocol::Overlay;

/// Replication factor: a primary copy plus one replica at the successor.
pub const REPLICAS: usize = 2;

/// Length of each node's successor list (tolerates `SUCCESSOR_LIST_LEN − 1`
/// consecutive ring deaths for routing).
pub const SUCCESSOR_LIST_LEN: usize = 4;

/// Why [`Overlay::fail_and_stabilize`] refused a failure pattern. The
/// overlay is left untouched when this is returned: validation runs before
/// any node is marked failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StabilizeError {
    /// Every member was named as failed; nothing is left to repair.
    AllMembersFailed,
    /// A survivor's entire successor list is dead — more than
    /// `SUCCESSOR_LIST_LEN − 1` consecutive ring deaths, beyond the
    /// design's tolerance envelope (as in Chord).
    SuccessorListExhausted {
        /// The surviving member (original id) that would be stranded.
        node: NodeId,
    },
}

impl std::fmt::Display for StabilizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StabilizeError::AllMembersFailed => {
                f.write_str("cannot fail every member of the overlay")
            }
            StabilizeError::SuccessorListExhausted { node } => write!(
                f,
                "successor list exhausted at {node}: too many consecutive ring deaths"
            ),
        }
    }
}

impl std::error::Error for StabilizeError {}

impl Overlay {
    /// Marks `members` as failed (they blackhole all traffic) and repairs
    /// the ring: every live node adopts its first live successor-list entry
    /// and drops failed fingers. Returns the number of nodes repaired.
    ///
    /// # Errors
    ///
    /// Returns [`StabilizeError`] — and leaves the overlay untouched — if
    /// every member fails, or if a live node's entire successor list is
    /// dead (more than `SUCCESSOR_LIST_LEN − 1` consecutive ring deaths,
    /// beyond the design's tolerance, as in Chord).
    pub fn fail_and_stabilize(
        &mut self,
        members: &[NodeId],
        _sched: &mut dyn Scheduler,
    ) -> Result<usize, StabilizeError> {
        let failed_dense: BTreeSet<NodeId> = members.iter().map(|&m| self.dense_id(m)).collect();
        if failed_dense.len() >= self.len() {
            return Err(StabilizeError::AllMembersFailed);
        }
        let live: Vec<NodeId> = (0..self.len())
            .map(NodeId::new)
            .filter(|d| !failed_dense.contains(d))
            .collect();
        // Validate before mutating: if any survivor would be stranded, the
        // whole pattern is rejected and no node is marked failed.
        for &d in &live {
            if !self.runner().node(d).successor_survives(&failed_dense) {
                return Err(StabilizeError::SuccessorListExhausted {
                    node: self.members_vec()[d.index()],
                });
            }
        }
        // Mark them failed.
        for &f in &failed_dense {
            self.runner_mut().node_mut(f).mark_failed();
        }
        // Repair the survivors.
        let mut repaired = 0;
        for d in live {
            if self.runner_mut().node_mut(d).stabilize(&failed_dense) {
                repaired += 1;
            }
        }
        Ok(repaired)
    }

    /// Whether the given member has been failed.
    pub fn is_failed(&self, member: NodeId) -> bool {
        self.runner().node(self.dense_id(member)).is_failed()
    }

    /// The live members, in id order.
    pub fn live_members(&self) -> Vec<NodeId> {
        self.members_vec()
            .iter()
            .copied()
            .filter(|&m| !self.is_failed(m))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bootstrap, Key};
    use ard_netsim::{FifoScheduler, RandomScheduler};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn members(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn reads_survive_a_single_owner_death() {
        let m = members(24);
        let mut overlay = bootstrap(&m);
        let mut sched = RandomScheduler::seeded(1);
        // Write 40 keys, remember each owner.
        let mut owned: Vec<(Key, u64, NodeId)> = Vec::new();
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..40u64 {
            let key = Key::new(rng.gen());
            overlay.put_blocking(m[0], key, i, &mut sched).unwrap();
            owned.push((key, i, overlay.ring().owner(key)));
        }
        // Kill one owner.
        let victim = owned[0].2;
        overlay.fail_and_stabilize(&[victim], &mut sched).unwrap();
        // Every key is still readable from a live node.
        let reader = overlay.live_members()[0];
        for (key, value, owner) in owned {
            if owner == victim {
                let got = overlay.get_blocking(reader, key, &mut sched).unwrap();
                assert_eq!(
                    got.value,
                    Some(value),
                    "lost key {key} owned by dead {owner}"
                );
            }
        }
    }

    #[test]
    fn reads_survive_scattered_deaths() {
        let m = members(32);
        let mut overlay = bootstrap(&m);
        let mut sched = RandomScheduler::seeded(3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut written: Vec<(Key, u64)> = Vec::new();
        for i in 0..60u64 {
            let key = Key::new(rng.gen());
            overlay.put_blocking(m[5], key, i, &mut sched).unwrap();
            written.push((key, i));
        }
        // Kill every 6th member by *ring* position so deaths are spread and
        // never adjacent (the design's tolerance envelope).
        let ring_order: Vec<NodeId> = overlay.ring().members().collect();
        let victims: Vec<NodeId> = ring_order.iter().copied().step_by(6).collect();
        overlay.fail_and_stabilize(&victims, &mut sched).unwrap();
        let reader = overlay.live_members()[0];
        for (key, value) in written {
            let got = overlay.get_blocking(reader, key, &mut sched).unwrap();
            assert_eq!(got.value, Some(value), "lost key {key}");
        }
    }

    #[test]
    fn lookups_after_stabilization_avoid_the_dead() {
        let m = members(20);
        let mut overlay = bootstrap(&m);
        let mut sched = FifoScheduler::new();
        let ring_order: Vec<NodeId> = overlay.ring().members().collect();
        let victims = vec![ring_order[3], ring_order[9]];
        overlay.fail_and_stabilize(&victims, &mut sched).unwrap();
        let reader = overlay.live_members()[2];
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let key = Key::new(rng.gen());
            let r = overlay.lookup_blocking(reader, key, &mut sched).unwrap();
            assert!(!victims.contains(&r.owner), "routed to dead node for {key}");
            assert!(overlay.live_members().contains(&r.owner));
        }
    }

    #[test]
    fn failed_nodes_blackhole_but_the_ring_quiesces() {
        let m = members(12);
        let mut overlay = bootstrap(&m);
        let mut sched = FifoScheduler::new();
        overlay
            .put_blocking(m[0], Key::new(7), 1, &mut sched)
            .unwrap();
        let victim = overlay.ring().owner(Key::new(7));
        overlay.fail_and_stabilize(&[victim], &mut sched).unwrap();
        // Writes continue to work, landing at the new owner.
        overlay
            .put_blocking(overlay.live_members()[0], Key::new(7), 2, &mut sched)
            .unwrap();
        let got = overlay
            .get_blocking(overlay.live_members()[1], Key::new(7), &mut sched)
            .unwrap();
        assert_eq!(got.value, Some(2));
    }

    #[test]
    fn failing_everyone_is_rejected() {
        let m = members(3);
        let mut overlay = bootstrap(&m);
        let mut sched = FifoScheduler::new();
        assert_eq!(
            overlay.fail_and_stabilize(&m, &mut sched),
            Err(StabilizeError::AllMembersFailed)
        );
        assert_eq!(overlay.live_members().len(), 3, "overlay left untouched");
    }

    #[test]
    fn too_many_consecutive_deaths_are_detected() {
        let m = members(8);
        let mut overlay = bootstrap(&m);
        let mut sched = FifoScheduler::new();
        // Kill SUCCESSOR_LIST_LEN consecutive ring members: their
        // predecessor's whole list is dead.
        let ring_order: Vec<NodeId> = overlay.ring().members().collect();
        let victims: Vec<NodeId> = ring_order[1..=SUCCESSOR_LIST_LEN].to_vec();
        let err = overlay
            .fail_and_stabilize(&victims, &mut sched)
            .expect_err("over-tolerance pattern must be rejected");
        // The stranded survivor is exactly the victims' ring predecessor.
        assert_eq!(
            err,
            StabilizeError::SuccessorListExhausted { node: ring_order[0] }
        );
        assert!(err.to_string().contains("successor list exhausted"));
    }

    #[test]
    fn rejected_patterns_leave_the_overlay_fully_operational() {
        let m = members(8);
        let mut overlay = bootstrap(&m);
        let mut sched = FifoScheduler::new();
        overlay
            .put_blocking(m[0], Key::new(11), 7, &mut sched)
            .unwrap();
        let ring_order: Vec<NodeId> = overlay.ring().members().collect();
        let victims: Vec<NodeId> = ring_order[1..=SUCCESSOR_LIST_LEN].to_vec();
        assert!(overlay.fail_and_stabilize(&victims, &mut sched).is_err());
        // Validate-then-mutate: nobody was marked failed by the rejected
        // call, and a *tolerable* pattern still succeeds afterwards.
        assert_eq!(overlay.live_members().len(), 8);
        assert!(victims.iter().all(|&v| !overlay.is_failed(v)));
        let repaired = overlay
            .fail_and_stabilize(&[ring_order[1]], &mut sched)
            .unwrap();
        assert!(repaired >= 1, "the predecessor must adopt a new successor");
        let got = overlay
            .get_blocking(overlay.live_members()[0], Key::new(11), &mut sched)
            .unwrap();
        assert_eq!(got.value, Some(7));
    }

    #[test]
    fn live_members_tracks_failures() {
        let m = members(10);
        let mut overlay = bootstrap(&m);
        let mut sched = FifoScheduler::new();
        assert_eq!(overlay.live_members().len(), 10);
        let ring_order: Vec<NodeId> = overlay.ring().members().collect();
        overlay
            .fail_and_stabilize(&[ring_order[0], ring_order[5]], &mut sched)
            .unwrap();
        assert_eq!(overlay.live_members().len(), 8);
        assert!(overlay.is_failed(ring_order[0]));
        assert!(!overlay.is_failed(ring_order[1]));
    }
}
