//! A Chord-style structured overlay bootstrapped from resource discovery.
//!
//! The paper motivates resource discovery as the *first step* of building
//! peer-to-peer systems: "Once all peers that are interested get to know of
//! each other they may cooperate on joint tasks (for example … may build an
//! overlay network and form a distributed hash table)". This crate closes
//! that loop on the same simulator substrate:
//!
//! 1. run a [`Discovery`](ard_core::Discovery) (typically Ad-hoc) to obtain
//!    the component's membership;
//! 2. [`bootstrap`] a consistent-hashing ring from the membership list —
//!    each node gets its successor and `⌈log₂ n⌉` finger entries;
//! 3. route [`lookup`](OverlayNode) requests greedily over the fingers in
//!    `O(log n)` hops, metered by the same [`Metrics`](ard_netsim::Metrics);
//! 4. use the ring as a replicated key-value [`store`] (puts mirror to the
//!    owner's ring successor), and survive member failures via
//!    successor-list stabilization ([`fault`]).
//!
//! # Example
//!
//! ```
//! use ard_core::{Discovery, Variant};
//! use ard_graph::gen;
//! use ard_netsim::{NodeId, RandomScheduler};
//! use ard_overlay::{bootstrap, Key};
//!
//! // Discover the membership…
//! let graph = gen::random_weakly_connected(32, 64, 1);
//! let mut discovery = Discovery::new(&graph, Variant::AdHoc);
//! let mut sched = RandomScheduler::seeded(2);
//! discovery.run_all(&mut sched).unwrap();
//! let leader = discovery.leaders()[0];
//! let members: Vec<NodeId> = discovery.runner().node(leader).done().iter().copied().collect();
//!
//! // …then build the overlay and look up a key.
//! let mut overlay = bootstrap(&members);
//! let owner = overlay.lookup_blocking(members[0], Key::new(0xdead_beef), &mut sched).unwrap();
//! assert!(members.contains(&owner.owner));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
mod protocol;
mod ring;
pub mod store;

pub use fault::StabilizeError;
pub use protocol::{bootstrap, LookupResult, Overlay, OverlayMessage, OverlayNode};
pub use ring::{key_of, Key, RingTable};
