//! Graphviz DOT export of knowledge graphs, for visualizing topologies and
//! executions (`ard discover --dot out.dot`).

use std::fmt::Write as _;

use ard_netsim::NodeId;

use crate::KnowledgeGraph;

/// Renders the graph as Graphviz DOT (`digraph`), one edge per initial
/// knowledge relation.
///
/// # Example
///
/// ```
/// use ard_graph::{dot, KnowledgeGraph};
///
/// let g = KnowledgeGraph::from_edges(3, [(0, 1), (1, 2)]);
/// let text = dot::to_dot(&g, "example");
/// assert!(text.starts_with("digraph example {"));
/// assert!(text.contains("n0 -> n1;"));
/// ```
pub fn to_dot(graph: &KnowledgeGraph, name: &str) -> String {
    let mut out = String::new();
    writeln!(out, "digraph {name} {{").unwrap();
    writeln!(out, "  rankdir=LR;").unwrap();
    writeln!(out, "  node [shape=circle, fontsize=10];").unwrap();
    for v in graph.ids() {
        writeln!(out, "  {v};").unwrap();
    }
    for (u, v) in graph.edges() {
        writeln!(out, "  {u} -> {v};").unwrap();
    }
    out.push_str("}\n");
    out
}

/// Renders an annotated graph: node labels and styles come from the
/// callback (e.g. a discovery's statuses and `next` pointers drawn as a
/// second edge set).
///
/// `annotate` returns `(label, color)` per node; `extra_edges` are drawn
/// dashed (e.g. the `next`-pointer forest on top of `E₀`).
pub fn to_dot_annotated(
    graph: &KnowledgeGraph,
    name: &str,
    mut annotate: impl FnMut(NodeId) -> (String, &'static str),
    extra_edges: &[(NodeId, NodeId)],
) -> String {
    let mut out = String::new();
    writeln!(out, "digraph {name} {{").unwrap();
    writeln!(out, "  rankdir=LR;").unwrap();
    writeln!(out, "  node [shape=circle, fontsize=10, style=filled];").unwrap();
    for v in graph.ids() {
        let (label, color) = annotate(v);
        writeln!(out, "  {v} [label=\"{label}\", fillcolor={color}];").unwrap();
    }
    for (u, v) in graph.edges() {
        writeln!(out, "  {u} -> {v} [color=gray];").unwrap();
    }
    for &(u, v) in extra_edges {
        writeln!(out, "  {u} -> {v} [style=dashed, color=blue, penwidth=2];").unwrap();
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_lists_every_node_and_edge() {
        let g = KnowledgeGraph::from_edges(4, [(0, 1), (2, 3), (3, 0)]);
        let text = to_dot(&g, "t");
        for v in 0..4 {
            assert!(text.contains(&format!("n{v};")));
        }
        assert_eq!(text.matches(" -> ").count(), 3);
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn annotated_dot_includes_labels_and_extras() {
        let g = KnowledgeGraph::from_edges(2, [(0, 1)]);
        let text = to_dot_annotated(
            &g,
            "t",
            |v| (format!("{v}:leader"), "lightblue"),
            &[(NodeId::new(1), NodeId::new(0))],
        );
        assert!(text.contains("label=\"n0:leader\""));
        assert!(text.contains("fillcolor=lightblue"));
        assert!(text.contains("n1 -> n0 [style=dashed"));
    }

    #[test]
    fn empty_graph_renders() {
        let g = KnowledgeGraph::new(0);
        let text = to_dot(&g, "empty");
        assert!(text.contains("digraph empty"));
    }
}
