//! Topology generators for the reproduction's experiments.
//!
//! All generators are deterministic; the random ones take an explicit seed.
//! The key topologies:
//!
//! * [`binary_tree_down`] — the complete rooted binary tree `T(i)` with all
//!   edges directed toward the leaves, the Theorem 1 lower-bound topology;
//! * [`random_weakly_connected`] — seeded `G(n, m)`-style graphs guaranteed
//!   weakly connected, the workhorse of the complexity sweeps;
//! * classic shapes ([`path`], [`ring`], [`star_out`], [`star_in`],
//!   [`complete`]) exercising extreme degree distributions.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use ard_netsim::NodeId;

use crate::KnowledgeGraph;

/// A directed path `0 → 1 → … → n-1`.
///
/// # Example
///
/// ```
/// let g = ard_graph::gen::path(4);
/// assert_eq!(g.edge_count(), 3);
/// ```
pub fn path(n: usize) -> KnowledgeGraph {
    KnowledgeGraph::from_edges(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
}

/// A directed ring `0 → 1 → … → n-1 → 0` (strongly connected).
///
/// # Panics
///
/// Panics if `n < 2` (a ring needs at least two nodes).
pub fn ring(n: usize) -> KnowledgeGraph {
    assert!(n >= 2, "a ring needs at least two nodes");
    KnowledgeGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
}

/// A star with all edges pointing *out* of the centre (node 0 knows all).
pub fn star_out(n: usize) -> KnowledgeGraph {
    KnowledgeGraph::from_edges(n, (1..n).map(|i| (0, i)))
}

/// A star with all edges pointing *into* the centre (all know node 0).
pub fn star_in(n: usize) -> KnowledgeGraph {
    KnowledgeGraph::from_edges(n, (1..n).map(|i| (i, 0)))
}

/// The complete directed graph (every node knows every other).
pub fn complete(n: usize) -> KnowledgeGraph {
    let mut g = KnowledgeGraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                g.add_edge(NodeId::new(u), NodeId::new(v));
            }
        }
    }
    g
}

/// The complete rooted binary tree `T(levels)` with `n = 2^levels − 1` nodes
/// and all edges directed toward the leaves — the topology of the paper's
/// Theorem 1, on which any oblivious resource-discovery algorithm can be
/// forced to send `≥ 0.5·n·log n − 2` messages.
///
/// Node `0` is the root; node `i`'s children are `2i + 1` and `2i + 2`.
///
/// # Example
///
/// ```
/// let g = ard_graph::gen::binary_tree_down(3);
/// assert_eq!(g.len(), 7);
/// assert_eq!(g.edge_count(), 6);
/// assert_eq!(g.out_degree(ard_netsim::NodeId::new(0)), 2);
/// ```
///
/// # Panics
///
/// Panics if `levels == 0`.
pub fn binary_tree_down(levels: u32) -> KnowledgeGraph {
    assert!(levels >= 1, "a tree needs at least one level");
    let n = (1usize << levels) - 1;
    let mut g = KnowledgeGraph::new(n);
    for i in 0..n {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < n {
                g.add_edge(NodeId::new(i), NodeId::new(child));
            }
        }
    }
    g
}

/// A random weakly connected graph: a random-orientation spanning tree over
/// a random node permutation, plus random extra directed edges until the
/// graph has `min(extra_edges + n − 1, n(n−1))` distinct edges.
///
/// Deterministic in `seed`.
///
/// # Example
///
/// ```
/// use ard_graph::{components, gen};
///
/// let g = gen::random_weakly_connected(50, 200, 3);
/// assert!(components::is_weakly_connected(&g));
/// assert_eq!(g.edge_count(), 49 + 200);
/// ```
pub fn random_weakly_connected(n: usize, extra_edges: usize, seed: u64) -> KnowledgeGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    random_weakly_connected_with(n, extra_edges, &mut rng)
}

/// As [`random_weakly_connected`], drawing from a caller-supplied RNG.
pub fn random_weakly_connected_with(
    n: usize,
    extra_edges: usize,
    rng: &mut StdRng,
) -> KnowledgeGraph {
    let mut g = KnowledgeGraph::new(n);
    if n <= 1 {
        return g;
    }
    // Random spanning tree over a random permutation: attach each node to a
    // uniformly random earlier node, with a random edge orientation. This
    // yields weak connectivity without biasing direction.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    for i in 1..n {
        let parent = order[rng.gen_range(0..i)];
        let child = order[i];
        if rng.gen_bool(0.5) {
            g.add_edge(NodeId::new(parent), NodeId::new(child));
        } else {
            g.add_edge(NodeId::new(child), NodeId::new(parent));
        }
    }
    let target = (n - 1 + extra_edges).min(n * (n - 1));
    while g.edge_count() < target {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            g.add_edge(NodeId::new(u), NodeId::new(v));
        }
    }
    g
}

/// A scale-free knowledge graph via preferential attachment
/// (Barabási–Albert style): node `i` attaches `links_per_node` directed
/// edges to earlier nodes chosen proportionally to their current total
/// degree. Models real peer-to-peer bootstrap lists, where a few well-known
/// rendezvous peers are known by almost everyone.
///
/// Always weakly connected; deterministic in `seed`.
///
/// # Example
///
/// ```
/// use ard_graph::{components, gen};
///
/// let g = gen::scale_free(100, 2, 7);
/// assert!(components::is_weakly_connected(&g));
/// // Hubs emerge: some node has far more than average in-degree.
/// let max_in = (0..100).map(|v| {
///     g.edges().filter(|&(_, to)| to.index() == v).count()
/// }).max().unwrap();
/// assert!(max_in > 8);
/// ```
pub fn scale_free(n: usize, links_per_node: usize, seed: u64) -> KnowledgeGraph {
    assert!(links_per_node >= 1, "each newcomer needs at least one link");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = KnowledgeGraph::new(n);
    if n <= 1 {
        return g;
    }
    // `targets` holds one entry per edge endpoint: sampling uniformly from
    // it is degree-proportional sampling.
    let mut endpoints: Vec<usize> = vec![0];
    for i in 1..n {
        let m = links_per_node.min(i);
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != i && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for t in chosen {
            g.add_edge(NodeId::new(i), NodeId::new(t));
            endpoints.push(t);
            endpoints.push(i);
        }
    }
    g
}

/// `count` disjoint copies of random weakly connected graphs, each of
/// `per_component` nodes with `extra_edges` extra edges; used to exercise
/// the "one leader per weakly connected component" requirement.
pub fn random_multi_component(
    count: usize,
    per_component: usize,
    extra_edges: usize,
    seed: u64,
) -> KnowledgeGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = KnowledgeGraph::new(0);
    for _ in 0..count {
        let part = random_weakly_connected_with(per_component, extra_edges, &mut rng);
        g = g.disjoint_union(&part);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{
        is_strongly_connected, is_weakly_connected, weakly_connected_components,
    };

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert!(is_weakly_connected(&g));
        assert!(!is_strongly_connected(&g));
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn path_of_one_has_no_edges() {
        assert_eq!(path(1).edge_count(), 0);
        assert_eq!(path(0).len(), 0);
    }

    #[test]
    fn ring_is_strongly_connected() {
        let g = ring(6);
        assert_eq!(g.edge_count(), 6);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn stars_differ_in_direction() {
        let out = star_out(5);
        let inn = star_in(5);
        assert_eq!(out.out_degree(NodeId::new(0)), 4);
        assert_eq!(inn.out_degree(NodeId::new(0)), 0);
        assert!(is_weakly_connected(&out));
        assert!(is_weakly_connected(&inn));
    }

    #[test]
    fn complete_has_all_edges() {
        let g = complete(4);
        assert_eq!(g.edge_count(), 12);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn binary_tree_structure() {
        let g = binary_tree_down(4);
        assert_eq!(g.len(), 15);
        assert_eq!(g.edge_count(), 14);
        assert!(is_weakly_connected(&g));
        // leaves have no out-edges
        for leaf in 7..15 {
            assert_eq!(g.out_degree(NodeId::new(leaf)), 0);
        }
    }

    #[test]
    fn random_graph_is_weakly_connected_and_seeded() {
        for seed in 0..20 {
            let g = random_weakly_connected(40, 100, seed);
            assert!(is_weakly_connected(&g), "seed {seed} not weakly connected");
            assert_eq!(g.edge_count(), 39 + 100);
        }
        let a = random_weakly_connected(30, 50, 9);
        let b = random_weakly_connected(30, 50, 9);
        assert_eq!(a, b, "same seed must give same graph");
    }

    #[test]
    fn random_graph_caps_at_complete() {
        let g = random_weakly_connected(4, 1_000, 0);
        assert_eq!(g.edge_count(), 12);
    }

    #[test]
    fn scale_free_is_connected_and_skewed() {
        let n = 200;
        let g = scale_free(n, 2, 3);
        assert!(is_weakly_connected(&g));
        assert_eq!(g.len(), n);
        // Edge count: node 1 adds 1 (only one predecessor), rest add 2.
        assert_eq!(g.edge_count(), 1 + 2 * (n - 2));
        // Determinism.
        assert_eq!(scale_free(50, 2, 9), scale_free(50, 2, 9));
        // Degree skew: the max in-degree dwarfs the mean.
        let mut in_deg = vec![0usize; n];
        for (_, v) in g.edges() {
            in_deg[v.index()] += 1;
        }
        let max = *in_deg.iter().max().unwrap();
        assert!(max >= 10, "no hub emerged: max in-degree {max}");
    }

    #[test]
    fn scale_free_tiny_cases() {
        assert_eq!(scale_free(1, 1, 0).edge_count(), 0);
        let g = scale_free(2, 3, 0);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    fn multi_component_counts() {
        let g = random_multi_component(3, 10, 5, 11);
        assert_eq!(g.len(), 30);
        assert_eq!(weakly_connected_components(&g).len(), 3);
    }
}
