//! Knowledge graphs for resource discovery.
//!
//! The input to a resource-discovery algorithm is the *initial knowledge
//! graph* `G = (V, E₀)`: a directed graph where an edge `(u → v)` means node
//! `u` initially knows `v`'s id. This crate provides:
//!
//! * [`KnowledgeGraph`] — the representation, convertible into the initial
//!   knowledge sets of an [`ard_netsim::Runner`];
//! * [`components`] — weak and strong connectivity (the paper's requirements
//!   are stated per *weakly connected component*);
//! * [`gen`] — topology generators for every experiment in the reproduction:
//!   paths, rings, stars, complete graphs, the rooted binary trees of the
//!   Theorem 1 lower bound, and seeded random weakly-connected graphs.
//!
//! # Example
//!
//! ```
//! use ard_graph::{gen, components};
//!
//! let g = gen::random_weakly_connected(64, 128, 7);
//! assert_eq!(g.len(), 64);
//! assert!(g.edge_count() >= 63);
//! assert_eq!(components::weakly_connected_components(&g).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod dot;
pub mod gen;
mod graph;

pub use graph::KnowledgeGraph;
