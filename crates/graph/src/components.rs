//! Weak and strong connectivity of knowledge graphs.
//!
//! Resource discovery's requirements are stated per *weakly connected
//! component*: two nodes are weakly connected if a path joins them in the
//! undirected view of the graph. Strong connectivity matters because on
//! strongly connected graphs the problem reduces to classic `O(n)` leader
//! election (Cidon, Gopal & Kutten), which is why the paper's lower bounds
//! are all about directed, weakly connected topologies.

use ard_netsim::NodeId;

use crate::KnowledgeGraph;

/// Partitions the nodes into weakly connected components.
///
/// Each component is a sorted list of node ids; components are ordered by
/// their smallest member.
///
/// # Example
///
/// ```
/// use ard_graph::{components, KnowledgeGraph};
///
/// // 0 → 1   2 → 3 (two components, despite all edges being directed)
/// let g = KnowledgeGraph::from_edges(4, [(0, 1), (2, 3)]);
/// let comps = components::weakly_connected_components(&g);
/// assert_eq!(comps.len(), 2);
/// assert_eq!(comps[0].iter().map(|id| id.index()).collect::<Vec<_>>(), vec![0, 1]);
/// ```
pub fn weakly_connected_components(g: &KnowledgeGraph) -> Vec<Vec<NodeId>> {
    let und = g.undirected_adjacency();
    let mut seen = vec![false; g.len()];
    let mut components = Vec::new();
    for start in 0..g.len() {
        if seen[start] {
            continue;
        }
        let mut component = Vec::new();
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            component.push(NodeId::new(u));
            for &v in &und[u] {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    stack.push(v.index());
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

/// Maps each node to the index of its weakly connected component (as ordered
/// by [`weakly_connected_components`]).
pub fn weak_component_ids(g: &KnowledgeGraph) -> Vec<usize> {
    let comps = weakly_connected_components(g);
    let mut ids = vec![0usize; g.len()];
    for (ci, comp) in comps.iter().enumerate() {
        for &v in comp {
            ids[v.index()] = ci;
        }
    }
    ids
}

/// Whether the whole graph is one weakly connected component.
pub fn is_weakly_connected(g: &KnowledgeGraph) -> bool {
    g.len() <= 1 || weakly_connected_components(g).len() == 1
}

/// Partitions the nodes into strongly connected components (iterative
/// Tarjan). Components are returned in reverse topological order of the
/// condensation, each sorted by node id.
///
/// # Example
///
/// ```
/// use ard_graph::{components, KnowledgeGraph};
///
/// // A 3-cycle plus a tail: the cycle is one SCC, the tail its own.
/// let g = KnowledgeGraph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
/// let sccs = components::strongly_connected_components(&g);
/// assert_eq!(sccs.len(), 2);
/// assert!(sccs.iter().any(|c| c.len() == 3));
/// ```
pub fn strongly_connected_components(g: &KnowledgeGraph) -> Vec<Vec<NodeId>> {
    // Iterative Tarjan with an explicit stack of (node, next-edge-index).
    const UNVISITED: usize = usize::MAX;
    let n = g.len();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<NodeId>> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (u, ref mut ei)) = work.last_mut() {
            if *ei == 0 {
                index[u] = next_index;
                lowlink[u] = next_index;
                next_index += 1;
                stack.push(u);
                on_stack[u] = true;
            }
            let outs = g.out_edges(NodeId::new(u));
            if *ei < outs.len() {
                let v = outs[*ei].index();
                *ei += 1;
                if index[v] == UNVISITED {
                    work.push((v, 0));
                } else if on_stack[v] {
                    lowlink[u] = lowlink[u].min(index[v]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[u]);
                }
                if lowlink[u] == index[u] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component.push(NodeId::new(w));
                        if w == u {
                            break;
                        }
                    }
                    component.sort_unstable();
                    sccs.push(component);
                }
            }
        }
    }
    sccs
}

/// Whether the whole graph is one strongly connected component.
pub fn is_strongly_connected(g: &KnowledgeGraph) -> bool {
    g.len() <= 1 || strongly_connected_components(g).len() == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_is_connected() {
        let g = KnowledgeGraph::new(1);
        assert!(is_weakly_connected(&g));
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = KnowledgeGraph::new(0);
        assert!(is_weakly_connected(&g));
    }

    #[test]
    fn isolated_nodes_are_their_own_components() {
        let g = KnowledgeGraph::new(3);
        assert_eq!(weakly_connected_components(&g).len(), 3);
        assert_eq!(strongly_connected_components(&g).len(), 3);
    }

    #[test]
    fn direction_is_ignored_for_weak_connectivity() {
        // star pointing inward: leaves know the centre only
        let g = KnowledgeGraph::from_edges(4, [(1, 0), (2, 0), (3, 0)]);
        assert!(is_weakly_connected(&g));
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn weak_component_ids_are_consistent() {
        let g = KnowledgeGraph::from_edges(5, [(0, 1), (3, 4)]);
        let ids = weak_component_ids(&g);
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[3], ids[4]);
        assert_ne!(ids[0], ids[2]);
        assert_ne!(ids[2], ids[3]);
    }

    #[test]
    fn cycle_is_strongly_connected() {
        let g = KnowledgeGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn tarjan_matches_known_decomposition() {
        // Two 2-cycles joined by a one-way bridge.
        let g = KnowledgeGraph::from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let mut sccs = strongly_connected_components(&g);
        sccs.sort();
        assert_eq!(sccs.len(), 2);
        assert_eq!(sccs[0], vec![NodeId::new(0), NodeId::new(1)]);
        assert_eq!(sccs[1], vec![NodeId::new(2), NodeId::new(3)]);
    }

    #[test]
    fn tarjan_handles_deep_paths_iteratively() {
        // A 100k-node path would overflow the call stack if Tarjan recursed.
        let n = 100_000;
        let g = KnowledgeGraph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)));
        assert_eq!(strongly_connected_components(&g).len(), n);
        assert!(is_weakly_connected(&g));
    }

    #[test]
    fn sccs_partition_the_nodes() {
        let g = KnowledgeGraph::from_edges(6, [(0, 1), (1, 0), (2, 3), (4, 5), (5, 4), (3, 4)]);
        let sccs = strongly_connected_components(&g);
        let mut all: Vec<usize> = sccs.iter().flatten().map(|id| id.index()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
    }
}
