use std::fmt;

use ard_netsim::NodeId;

/// A directed *knowledge graph* `G = (V, E₀)`.
///
/// An edge `(u → v)` means `u` initially knows `id(v)` and may therefore
/// send `v` messages. Knowledge graphs are the paper's network model; they
/// are *not* assumed strongly connected — the interesting case for resource
/// discovery is weakly connected, non-sparse graphs.
///
/// Self-loops are meaningless (every node knows itself) and are rejected;
/// parallel edges are collapsed.
///
/// # Example
///
/// ```
/// use ard_graph::KnowledgeGraph;
/// use ard_netsim::NodeId;
///
/// let mut g = KnowledgeGraph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1));
/// g.add_edge(NodeId::new(0), NodeId::new(2));
/// g.add_edge(NodeId::new(0), NodeId::new(1)); // duplicate, collapsed
/// assert_eq!(g.edge_count(), 2);
/// assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
/// assert_eq!(g.out_degree(NodeId::new(0)), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct KnowledgeGraph {
    adj: Vec<Vec<NodeId>>,
    edges: usize,
}

impl KnowledgeGraph {
    /// Creates a graph of `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        KnowledgeGraph {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Creates a graph of `n` nodes from an edge list (duplicates collapsed).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or an edge is a self-loop.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = KnowledgeGraph::new(n);
        for (u, v) in edges {
            g.add_edge(NodeId::new(u), NodeId::new(v));
        }
        g
    }

    /// Number of nodes `|V|`.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of distinct directed edges `|E₀|`.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// All node ids, in index order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len()).map(NodeId::new)
    }

    /// Adds the directed edge `u → v`. Returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or a self-loop.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(
            u.index() < self.len() && v.index() < self.len(),
            "edge endpoint out of range"
        );
        assert_ne!(u, v, "self-loops are not meaningful in a knowledge graph");
        let out = &mut self.adj[u.index()];
        if out.contains(&v) {
            return false;
        }
        out.push(v);
        self.edges += 1;
        true
    }

    /// Adds a fresh node with no edges, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        NodeId::new(self.len() - 1)
    }

    /// Whether the directed edge `u → v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u.index()].contains(&v)
    }

    /// Out-neighbours of `u` (ids `u` initially knows), in insertion order.
    pub fn out_edges(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u.index()]
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.adj[u.index()].len()
    }

    /// All directed edges as `(u, v)` pairs, grouped by source.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, outs)| outs.iter().map(move |&v| (NodeId::new(u), v)))
    }

    /// The initial knowledge sets in the shape
    /// [`ard_netsim::Runner::new`] expects.
    pub fn initial_knowledge(&self) -> Vec<Vec<NodeId>> {
        self.adj.clone()
    }

    /// The *undirected view*: for each node, the union of out-neighbours and
    /// in-neighbours. Weak connectivity is connectivity of this view.
    pub fn undirected_adjacency(&self) -> Vec<Vec<NodeId>> {
        let mut und: Vec<Vec<NodeId>> = vec![Vec::new(); self.len()];
        for (u, v) in self.edges() {
            und[u.index()].push(v);
            und[v.index()].push(u);
        }
        for list in &mut und {
            list.sort_unstable();
            list.dedup();
        }
        und
    }

    /// A new graph with every edge reversed.
    pub fn reversed(&self) -> KnowledgeGraph {
        let mut g = KnowledgeGraph::new(self.len());
        for (u, v) in self.edges() {
            g.add_edge(v, u);
        }
        g
    }

    /// The disjoint union of two graphs; `other`'s node `i` becomes node
    /// `self.len() + i`.
    pub fn disjoint_union(&self, other: &KnowledgeGraph) -> KnowledgeGraph {
        let offset = self.len();
        let mut g = self.clone();
        g.adj.extend(other.adj.iter().map(|outs| {
            outs.iter()
                .map(|v| NodeId::new(v.index() + offset))
                .collect::<Vec<_>>()
        }));
        g.edges += other.edges;
        g
    }
}

impl fmt::Debug for KnowledgeGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KnowledgeGraph(n={}, m={})",
            self.len(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_builds_and_dedups() {
        let g = KnowledgeGraph::from_edges(4, [(0, 1), (1, 2), (0, 1), (3, 0)]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(NodeId::new(3), NodeId::new(0)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(3)));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        KnowledgeGraph::from_edges(2, [(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        KnowledgeGraph::from_edges(2, [(0, 2)]);
    }

    #[test]
    fn undirected_view_symmetrizes() {
        let g = KnowledgeGraph::from_edges(3, [(0, 1), (2, 1)]);
        let und = g.undirected_adjacency();
        assert_eq!(und[1], vec![NodeId::new(0), NodeId::new(2)]);
        assert_eq!(und[0], vec![NodeId::new(1)]);
    }

    #[test]
    fn reversed_flips_edges() {
        let g = KnowledgeGraph::from_edges(3, [(0, 1), (1, 2)]);
        let r = g.reversed();
        assert!(r.has_edge(NodeId::new(1), NodeId::new(0)));
        assert!(r.has_edge(NodeId::new(2), NodeId::new(1)));
        assert_eq!(r.edge_count(), 2);
    }

    #[test]
    fn disjoint_union_offsets() {
        let a = KnowledgeGraph::from_edges(2, [(0, 1)]);
        let b = KnowledgeGraph::from_edges(2, [(1, 0)]);
        let u = a.disjoint_union(&b);
        assert_eq!(u.len(), 4);
        assert_eq!(u.edge_count(), 2);
        assert!(u.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(u.has_edge(NodeId::new(3), NodeId::new(2)));
    }

    #[test]
    fn add_node_grows() {
        let mut g = KnowledgeGraph::new(1);
        let v = g.add_node();
        assert_eq!(v, NodeId::new(1));
        g.add_edge(NodeId::new(0), v);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn initial_knowledge_matches_out_edges() {
        let g = KnowledgeGraph::from_edges(3, [(0, 1), (0, 2)]);
        let k = g.initial_knowledge();
        assert_eq!(k[0], vec![NodeId::new(1), NodeId::new(2)]);
        assert!(k[1].is_empty());
    }
}
