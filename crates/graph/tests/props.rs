//! Property-based tests: connectivity algorithms against brute-force
//! oracles, and generator invariants.

use proptest::prelude::*;

use ard_graph::{components, gen, KnowledgeGraph};
use ard_netsim::NodeId;

/// Brute-force weak-components oracle: repeated relabelling.
fn oracle_weak_components(g: &KnowledgeGraph) -> Vec<usize> {
    let n = g.len();
    let mut label: Vec<usize> = (0..n).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (u, v) in g.edges() {
            let (lu, lv) = (label[u.index()], label[v.index()]);
            if lu != lv {
                let lo = lu.min(lv);
                for l in label.iter_mut() {
                    if *l == lu.max(lv) {
                        *l = lo;
                    }
                }
                changed = true;
            }
        }
    }
    label
}

/// Brute-force strong-connectivity oracle: BFS reachability both ways.
fn oracle_mutually_reachable(g: &KnowledgeGraph, a: NodeId, b: NodeId) -> bool {
    let reach = |from: NodeId, to: NodeId| -> bool {
        let mut seen = vec![false; g.len()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(u) = stack.pop() {
            if u == to {
                return true;
            }
            for &v in g.out_edges(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        false
    };
    reach(a, b) && reach(b, a)
}

fn arbitrary_graph() -> impl Strategy<Value = KnowledgeGraph> {
    (
        1usize..16,
        prop::collection::vec((0usize..16, 0usize..16), 0..50),
    )
        .prop_map(|(n, edges)| {
            let mut g = KnowledgeGraph::new(n);
            for (u, v) in edges {
                let (u, v) = (u % n, v % n);
                if u != v {
                    g.add_edge(NodeId::new(u), NodeId::new(v));
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Weak components agree with the brute-force relabelling oracle.
    #[test]
    fn weak_components_match_oracle(g in arbitrary_graph()) {
        let ours = components::weak_component_ids(&g);
        let oracle = oracle_weak_components(&g);
        for u in 0..g.len() {
            for v in 0..g.len() {
                prop_assert_eq!(
                    ours[u] == ours[v],
                    oracle[u] == oracle[v],
                    "{} vs {}", u, v
                );
            }
        }
    }

    /// Tarjan SCCs: two nodes share a component iff mutually reachable.
    #[test]
    fn sccs_match_reachability_oracle(g in arbitrary_graph()) {
        let sccs = components::strongly_connected_components(&g);
        let mut id = vec![usize::MAX; g.len()];
        for (ci, c) in sccs.iter().enumerate() {
            for &v in c {
                id[v.index()] = ci;
            }
        }
        // Every node appears exactly once.
        prop_assert!(id.iter().all(|&i| i != usize::MAX));
        for u in 0..g.len().min(8) {
            for v in 0..g.len().min(8) {
                if u == v { continue; }
                prop_assert_eq!(
                    id[u] == id[v],
                    oracle_mutually_reachable(&g, NodeId::new(u), NodeId::new(v)),
                    "{} vs {}", u, v
                );
            }
        }
    }

    /// Random generators keep their promises for arbitrary parameters.
    #[test]
    fn random_generator_invariants(n in 1usize..40, extra in 0usize..120, seed in 0u64..10_000) {
        let g = gen::random_weakly_connected(n, extra, seed);
        prop_assert_eq!(g.len(), n);
        prop_assert!(components::is_weakly_connected(&g));
        let expected = (n.saturating_sub(1) + extra).min(n * n.saturating_sub(1));
        prop_assert_eq!(g.edge_count(), expected);
    }

    /// The undirected view is symmetric and edge-complete.
    #[test]
    fn undirected_view_is_symmetric(g in arbitrary_graph()) {
        let und = g.undirected_adjacency();
        for (u, list) in und.iter().enumerate() {
            for &v in list {
                prop_assert!(und[v.index()].contains(&NodeId::new(u)));
            }
        }
        for (u, v) in g.edges() {
            prop_assert!(und[u.index()].contains(&v));
        }
    }

    /// Reversal is an involution that preserves weak components.
    #[test]
    fn reversal_involution(g in arbitrary_graph()) {
        let rr = g.reversed().reversed();
        prop_assert_eq!(rr.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            prop_assert!(rr.has_edge(u, v));
        }
        prop_assert_eq!(
            components::weak_component_ids(&g),
            components::weak_component_ids(&g.reversed())
        );
    }
}
