//! Deterministic asynchronous network simulator for knowledge-graph protocols.
//!
//! This crate is the communication substrate used by the reproduction of
//! *Asynchronous Resource Discovery* (Abraham & Dolev, PODC 2003). It models
//! the paper's network exactly:
//!
//! * Nodes communicate by **point-to-point messages** over a *knowledge
//!   graph*: a node may only address a node whose id it has learned
//!   ([`Runner`] enforces this and panics on violations, which always
//!   indicate a protocol bug).
//! * Delivery is **asynchronous**: messages arrive after a finite but
//!   unbounded delay, chosen by a pluggable [`Scheduler`]. Adversarial
//!   schedulers (e.g. the subtree-freezing adversary of the paper's
//!   Theorem 1) are ordinary [`Scheduler`] implementations.
//! * Each ordered pair of nodes is connected by a **FIFO link**: messages
//!   from `u` to `v` arrive at `v` in the order `u` sent them, regardless of
//!   how the scheduler interleaves links.
//! * There is **no global start**: nodes wake up asynchronously, in an order
//!   the scheduler (or the driving test harness) controls, and a sleeping
//!   node is woken by the first message that reaches it.
//!
//! The simulator meters every message (count and bit size, per message kind)
//! through [`Metrics`], which is how the reproduction regenerates the paper's
//! message- and bit-complexity results.
//!
//! # Example
//!
//! A two-node "ping" protocol:
//!
//! ```
//! use ard_netsim::{Context, Envelope, FifoScheduler, NodeId, Protocol, Runner};
//!
//! #[derive(Clone, Debug)]
//! struct Ping;
//!
//! impl Envelope for Ping {
//!     fn kind(&self) -> &'static str { "ping" }
//!     fn for_each_carried_id(&self, _f: &mut dyn FnMut(NodeId)) {}
//!     fn aux_bits(&self) -> u64 { 0 }
//! }
//!
//! struct Node { peer: Option<NodeId>, got: bool }
//!
//! impl Protocol for Node {
//!     type Message = Ping;
//!     fn on_wake(&mut self, ctx: &mut Context<'_, Ping>) {
//!         if let Some(peer) = self.peer {
//!             ctx.send(peer, Ping);
//!         }
//!     }
//!     fn on_message(&mut self, _from: NodeId, _msg: Ping, _ctx: &mut Context<'_, Ping>) {
//!         self.got = true;
//!     }
//! }
//!
//! let a = NodeId::new(0);
//! let b = NodeId::new(1);
//! // `a` initially knows `b`; `b` knows nobody.
//! let mut runner = Runner::new(
//!     vec![Node { peer: Some(b), got: false }, Node { peer: None, got: false }],
//!     vec![vec![b], vec![]],
//! );
//! let mut sched = FifoScheduler::new();
//! runner.enqueue_wake(a, &mut sched);
//! runner.run(&mut sched, 100).unwrap();
//! assert!(runner.node(b).got);
//! assert_eq!(runner.metrics().total_messages(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod bitset;
mod context;
mod envelope;
pub mod explore;
pub mod fault;
mod id;
mod idseq;
mod intset;
mod metrics;
pub mod par;
pub mod record;
mod runner;
mod scheduler;
pub mod shard;
pub mod shrink;
pub mod sync;
mod table;
pub mod trace;

pub use arena::MessageArena;
pub use bitset::BitSet;
pub use context::Context;
pub use envelope::{Envelope, KIND_TAG_BITS};
pub use fault::{ByzantinePlan, ChurnPlan, FaultPlan, FaultScheduler};
pub use id::NodeId;
pub use idseq::IdSeq;
pub use intset::IntervalSet;
pub use metrics::{ByzantineCounts, FaultCounts, KindCounts, Metrics};
pub use record::{RecordingScheduler, ReplayScheduler, Schedule, ScheduleParseError};
pub use runner::{LivelockError, Protocol, Runner};
pub use scheduler::{
    BoundedDelayScheduler, Choice, FifoScheduler, Footprint, LifoScheduler, RandomScheduler,
    Scheduler, SendToken, StateDigest,
};
