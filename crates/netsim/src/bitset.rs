//! A growable bitset for dense-index sets.
//!
//! Node ids are dense indices (see [`NodeId`](crate::NodeId)), so per-node
//! knowledge sets are kept as bitsets rather than hash sets: membership and
//! insertion are a word index and a mask — no hashing, no per-insert
//! allocation — which keeps the simulator's delivery hot path
//! allocation-free.

/// A growable set of `usize` indices backed by a `Vec<u64>` of bit words.
///
/// # Example
///
/// ```
/// use ard_netsim::BitSet;
///
/// let mut set = BitSet::new();
/// assert!(set.insert(3));
/// assert!(!set.insert(3), "second insert reports already-present");
/// assert!(set.contains(3));
/// assert!(!set.contains(200));
/// assert_eq!(set.len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        BitSet::default()
    }

    /// Creates an empty set pre-sized to hold indices below `bits` without
    /// reallocating.
    pub fn with_capacity(bits: usize) -> Self {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// Inserts `index`, growing the set as needed. Returns `true` if it was
    /// not already present.
    pub fn insert(&mut self, index: usize) -> bool {
        let word = index / 64;
        let mask = 1u64 << (index % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let old = self.words[word];
        self.words[word] = old | mask;
        old & mask == 0
    }

    /// Whether `index` is in the set.
    pub fn contains(&self, index: usize) -> bool {
        self.words
            .get(index / 64)
            .is_some_and(|w| w & (1u64 << (index % 64)) != 0)
    }

    /// Number of indices in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the set's indices in increasing order.
    ///
    /// Empty words are skipped in one comparison and set bits are located
    /// with `trailing_zeros`, so iteration costs O(words + members) rather
    /// than O(64 · words) — the difference is large for the sparse sets the
    /// simulator's visitor path walks at n = 10⁶.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w != 0)
            .flat_map(|(wi, &w)| {
                let mut rest = w;
                std::iter::from_fn(move || {
                    if rest == 0 {
                        return None;
                    }
                    let b = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    Some(wi * 64 + b)
                })
            })
    }

    /// Unions `other` into `self` word-by-word (`self ∪= other`).
    pub fn union_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Heap bytes backing the set (capacity, not just occupancy).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut set = BitSet::new();
        for i in iter {
            set.insert(i);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_and_growth() {
        let mut s = BitSet::new();
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(1000));
        assert!(!s.insert(1000));
        for i in [0, 63, 64, 1000] {
            assert!(s.contains(i), "missing {i}");
        }
        for i in [1, 62, 65, 999, 1001, 100_000] {
            assert!(!s.contains(i), "phantom {i}");
        }
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn with_capacity_does_not_contain_anything() {
        let s = BitSet::with_capacity(500);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!((0..500).all(|i| !s.contains(i)));
    }

    #[test]
    fn iter_yields_sorted_members() {
        let s: BitSet = [5usize, 1, 200, 64].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5, 64, 200]);
    }

    #[test]
    fn equality_ignores_trailing_zero_words_only_if_same_shape() {
        let a: BitSet = [1usize, 2].into_iter().collect();
        let b: BitSet = [1usize, 2].into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn iter_skips_long_zero_runs() {
        let s: BitSet = [0usize, 10_000].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 10_000]);
    }

    #[test]
    fn union_with_grows_and_merges() {
        let mut a: BitSet = [1usize, 100].into_iter().collect();
        let b: BitSet = [2usize, 700].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 100, 700]);
        // Union with a smaller set must not shrink.
        let small: BitSet = [3usize].into_iter().collect();
        a.union_with(&small);
        assert_eq!(a.len(), 5);
    }
}
