//! Synchronous-round execution engine.
//!
//! The prior algorithms the paper compares against (Harchol-Balter, Leighton
//! & Lewin's *Name-Dropper*; Law & Siu's algorithm) are *synchronous*: all
//! nodes proceed in lockstep rounds and every message sent in round `r` is
//! delivered before round `r + 1`. This module provides that model with the
//! same knowledge enforcement and [`Metrics`] accounting as the asynchronous
//! [`Runner`](crate::Runner), so baseline costs are directly comparable.
//!
//! # Example
//!
//! ```
//! use ard_netsim::sync::{SyncNetwork, SyncProtocol};
//! use ard_netsim::{Context, Envelope, NodeId};
//!
//! #[derive(Clone, Debug)]
//! struct Hello;
//! impl Envelope for Hello {
//!     fn kind(&self) -> &'static str { "hello" }
//!     fn for_each_carried_id(&self, _f: &mut dyn FnMut(NodeId)) {}
//!     fn aux_bits(&self) -> u64 { 0 }
//! }
//!
//! /// Greets the next node once, in round 0.
//! struct Greeter { next: Option<NodeId>, greeted: u32 }
//! impl SyncProtocol for Greeter {
//!     type Message = Hello;
//!     fn on_round(&mut self, round: u64, inbox: Vec<(NodeId, Hello)>, ctx: &mut Context<'_, Hello>) {
//!         self.greeted += inbox.len() as u32;
//!         if round == 0 {
//!             if let Some(next) = self.next {
//!                 ctx.send(next, Hello);
//!             }
//!         }
//!     }
//! }
//!
//! let mut net = SyncNetwork::new(
//!     vec![Greeter { next: Some(NodeId::new(1)), greeted: 0 }, Greeter { next: None, greeted: 0 }],
//!     vec![vec![NodeId::new(1)], vec![]],
//! );
//! let rounds = net.run(10);
//! assert_eq!(rounds, 2); // one round of sending, one of receiving
//! assert_eq!(net.node(NodeId::new(1)).greeted, 1);
//! ```

use crate::bitset::BitSet;
use crate::envelope::Envelope;
use crate::{Context, Metrics, NodeId};

/// Behaviour of one node in a synchronous network.
pub trait SyncProtocol {
    /// The protocol's message type.
    type Message: Envelope;

    /// Called once per round with all messages sent to this node in the
    /// previous round (in sender-id order, per-link FIFO). Messages sent
    /// through `ctx` are delivered next round.
    fn on_round(
        &mut self,
        round: u64,
        inbox: Vec<(NodeId, Self::Message)>,
        ctx: &mut Context<'_, Self::Message>,
    );
}

/// A lockstep synchronous network over [`SyncProtocol`] nodes.
pub struct SyncNetwork<P: SyncProtocol> {
    nodes: Vec<P>,
    knowledge: Vec<BitSet>,
    inboxes: Vec<Vec<(NodeId, P::Message)>>,
    metrics: Metrics,
    round: u64,
}

impl<P: SyncProtocol> SyncNetwork<P> {
    /// Creates a synchronous network with initial knowledge graph `E₀`
    /// (see [`Runner::new`](crate::Runner::new) for conventions).
    pub fn new(nodes: Vec<P>, initial_knowledge: Vec<Vec<NodeId>>) -> Self {
        assert_eq!(nodes.len(), initial_knowledge.len());
        let n = nodes.len();
        let id_bits = (usize::BITS - n.saturating_sub(1).leading_zeros()).max(1) as u64;
        let knowledge = initial_knowledge
            .into_iter()
            .enumerate()
            .map(|(i, known)| {
                let mut set = BitSet::with_capacity(n);
                for v in known {
                    assert!(v.index() < n, "initial edge points outside the network");
                    set.insert(v.index());
                }
                set.insert(i);
                set
            })
            .collect();
        SyncNetwork {
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            nodes,
            knowledge,
            metrics: Metrics::new(id_bits),
            round: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id.index()]
    }

    /// Iterates over all nodes in index order.
    pub fn nodes(&self) -> impl Iterator<Item = &P> {
        self.nodes.iter()
    }

    /// The accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Whether node `u` knows `v`'s id.
    pub fn knows(&self, u: NodeId, v: NodeId) -> bool {
        self.knowledge[u.index()].contains(v.index())
    }

    /// Executes one round. Returns the number of messages sent in it.
    pub fn step_round(&mut self) -> u64 {
        let n = self.nodes.len();
        let mut outgoing: Vec<(NodeId, NodeId, P::Message)> = Vec::new();
        for i in 0..n {
            let me = NodeId::new(i);
            let inbox = std::mem::take(&mut self.inboxes[i]);
            let mut outbox = Vec::new();
            let mut ctx = Context::new(me, &mut outbox);
            self.nodes[i].on_round(self.round, inbox, &mut ctx);
            for (dst, msg) in outbox {
                assert!(
                    self.knowledge[i].contains(dst.index()),
                    "knowledge violation: {me} sent {:?} to {dst} without knowing its id",
                    msg.kind()
                );
                self.metrics
                    .record(msg.kind(), msg.carried_id_count(), msg.aux_bits());
                outgoing.push((me, dst, msg));
            }
        }
        let sent = outgoing.len() as u64;
        // Deliver in (sender, send-order): per-link FIFO and deterministic.
        outgoing.sort_by_key(|(src, _, _)| *src);
        for (src, dst, msg) in outgoing {
            let know = &mut self.knowledge[dst.index()];
            know.insert(src.index());
            msg.for_each_carried_id(&mut |id| {
                know.insert(id.index());
            });
            self.metrics.record_delivery(self.round + 1);
            self.inboxes[dst.index()].push((src, msg));
        }
        self.round += 1;
        sent
    }

    /// Runs rounds until a round sends no messages and all inboxes are
    /// empty, or `max_rounds` elapse. Returns the number of rounds executed.
    pub fn run(&mut self, max_rounds: u64) -> u64 {
        let start = self.round;
        while self.round - start < max_rounds {
            let sent = self.step_round();
            if sent == 0 && self.inboxes.iter().all(Vec::is_empty) {
                break;
            }
        }
        self.round - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Share(Vec<NodeId>);
    impl Envelope for Share {
        fn kind(&self) -> &'static str {
            "share"
        }
        fn for_each_carried_id(&self, f: &mut dyn FnMut(NodeId)) {
            self.0.iter().copied().for_each(f);
        }
        fn aux_bits(&self) -> u64 {
            0
        }
    }

    /// Every round, forward everything known to the (single) initial peer.
    struct Gossip {
        peer: Option<NodeId>,
        known: Vec<NodeId>,
        sent: bool,
    }

    impl SyncProtocol for Gossip {
        type Message = Share;
        fn on_round(
            &mut self,
            _round: u64,
            inbox: Vec<(NodeId, Share)>,
            ctx: &mut Context<'_, Share>,
        ) {
            for (from, msg) in inbox {
                if !self.known.contains(&from) {
                    self.known.push(from);
                }
                for id in msg.0 {
                    if !self.known.contains(&id) {
                        self.known.push(id);
                    }
                }
            }
            if !self.sent {
                self.sent = true;
                if let Some(p) = self.peer {
                    ctx.send(p, Share(self.known.clone()));
                }
            }
        }
    }

    #[test]
    fn knowledge_propagates_and_run_terminates() {
        let n = 5;
        let nodes: Vec<Gossip> = (0..n)
            .map(|i| Gossip {
                peer: if i + 1 < n {
                    Some(NodeId::new(i + 1))
                } else {
                    None
                },
                known: vec![NodeId::new(i)],
                sent: false,
            })
            .collect();
        let knowledge = (0..n)
            .map(|i| {
                if i + 1 < n {
                    vec![NodeId::new(i + 1)]
                } else {
                    vec![]
                }
            })
            .collect();
        let mut net = SyncNetwork::new(nodes, knowledge);
        let rounds = net.run(100);
        assert!(rounds < 100, "should terminate early");
        assert_eq!(net.metrics().total_messages(), (n - 1) as u64);
        // Receiver of each share learns the sender's id.
        for i in 1..n {
            assert!(net.knows(NodeId::new(i), NodeId::new(i - 1)));
        }
    }

    #[test]
    fn round_counter_advances() {
        let mut net = SyncNetwork::new(
            vec![Gossip {
                peer: None,
                known: vec![],
                sent: false,
            }],
            vec![vec![]],
        );
        assert_eq!(net.round(), 0);
        net.step_round();
        assert_eq!(net.round(), 1);
    }
}
