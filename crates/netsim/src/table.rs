//! Struct-of-arrays per-node simulator state.
//!
//! [`Runner`](crate::Runner) used to keep three parallel `Vec<bool>`s
//! (awake / wake-enqueued / crashed) plus a `Vec<BitSet>` of knowledge
//! sets. At n = 10⁶ that layout wastes 7/8 of every flag byte and pays a
//! dense bitset word array per node. [`NodeTable`] packs each flag plane
//! into `u64` words (one cache line covers 512 nodes) and stores knowledge
//! behind [`Knowledge`], which switches to interval coding above
//! [`DENSE_KNOWLEDGE_MAX`] nodes.

use crate::bitset::BitSet;
use crate::intset::IntervalSet;

/// Largest network size for which knowledge sets stay dense bitsets.
///
/// Below this, a knowledge set costs at most 1 KiB of words and dense
/// operations are fastest; above it, per-node O(n) bits stops scaling
/// (n = 10⁶ would need ~125 GB) and runs win.
pub(crate) const DENSE_KNOWLEDGE_MAX: usize = 8192;

/// One packed plane of per-node boolean flags.
#[derive(Clone, Debug, Default)]
pub(crate) struct Flags {
    words: Vec<u64>,
    len: usize,
}

impl Flags {
    /// An all-false plane for `n` nodes.
    pub(crate) fn new(n: usize) -> Self {
        Flags {
            words: vec![0; n.div_ceil(64)],
            len: n,
        }
    }

    /// Reads flag `i`.
    #[inline]
    pub(crate) fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Writes flag `i`.
    #[inline]
    pub(crate) fn set(&mut self, i: usize, value: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Appends one flag (dynamic node addition).
    pub(crate) fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        let i = self.len;
        self.len += 1;
        self.set(i, value);
    }
}

/// A node's knowledge set — the ids it may address.
///
/// Representation is chosen once per network size: dense [`BitSet`] up to
/// [`DENSE_KNOWLEDGE_MAX`] nodes, interval-coded [`RunsKnowledge`] beyond.
/// Both answer the same queries, so the engine treats them uniformly.
#[derive(Clone, Debug)]
pub(crate) enum Knowledge {
    /// Dense bit words — O(1) everything, O(n) bits per node.
    Dense(BitSet),
    /// Sorted runs plus a small unsorted overflow — O(1) amortized insert,
    /// memory ≈ runs, O(runs) union.
    Runs(RunsKnowledge),
}

/// Once the overflow buffer reaches this many ids it is sorted and merged
/// into the run vector as one union. Batching turns the per-id cost of a
/// scattered insert stream from O(runs) (a tail-memmove per new interior
/// run) into O(runs / PENDING_MAX + 1) amortized, while keeping lookups
/// cheap: a miss scans at most this many extra words.
const PENDING_MAX: usize = 64;

/// Interval-coded knowledge with insert batching: `set` holds the merged
/// runs, `pending` buffers up to [`PENDING_MAX`] recently learned ids that
/// are not yet worth a run-vector rebuild. `contains` consults both, so
/// the buffered ids are observable immediately.
#[derive(Clone, Debug, Default)]
pub(crate) struct RunsKnowledge {
    set: IntervalSet,
    pending: Vec<u32>,
}

impl RunsKnowledge {
    /// Inserts `index`; `true` if it was not already present.
    #[inline]
    pub(crate) fn insert(&mut self, index: usize) -> bool {
        if self.contains(index) {
            return false;
        }
        let i = u32::try_from(index).expect("knowledge index fits u32");
        self.pending.push(i);
        if self.pending.len() >= PENDING_MAX {
            self.flush();
        }
        true
    }

    /// Whether `index` is present (merged or still buffered).
    #[inline]
    pub(crate) fn contains(&self, index: usize) -> bool {
        self.set.contains(index)
            || u32::try_from(index).is_ok_and(|i| self.pending.contains(&i))
    }

    /// Inserts the whole half-open run `[start, end)`. Tiny runs go
    /// through the buffered per-id path; longer ones are first checked
    /// for coverage (one binary search — the common redelivery case) and
    /// otherwise merged into the run vector directly, so absorbing a
    /// run-coded payload is O(runs), never O(ids).
    pub(crate) fn insert_run(&mut self, start: u32, end: u32) {
        if end.saturating_sub(start) <= 2 {
            for i in start..end {
                self.insert(i as usize);
            }
        } else if !self.set.covers(start, end) {
            self.flush();
            self.set.insert_run(start, end);
        }
    }

    /// Merges the overflow buffer into the run vector: sorted, then one
    /// `insert_run` per maximal consecutive stretch (allocation-free —
    /// this runs on the delivery hot path).
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.pending.sort_unstable();
        let mut i = 0;
        while i < self.pending.len() {
            let start = self.pending[i];
            let mut end = start + 1;
            i += 1;
            while i < self.pending.len() && self.pending[i] <= end {
                end = end.max(self.pending[i] + 1);
                i += 1;
            }
            self.set.insert_run(start, end);
        }
        self.pending.clear();
    }

    /// Heap bytes backing the set.
    fn heap_bytes(&self) -> usize {
        self.set.heap_bytes() + self.pending.capacity() * std::mem::size_of::<u32>()
    }
}

impl Knowledge {
    /// An empty set sized (and representation-selected) for an `n`-node
    /// network.
    pub(crate) fn for_network(n: usize) -> Self {
        if n > DENSE_KNOWLEDGE_MAX {
            Knowledge::Runs(RunsKnowledge::default())
        } else {
            Knowledge::Dense(BitSet::with_capacity(n))
        }
    }

    /// Inserts `index`; `true` if it was not already present.
    #[inline]
    pub(crate) fn insert(&mut self, index: usize) -> bool {
        match self {
            Knowledge::Dense(s) => s.insert(index),
            Knowledge::Runs(s) => s.insert(index),
        }
    }

    /// Whether `index` is present.
    #[inline]
    pub(crate) fn contains(&self, index: usize) -> bool {
        match self {
            Knowledge::Dense(s) => s.contains(index),
            Knowledge::Runs(s) => s.contains(index),
        }
    }

    /// Heap bytes backing the set.
    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            Knowledge::Dense(s) => s.heap_bytes(),
            Knowledge::Runs(s) => s.heap_bytes(),
        }
    }

    /// Mixes the set's *membership* into `d`, independent of insertion
    /// order and internal layout: dense sets digest their sorted members,
    /// run-coded sets digest their merged runs (flushing a clone of the
    /// overflow buffer first, so a buffered id and a merged id hash alike).
    pub(crate) fn digest_into(&self, d: &mut crate::scheduler::StateDigest) {
        match self {
            Knowledge::Dense(s) => {
                d.mix(s.len() as u64);
                for i in s.iter() {
                    d.mix(i as u64);
                }
            }
            Knowledge::Runs(s) => {
                let canonical;
                let set = if s.pending.is_empty() {
                    &s.set
                } else {
                    let mut merged = s.clone();
                    merged.flush();
                    canonical = merged.set;
                    &canonical
                };
                d.mix(set.runs().len() as u64);
                for &(lo, hi) in set.runs() {
                    d.mix(u64::from(lo));
                    d.mix(u64::from(hi));
                }
            }
        }
    }

    /// Inserts the half-open run `[start, end)` — how a delivery absorbs
    /// a run-coded payload: O(runs per message), never O(ids), with no
    /// staging set in between (this replaced an `IntervalSet` scratch
    /// rebuilt per delivery, which dominated large-n absorption cost).
    #[inline]
    pub(crate) fn insert_run(&mut self, start: u32, end: u32) {
        match self {
            Knowledge::Dense(s) => {
                for i in start..end {
                    s.insert(i as usize);
                }
            }
            Knowledge::Runs(s) => s.insert_run(start, end),
        }
    }
}

/// Struct-of-arrays state for every node: three packed flag planes plus the
/// knowledge sets, indexed by dense node index.
#[derive(Clone, Debug, Default)]
pub(crate) struct NodeTable {
    awake: Flags,
    wake_enqueued: Flags,
    crashed: Flags,
    left: Flags,
    pub(crate) knowledge: Vec<Knowledge>,
}

impl NodeTable {
    /// A table for `n` sleeping, uncrashed, empty-knowledge nodes.
    pub(crate) fn new(n: usize) -> Self {
        NodeTable {
            awake: Flags::new(n),
            wake_enqueued: Flags::new(n),
            crashed: Flags::new(n),
            left: Flags::new(n),
            knowledge: Vec::with_capacity(n),
        }
    }

    #[inline]
    pub(crate) fn awake(&self, i: usize) -> bool {
        self.awake.get(i)
    }

    #[inline]
    pub(crate) fn set_awake(&mut self, i: usize, value: bool) {
        self.awake.set(i, value);
    }

    #[inline]
    pub(crate) fn wake_enqueued(&self, i: usize) -> bool {
        self.wake_enqueued.get(i)
    }

    #[inline]
    pub(crate) fn set_wake_enqueued(&mut self, i: usize, value: bool) {
        self.wake_enqueued.set(i, value);
    }

    #[inline]
    pub(crate) fn crashed(&self, i: usize) -> bool {
        self.crashed.get(i)
    }

    #[inline]
    pub(crate) fn set_crashed(&mut self, i: usize, value: bool) {
        self.crashed.set(i, value);
    }

    #[inline]
    pub(crate) fn left(&self, i: usize) -> bool {
        self.left.get(i)
    }

    #[inline]
    pub(crate) fn set_left(&mut self, i: usize, value: bool) {
        self.left.set(i, value);
    }

    /// Appends one sleeping node with the given knowledge (dynamic node
    /// addition).
    pub(crate) fn push(&mut self, knowledge: Knowledge) {
        self.awake.push(false);
        self.wake_enqueued.push(false);
        self.crashed.push(false);
        self.left.push(false);
        self.knowledge.push(knowledge);
    }

    /// Sum of heap bytes across all knowledge sets.
    pub(crate) fn knowledge_bytes(&self) -> usize {
        self.knowledge.iter().map(Knowledge::heap_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_pack_and_roundtrip() {
        let mut f = Flags::new(130);
        assert!(!(0..130).any(|i| f.get(i)));
        f.set(0, true);
        f.set(63, true);
        f.set(64, true);
        f.set(129, true);
        for i in [0, 63, 64, 129] {
            assert!(f.get(i), "missing {i}");
        }
        f.set(64, false);
        assert!(!f.get(64));
        f.push(true);
        assert!(f.get(130));
    }

    #[test]
    fn flags_push_from_empty_grows_words() {
        let mut f = Flags::new(0);
        for i in 0..100 {
            f.push(i % 3 == 0);
        }
        assert!((0..100).all(|i| f.get(i) == (i % 3 == 0)));
    }

    #[test]
    fn knowledge_representation_follows_network_size() {
        assert!(matches!(
            Knowledge::for_network(DENSE_KNOWLEDGE_MAX),
            Knowledge::Dense(_)
        ));
        assert!(matches!(
            Knowledge::for_network(DENSE_KNOWLEDGE_MAX + 1),
            Knowledge::Runs(_)
        ));
        let mut k = Knowledge::for_network(1 << 20);
        assert!(k.insert(7));
        assert!(!k.insert(7));
        assert!(k.contains(7));
        assert!(!k.contains(8));
        assert!(k.heap_bytes() < 1024, "interval coding stays tiny");
    }
}
