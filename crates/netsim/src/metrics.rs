use std::fmt;

/// Message and bit counters for one message kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindCounts {
    /// Number of messages of this kind sent.
    pub messages: u64,
    /// Total bits of all messages of this kind.
    pub bits: u64,
    /// Size of the largest single message of this kind, in bits.
    pub max_bits: u64,
}

/// Per-fault counters of a run under fault injection.
///
/// All zeros for a fault-free run; [`Metrics`]' `Display` only prints the
/// fault line when at least one counter is nonzero, so fault-free output is
/// byte-identical to builds without fault injection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Messages dropped by an injected link fault.
    pub drops: u64,
    /// Messages duplicated by an injected link fault.
    pub duplicates: u64,
    /// Node crash events executed.
    pub crashes: u64,
    /// Node restart events executed.
    pub restarts: u64,
    /// Timer ticks fired on live nodes.
    pub ticks: u64,
    /// Events (deliveries, wake-ups, ticks) discarded because the target
    /// node was crashed.
    pub crash_discards: u64,
}

impl FaultCounts {
    /// Whether any fault was observed.
    pub fn any(&self) -> bool {
        self.drops != 0
            || self.duplicates != 0
            || self.crashes != 0
            || self.restarts != 0
            || self.ticks != 0
            || self.crash_discards != 0
    }
}

/// Byzantine-behaviour and churn counters of a run under a
/// [`ByzantinePlan`](crate::fault::ByzantinePlan) /
/// [`ChurnPlan`](crate::fault::ChurnPlan).
///
/// All zeros without such a plan; like [`FaultCounts`], `Display` only
/// prints the line when at least one counter is nonzero, so benign output
/// stays byte-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ByzantineCounts {
    /// Messages forged by Byzantine nodes (and accepted by the protocol's
    /// `forge` hook).
    pub forged: u64,
    /// Total bits of forged messages (also charged to the per-kind meters;
    /// budget checks net them out via this counter).
    pub forged_bits: u64,
    /// Forge choices the protocol declined (`forge` returned `None`).
    pub forge_noops: u64,
    /// Messages silently withheld by their Byzantine sender.
    pub silenced: u64,
    /// Stale (amnesiac) restarts executed.
    pub stale_restarts: u64,
    /// Churn joins executed.
    pub joins: u64,
    /// Churn leaves executed.
    pub leaves: u64,
    /// Events discarded because their target had left the network.
    pub leave_discards: u64,
}

impl ByzantineCounts {
    /// Whether any Byzantine/churn event was observed.
    pub fn any(&self) -> bool {
        self.forged != 0
            || self.forge_noops != 0
            || self.silenced != 0
            || self.stale_restarts != 0
            || self.joins != 0
            || self.leaves != 0
            || self.leave_discards != 0
    }
}

/// Accumulated communication cost of a simulation run.
///
/// Costs are charged at *send* time (the paper counts messages sent; in a
/// reliable network every sent message is eventually delivered, and the
/// simulator's quiescence condition guarantees that before reporting).
///
/// Bit accounting follows the paper: each id costs `id_bits = ⌈log₂ n⌉`
/// bits, and each message additionally pays its non-id payload plus a
/// constant kind tag (see [`Envelope`](crate::Envelope)).
///
/// # Example
///
/// ```
/// use ard_netsim::Metrics;
///
/// let mut m = Metrics::new(10); // ids are 10 bits wide
/// m.record("search", 2, 5);     // 2 ids + 5 aux bits
/// m.record("search", 1, 5);
/// assert_eq!(m.total_messages(), 2);
/// assert_eq!(m.kind("search").messages, 2);
/// // 2*10+5+4 plus 1*10+5+4
/// assert_eq!(m.total_bits(), 29 + 19);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    id_bits: u64,
    // Few kinds (one per message variant), recorded once per send: a short
    // vector scanned by pointer equality beats a string-keyed map. Kept
    // sorted by kind name so read-side iteration is in kind order.
    per_kind: Vec<(&'static str, KindCounts)>,
    deliveries: u64,
    wakeups: u64,
    max_causal_depth: u64,
    max_link_queue: usize,
    faults: FaultCounts,
    byzantine: ByzantineCounts,
}

impl Metrics {
    /// Creates an empty meter where each id costs `id_bits` bits.
    pub fn new(id_bits: u64) -> Self {
        Metrics {
            id_bits,
            ..Metrics::default()
        }
    }

    /// The configured width of one id, in bits.
    pub fn id_bits(&self) -> u64 {
        self.id_bits
    }

    /// Records the send of one message of `kind` carrying `ids` node ids and
    /// `aux_bits` bits of non-id payload.
    pub fn record(&mut self, kind: &'static str, ids: usize, aux_bits: u64) {
        let bits = ids as u64 * self.id_bits + aux_bits + crate::envelope::KIND_TAG_BITS;
        // Kind names are interned literals, so pointer equality identifies a
        // seen kind without comparing string contents.
        if let Some((_, entry)) = self
            .per_kind
            .iter_mut()
            .find(|&&mut (k, _)| std::ptr::eq(k, kind))
        {
            entry.messages += 1;
            entry.bits += bits;
            entry.max_bits = entry.max_bits.max(bits);
            return;
        }
        self.record_new_kind(kind, bits);
    }

    /// Slow path of [`record`](Metrics::record): first send of a kind (or a
    /// differently-interned copy of a seen kind name).
    fn record_new_kind(&mut self, kind: &'static str, bits: u64) {
        let at = match self.per_kind.binary_search_by_key(&kind, |&(k, _)| k) {
            Ok(at) => at,
            Err(at) => {
                self.per_kind.insert(at, (kind, KindCounts::default()));
                at
            }
        };
        let entry = &mut self.per_kind[at].1;
        entry.messages += 1;
        entry.bits += bits;
        entry.max_bits = entry.max_bits.max(bits);
    }

    /// Mixes every counter into `d`. Metrics are part of the explorer's
    /// canonical state digest because violation checks read them (budget
    /// lemmas, fault-aware budgets): two branches only dedup as equivalent
    /// if they agree on state *and* on everything the checks can observe.
    pub(crate) fn digest_into(&self, d: &mut crate::scheduler::StateDigest) {
        d.mix(self.id_bits);
        d.mix(self.per_kind.len() as u64);
        for (kind, counts) in &self.per_kind {
            d.mix_bytes(kind.as_bytes());
            d.mix(counts.messages);
            d.mix(counts.bits);
            d.mix(counts.max_bits);
        }
        d.mix(self.deliveries);
        d.mix(self.wakeups);
        d.mix(self.max_causal_depth);
        d.mix(self.max_link_queue as u64);
        let f = &self.faults;
        for v in [
            f.drops,
            f.duplicates,
            f.crashes,
            f.restarts,
            f.ticks,
            f.crash_discards,
        ] {
            d.mix(v);
        }
        let b = &self.byzantine;
        for v in [
            b.forged,
            b.forged_bits,
            b.forge_noops,
            b.silenced,
            b.stale_restarts,
            b.joins,
            b.leaves,
            b.leave_discards,
        ] {
            d.mix(v);
        }
    }

    pub(crate) fn record_delivery(&mut self, causal_depth: u64) {
        self.deliveries += 1;
        self.max_causal_depth = self.max_causal_depth.max(causal_depth);
    }

    pub(crate) fn record_wakeup(&mut self) {
        self.wakeups += 1;
    }

    pub(crate) fn observe_link_queue(&mut self, len: usize) {
        self.max_link_queue = self.max_link_queue.max(len);
    }

    pub(crate) fn record_drop(&mut self) {
        self.faults.drops += 1;
    }

    pub(crate) fn record_duplicate(&mut self) {
        self.faults.duplicates += 1;
    }

    pub(crate) fn record_crash(&mut self) {
        self.faults.crashes += 1;
    }

    pub(crate) fn record_restart(&mut self) {
        self.faults.restarts += 1;
    }

    pub(crate) fn record_tick(&mut self) {
        self.faults.ticks += 1;
    }

    pub(crate) fn record_crash_discard(&mut self) {
        self.faults.crash_discards += 1;
    }

    pub(crate) fn record_forge(&mut self, bits: u64) {
        self.byzantine.forged += 1;
        self.byzantine.forged_bits += bits;
    }

    pub(crate) fn record_forge_noop(&mut self) {
        self.byzantine.forge_noops += 1;
    }

    pub(crate) fn record_silence(&mut self) {
        self.byzantine.silenced += 1;
    }

    pub(crate) fn record_stale_restart(&mut self) {
        self.byzantine.stale_restarts += 1;
    }

    pub(crate) fn record_join(&mut self) {
        self.byzantine.joins += 1;
    }

    pub(crate) fn record_leave(&mut self) {
        self.byzantine.leaves += 1;
    }

    pub(crate) fn record_leave_discard(&mut self) {
        self.byzantine.leave_discards += 1;
    }

    /// Per-fault counters (all zero on a fault-free run).
    pub fn faults(&self) -> FaultCounts {
        self.faults
    }

    /// Byzantine/churn counters (all zero on a benign run).
    pub fn byzantine(&self) -> ByzantineCounts {
        self.byzantine
    }

    /// Total messages sent, over all kinds.
    pub fn total_messages(&self) -> u64 {
        self.per_kind.iter().map(|&(_, c)| c.messages).sum()
    }

    /// Total bits sent, over all kinds.
    pub fn total_bits(&self) -> u64 {
        self.per_kind.iter().map(|&(_, c)| c.bits).sum()
    }

    /// Counters for one message kind (zero if never seen).
    pub fn kind(&self, kind: &str) -> KindCounts {
        match self.per_kind.binary_search_by_key(&kind, |&(k, _)| k) {
            Ok(at) => self.per_kind[at].1,
            Err(_) => KindCounts::default(),
        }
    }

    /// Iterates over `(kind, counters)` pairs in kind order.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, KindCounts)> + '_ {
        self.per_kind.iter().map(|&(k, v)| (k, v))
    }

    /// Sums the message counts of every kind whose name is in `kinds`.
    pub fn messages_of(&self, kinds: &[&str]) -> u64 {
        kinds.iter().map(|k| self.kind(k).messages).sum()
    }

    /// Sums the bit counts of every kind whose name is in `kinds`.
    pub fn bits_of(&self, kinds: &[&str]) -> u64 {
        kinds.iter().map(|k| self.kind(k).bits).sum()
    }

    /// Number of messages actually delivered so far.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Number of node wake-ups processed.
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }

    /// Length of the longest message-causality chain observed.
    ///
    /// This is the standard asynchronous-time measure: a message sent while
    /// handling an event at depth `d` has depth `d + 1`, and wake-ups have
    /// depth `0`. It corresponds to the round count the same execution would
    /// need in a synchronous network.
    pub fn max_causal_depth(&self) -> u64 {
        self.max_causal_depth
    }

    /// Deepest per-link FIFO queue observed during the run.
    pub fn max_link_queue(&self) -> usize {
        self.max_link_queue
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} messages / {} bits (id width {} bits, causal depth {})",
            self.total_messages(),
            self.total_bits(),
            self.id_bits,
            self.max_causal_depth
        )?;
        for (kind, counts) in &self.per_kind {
            writeln!(
                f,
                "  {:<14} {:>10} msgs {:>14} bits",
                kind, counts.messages, counts.bits
            )?;
        }
        if self.faults.any() {
            writeln!(
                f,
                "faults: {} drops, {} dups, {} crashes, {} restarts, {} ticks, {} crash-discards",
                self.faults.drops,
                self.faults.duplicates,
                self.faults.crashes,
                self.faults.restarts,
                self.faults.ticks,
                self.faults.crash_discards
            )?;
        }
        if self.byzantine.any() {
            writeln!(
                f,
                "byzantine: {} forged ({} bits), {} forge-noops, {} silenced, \
                 {} stale-restarts, {} joins, {} leaves, {} leave-discards",
                self.byzantine.forged,
                self.byzantine.forged_bits,
                self.byzantine.forge_noops,
                self.byzantine.silenced,
                self.byzantine.stale_restarts,
                self.byzantine.joins,
                self.byzantine.leaves,
                self.byzantine.leave_discards
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_kind() {
        let mut m = Metrics::new(8);
        m.record("a", 1, 0);
        m.record("a", 2, 3);
        m.record("b", 0, 1);
        assert_eq!(m.kind("a").messages, 2);
        assert_eq!(m.kind("a").bits, (8 + 4) + (16 + 3 + 4));
        assert_eq!(m.kind("a").max_bits, 16 + 3 + 4);
        assert_eq!(m.kind("b").messages, 1);
        assert_eq!(m.kind("missing"), KindCounts::default());
        assert_eq!(m.total_messages(), 3);
    }

    #[test]
    fn grouped_sums() {
        let mut m = Metrics::new(4);
        m.record("x", 1, 0);
        m.record("y", 1, 0);
        m.record("z", 1, 0);
        assert_eq!(m.messages_of(&["x", "z"]), 2);
        assert_eq!(m.bits_of(&["x", "y", "z"]), m.total_bits());
    }

    #[test]
    fn causal_depth_is_max() {
        let mut m = Metrics::new(4);
        m.record_delivery(3);
        m.record_delivery(1);
        assert_eq!(m.max_causal_depth(), 3);
        assert_eq!(m.deliveries(), 2);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Metrics::new(4);
        assert!(!m.to_string().is_empty());
    }
}
