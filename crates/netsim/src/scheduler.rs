use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::NodeId;

/// A pending-message token handed to schedulers when a message is sent.
///
/// Tokens are anonymous per link: the runner always delivers the *oldest*
/// message of the chosen link, so per-link FIFO order holds no matter which
/// token the scheduler consumes. Schedulers therefore only need to decide
/// *which link* progresses next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendToken {
    /// Sender of the message.
    pub src: NodeId,
    /// Destination of the message.
    pub dst: NodeId,
    /// Global send sequence number (strictly increasing).
    pub seq: u64,
    /// Message kind, as reported by [`Envelope::kind`](crate::Envelope::kind).
    pub kind: &'static str,
}

/// One step the scheduler wants the runner to perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Choice {
    /// Wake the given node (it must have a pending wake-up token).
    Wake(NodeId),
    /// Deliver the oldest in-flight message on the link `src → dst`.
    Deliver {
        /// Sender side of the link.
        src: NodeId,
        /// Receiver side of the link.
        dst: NodeId,
    },
    /// Drop the oldest in-flight message on the link `src → dst` (fault).
    Drop {
        /// Sender side of the link.
        src: NodeId,
        /// Receiver side of the link.
        dst: NodeId,
    },
    /// Duplicate the oldest in-flight message on the link `src → dst`
    /// (fault): a copy is appended behind the current queue tail.
    Duplicate {
        /// Sender side of the link.
        src: NodeId,
        /// Receiver side of the link.
        dst: NodeId,
    },
    /// Crash the given node: its in-flight deliveries, wake-ups and timer
    /// ticks are discarded until a matching [`Choice::Restart`].
    Crash(NodeId),
    /// Restart a crashed node with its durable protocol state intact.
    Restart(NodeId),
    /// Fire the timer tick the given node armed via
    /// [`Context::arm_tick`](crate::Context::arm_tick).
    Tick(NodeId),
    /// Byzantine fabrication: `src` sends `dst` a forged message it never
    /// produced, decoded from `salt` by the protocol's
    /// [`Envelope::forge`](crate::Envelope::forge) hook. Covers both
    /// fabricated ids and equivocation (two `Forge`s with different salts
    /// to different destinations are conflicting payloads). A protocol
    /// whose `forge` returns `None` turns the choice into a no-op.
    Forge {
        /// The Byzantine sender.
        src: NodeId,
        /// The honest (or Byzantine) receiver.
        dst: NodeId,
        /// Protocol-interpreted forgery descriptor (flavor + parameters).
        salt: u32,
    },
    /// Byzantine selective silence: `src` withholds the oldest in-flight
    /// message it has queued toward `dst`. Unlike [`Choice::Drop`] (a
    /// network fault), silence is attributed to the sender — it only
    /// appears on links whose source is a Byzantine node.
    Silence {
        /// The Byzantine sender withholding the message.
        src: NodeId,
        /// The receiver that never sees it.
        dst: NodeId,
    },
    /// Restart a crashed node with *stale* (amnesiac) protocol state: the
    /// node rejoins as if freshly booted, forgetting everything since its
    /// first wake — the paper's model assumes durable state, so this is a
    /// Byzantine deviation.
    StaleRestart(NodeId),
    /// Churn: a node joins the running network (the paper's dynamic
    /// addition — a late wake-up of a node whose initial wake was
    /// withheld by the churn plan).
    Join(NodeId),
    /// Churn: a node leaves permanently. Unlike a crash there is no
    /// matching restart; in-flight traffic to it is discarded forever and
    /// requirement checks exclude it from the survivor graph.
    Leave(NodeId),
}

impl Choice {
    /// A total order over choices that depends only on the choice itself
    /// (never on arrival order): variant tag, then node ids, then salt.
    ///
    /// The explorer's reduced mode drains the tail beyond the decision
    /// window in this canonical order so that two schedules reaching the
    /// same intermediate state (with the same pending multiset) finish
    /// identically — a prerequisite for sound sleep-set pruning on
    /// terminal-state checks.
    pub fn sort_key(&self) -> (u8, u32, u32, u32) {
        let n = |id: NodeId| u32::try_from(id.index()).expect("node id fits u32");
        match *self {
            Choice::Wake(a) => (0, n(a), 0, 0),
            Choice::Deliver { src, dst } => (1, n(src), n(dst), 0),
            Choice::Drop { src, dst } => (2, n(src), n(dst), 0),
            Choice::Duplicate { src, dst } => (3, n(src), n(dst), 0),
            Choice::Crash(a) => (4, n(a), 0, 0),
            Choice::Restart(a) => (5, n(a), 0, 0),
            Choice::Tick(a) => (6, n(a), 0, 0),
            Choice::Forge { src, dst, salt } => (7, n(src), n(dst), salt),
            Choice::Silence { src, dst } => (8, n(src), n(dst), 0),
            Choice::StaleRestart(a) => (9, n(a), 0, 0),
            Choice::Join(a) => (10, n(a), 0, 0),
            Choice::Leave(a) => (11, n(a), 0, 0),
        }
    }
}

/// The state a single executed choice read or wrote, recorded by the
/// runner: node states (protocol state, knowledge set, liveness flags) and
/// link queues. Two choices whose footprints are disjoint commute — running
/// them in either order reaches the same state — which is the independence
/// relation driving the explorer's partial-order reduction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Node states touched (read or written).
    pub nodes: Vec<u32>,
    /// Link queues mutated, as runner link keys (`src << 32 | dst`).
    pub links: Vec<u64>,
    /// `Some(n)` marks a *may* wildcard: the step may push onto any
    /// out-link of node `n`. Exact capture resolves these into `links`;
    /// the wildcard form is used when predicting a not-yet-executed
    /// choice's footprint without topology access.
    pub sends_from: Option<u32>,
    /// Dependent with everything. Set for choices served or perturbed by a
    /// stateful fault/Byzantine/churn layer (RNG draws, position-pinned
    /// timeline events, step-indexed partitions): their effect depends on
    /// the global choice index, so they commute with nothing.
    pub global: bool,
}

impl Footprint {
    /// An empty footprint (conflicts with nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// A footprint dependent with everything.
    pub fn everything() -> Self {
        Footprint {
            global: true,
            ..Self::default()
        }
    }

    /// The *may* footprint of a not-yet-executed choice: everything the
    /// choice could possibly touch, derived from the choice alone (no
    /// topology). Sound over-approximation of the exact footprint the
    /// runner records on execution.
    pub fn may(choice: Choice) -> Self {
        let n = |id: NodeId| u32::try_from(id.index()).expect("node id fits u32");
        let key = |src: NodeId, dst: NodeId| ((n(src) as u64) << 32) | n(dst) as u64;
        let mut fp = Footprint::new();
        match choice {
            Choice::Wake(a)
            | Choice::Tick(a)
            | Choice::Restart(a)
            | Choice::StaleRestart(a)
            | Choice::Join(a) => {
                // Steps the node, which may send on any of its out-links.
                fp.nodes.push(n(a));
                fp.sends_from = Some(n(a));
            }
            Choice::Crash(a) | Choice::Leave(a) => {
                // Touches liveness flags only: in-flight traffic toward the
                // node is discarded lazily by the delivery attempt, which
                // names its dst in `nodes`, so the conflict is still seen.
                fp.nodes.push(n(a));
            }
            Choice::Deliver { src, dst } => {
                fp.nodes.push(n(dst));
                fp.links.push(key(src, dst));
                fp.sends_from = Some(n(dst));
            }
            Choice::Drop { src, dst }
            | Choice::Duplicate { src, dst }
            | Choice::Silence { src, dst } => {
                fp.links.push(key(src, dst));
            }
            Choice::Forge { src, dst, .. } => {
                fp.links.push(key(src, dst));
            }
        }
        fp
    }

    /// Clears the footprint for reuse without releasing its buffers.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.links.clear();
        self.sends_from = None;
        self.global = false;
    }

    /// Records a touched node state.
    pub fn touch_node(&mut self, node: NodeId) {
        let n = u32::try_from(node.index()).expect("node id fits u32");
        if !self.nodes.contains(&n) {
            self.nodes.push(n);
        }
    }

    /// Records a mutated link queue by runner link key.
    pub fn touch_link(&mut self, key: u64) {
        if !self.links.contains(&key) {
            self.links.push(key);
        }
    }

    /// Unions `other` into `self`, so the merged footprint conflicts with
    /// everything either part conflicts with. Merging two distinct
    /// `sends_from` wildcards has no exact representation and degrades to
    /// [`everything`](Footprint::everything) — conservative, and in
    /// practice unreachable: the explorer merges one scheduler-decided
    /// step (at most one wildcard) with fault-layer steps that are already
    /// global.
    pub fn merge(&mut self, other: &Footprint) {
        if other.global {
            self.global = true;
        }
        if self.global {
            return;
        }
        for &n in &other.nodes {
            if !self.nodes.contains(&n) {
                self.nodes.push(n);
            }
        }
        for &l in &other.links {
            self.touch_link(l);
        }
        match (self.sends_from, other.sends_from) {
            (_, None) => {}
            (None, from) => self.sends_from = from,
            (Some(a), Some(b)) if a == b => {}
            (Some(_), Some(_)) => self.global = true,
        }
    }

    /// Whether the two footprints are *dependent*: executing the two steps
    /// in the other order could read or write different state. Disjoint
    /// (non-conflicting) footprints commute.
    pub fn conflicts(&self, other: &Footprint) -> bool {
        if self.global || other.global {
            return true;
        }
        if self.nodes.iter().any(|n| other.nodes.contains(n)) {
            return true;
        }
        if self.links.iter().any(|l| other.links.contains(l)) {
            return true;
        }
        let src_of = |l: u64| (l >> 32) as u32;
        if let Some(n) = self.sends_from {
            if other.sends_from == Some(n) || other.links.iter().any(|&l| src_of(l) == n) {
                return true;
            }
        }
        if let Some(n) = other.sends_from {
            if self.links.iter().any(|&l| src_of(l) == n) {
                return true;
            }
        }
        false
    }
}

/// Incremental 64-bit state digest: an FNV-1a seed with a splitmix64
/// finalizer per word, giving order-sensitive, well-mixed hashes that are
/// stable across platforms and job counts (no `RandomState`).
#[derive(Clone, Copy, Debug)]
pub struct StateDigest {
    h: u64,
}

impl Default for StateDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl StateDigest {
    /// Creates a fresh digest.
    pub fn new() -> Self {
        StateDigest {
            h: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Mixes one word into the digest (order-sensitive).
    pub fn mix(&mut self, v: u64) {
        let mut z = self.h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.h = z ^ (z >> 31);
    }

    /// Mixes a byte string (length-prefixed, so concatenations can't
    /// collide).
    pub fn mix_bytes(&mut self, bytes: &[u8]) {
        self.mix(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    /// The digest value accumulated so far.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

/// Message-delay and wake-up-order policy: the "adversary" of the
/// asynchronous model.
///
/// The runner notifies the scheduler of every send and every enqueued
/// wake-up; [`choose`](Scheduler::choose) then picks the next event. The
/// contract is:
///
/// * every token passed to [`note_send`](Scheduler::note_send) /
///   [`note_wake`](Scheduler::note_wake) must eventually be returned by
///   `choose` (finite but *unbounded* delay — an adversary may starve an
///   event only for as long as other events remain);
/// * `choose` returns `None` exactly when no tokens remain, which is the
///   quiescence condition of the paper's liveness requirement.
///
/// Lower-bound adversaries (e.g. the subtree-freezing adversary of
/// Theorem 1) implement this trait; see the `ard-lower-bounds` crate.
pub trait Scheduler {
    /// Observes a node wake-up being enqueued.
    fn note_wake(&mut self, node: NodeId);
    /// Observes a message being sent.
    fn note_send(&mut self, token: SendToken);
    /// Observes a node arming a timer tick (a local event, like a wake-up).
    fn note_tick(&mut self, node: NodeId);
    /// Picks the next event, or `None` if the network is quiescent.
    fn choose(&mut self) -> Option<Choice>;
    /// Number of pending tokens (wake-ups plus messages).
    fn pending(&self) -> usize;

    /// Whether the runner should record an exact [`Footprint`] for each
    /// executed choice and report it via
    /// [`note_footprint`](Scheduler::note_footprint). Defaults to `false`;
    /// the runner skips all footprint bookkeeping when nobody listens.
    fn wants_footprints(&self) -> bool {
        false
    }

    /// Observes the exact footprint of the choice the runner just executed
    /// (only called when [`wants_footprints`](Scheduler::wants_footprints)
    /// returned `true` before the step).
    fn note_footprint(&mut self, _choice: Choice, _footprint: &Footprint) {}

    /// Whether the runner should compute a canonical state digest *before*
    /// the next [`choose`](Scheduler::choose) and report it via
    /// [`note_state_digest`](Scheduler::note_state_digest). Queried every
    /// step, so implementations can switch it off once past the region
    /// they care about (digests cost a full state walk).
    fn wants_state_digest(&self) -> bool {
        false
    }

    /// Observes the canonical digest of the current runner state, taken
    /// just before the upcoming [`choose`](Scheduler::choose).
    fn note_state_digest(&mut self, _digest: u64) {}

    /// Whether the runner should digest the terminal state when a run
    /// completes (one full state walk — too expensive to do unasked on
    /// million-node runs). Defaults to `false`.
    fn wants_terminal_digest(&self) -> bool {
        false
    }

    /// Observes the canonical digest of the terminal (quiescent) runner
    /// state, reported once when a run completes without livelock (only
    /// when [`wants_terminal_digest`](Scheduler::wants_terminal_digest)).
    fn note_terminal_digest(&mut self, _digest: u64) {}
}

impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn note_wake(&mut self, node: NodeId) {
        (**self).note_wake(node);
    }
    fn note_send(&mut self, token: SendToken) {
        (**self).note_send(token);
    }
    fn note_tick(&mut self, node: NodeId) {
        (**self).note_tick(node);
    }
    fn choose(&mut self) -> Option<Choice> {
        (**self).choose()
    }
    fn pending(&self) -> usize {
        (**self).pending()
    }
    fn wants_footprints(&self) -> bool {
        (**self).wants_footprints()
    }
    fn note_footprint(&mut self, choice: Choice, footprint: &Footprint) {
        (**self).note_footprint(choice, footprint);
    }
    fn wants_state_digest(&self) -> bool {
        (**self).wants_state_digest()
    }
    fn note_state_digest(&mut self, digest: u64) {
        (**self).note_state_digest(digest);
    }
    fn wants_terminal_digest(&self) -> bool {
        (**self).wants_terminal_digest()
    }
    fn note_terminal_digest(&mut self, digest: u64) {
        (**self).note_terminal_digest(digest);
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn note_wake(&mut self, node: NodeId) {
        (**self).note_wake(node);
    }
    fn note_send(&mut self, token: SendToken) {
        (**self).note_send(token);
    }
    fn note_tick(&mut self, node: NodeId) {
        (**self).note_tick(node);
    }
    fn choose(&mut self) -> Option<Choice> {
        (**self).choose()
    }
    fn pending(&self) -> usize {
        (**self).pending()
    }
    fn wants_footprints(&self) -> bool {
        (**self).wants_footprints()
    }
    fn note_footprint(&mut self, choice: Choice, footprint: &Footprint) {
        (**self).note_footprint(choice, footprint);
    }
    fn wants_state_digest(&self) -> bool {
        (**self).wants_state_digest()
    }
    fn note_state_digest(&mut self, digest: u64) {
        (**self).note_state_digest(digest);
    }
    fn wants_terminal_digest(&self) -> bool {
        (**self).wants_terminal_digest()
    }
    fn note_terminal_digest(&mut self, digest: u64) {
        (**self).note_terminal_digest(digest);
    }
}

fn token_choice(token: SendToken) -> Choice {
    Choice::Deliver {
        src: token.src,
        dst: token.dst,
    }
}

/// Delivers every event in global arrival order (wake-ups and sends
/// interleaved exactly as they were enqueued).
///
/// This is the "benign" schedule: a network where every message takes the
/// same unit delay.
///
/// # Example
///
/// ```
/// use ard_netsim::{Choice, FifoScheduler, NodeId, Scheduler, SendToken};
///
/// let mut s = FifoScheduler::new();
/// s.note_wake(NodeId::new(0));
/// s.note_send(SendToken { src: NodeId::new(0), dst: NodeId::new(1), seq: 0, kind: "m" });
/// assert_eq!(s.choose(), Some(Choice::Wake(NodeId::new(0))));
/// assert!(matches!(s.choose(), Some(Choice::Deliver { .. })));
/// assert_eq!(s.choose(), None);
/// ```
#[derive(Debug, Default)]
pub struct FifoScheduler {
    queue: VecDeque<Choice>,
}

impl FifoScheduler {
    /// Creates an empty FIFO scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for FifoScheduler {
    fn note_wake(&mut self, node: NodeId) {
        self.queue.push_back(Choice::Wake(node));
    }
    fn note_send(&mut self, token: SendToken) {
        self.queue.push_back(token_choice(token));
    }
    fn note_tick(&mut self, node: NodeId) {
        self.queue.push_back(Choice::Tick(node));
    }
    fn choose(&mut self) -> Option<Choice> {
        self.queue.pop_front()
    }
    fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Delivers the *most recent* event first (a stack).
///
/// A simple deterministic "hostile" order that maximally reorders causally
/// independent events; useful for shaking out ordering assumptions in tests.
#[derive(Debug, Default)]
pub struct LifoScheduler {
    stack: Vec<Choice>,
}

impl LifoScheduler {
    /// Creates an empty LIFO scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for LifoScheduler {
    fn note_wake(&mut self, node: NodeId) {
        self.stack.push(Choice::Wake(node));
    }
    fn note_send(&mut self, token: SendToken) {
        self.stack.push(token_choice(token));
    }
    fn note_tick(&mut self, node: NodeId) {
        // Timer ticks go to the *bottom* of the stack. A retransmission
        // timer re-arms itself from its own tick handler, so pure LIFO
        // would pop an endless tick cascade and starve every pending
        // delivery forever — violating the Scheduler contract (an event
        // may be starved only while other events remain). Burying ticks
        // keeps LIFO maximally hostile to message order while staying
        // fair to timers.
        self.stack.insert(0, Choice::Tick(node));
    }
    fn choose(&mut self) -> Option<Choice> {
        self.stack.pop()
    }
    fn pending(&self) -> usize {
        self.stack.len()
    }
}

/// Picks a uniformly random pending event each step, from a seeded RNG.
///
/// This explores the space of asynchronous interleavings reproducibly: the
/// same seed yields the same execution. It is the workhorse scheduler of the
/// reproduction's property tests and complexity sweeps.
///
/// # Example
///
/// ```
/// use ard_netsim::{NodeId, RandomScheduler, Scheduler};
///
/// let mut s = RandomScheduler::seeded(42);
/// s.note_wake(NodeId::new(0));
/// s.note_wake(NodeId::new(1));
/// assert!(s.choose().is_some());
/// assert!(s.choose().is_some());
/// assert!(s.choose().is_none());
/// ```
#[derive(Debug)]
pub struct RandomScheduler {
    pool: Vec<Choice>,
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a random scheduler with the given seed.
    pub fn seeded(seed: u64) -> Self {
        RandomScheduler {
            pool: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn note_wake(&mut self, node: NodeId) {
        self.pool.push(Choice::Wake(node));
    }
    fn note_send(&mut self, token: SendToken) {
        self.pool.push(token_choice(token));
    }
    fn note_tick(&mut self, node: NodeId) {
        self.pool.push(Choice::Tick(node));
    }
    fn choose(&mut self) -> Option<Choice> {
        if self.pool.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.pool.len());
        Some(self.pool.swap_remove(i))
    }
    fn pending(&self) -> usize {
        self.pool.len()
    }
}

/// A *partially synchronous* scheduler: picks randomly like
/// [`RandomScheduler`], but once the oldest pending event has waited
/// `max_delay` scheduling steps it is delivered first — so events drain
/// oldest-first under backlog and nothing is ever starved (an event's wait
/// is bounded by `max_delay` plus the backlog ahead of it).
///
/// Useful for modelling realistic networks (delays vary but are bounded)
/// and for showing that the paper's algorithms, proven for unbounded
/// delays, of course also run under bounded ones. With `max_delay = 1` the
/// schedule degenerates to global FIFO.
///
/// # Example
///
/// ```
/// use ard_netsim::{BoundedDelayScheduler, NodeId, Scheduler};
///
/// let mut s = BoundedDelayScheduler::new(4, 42);
/// s.note_wake(NodeId::new(0));
/// assert!(s.choose().is_some());
/// assert!(s.choose().is_none());
/// ```
#[derive(Debug)]
pub struct BoundedDelayScheduler {
    /// Slab of pending choices; `None` marks a free slot.
    slots: Vec<Option<Choice>>,
    /// Reuse generation per slot, bumped on every free: distinguishes a
    /// reused slot from the stale age-ring entries of its past occupants.
    gen: Vec<u32>,
    /// Free slot indices available for reuse.
    free: Vec<u32>,
    /// Slots of live events, in arbitrary order — O(1) uniform sampling.
    live: Vec<u32>,
    /// Each slot's current position in `live` — O(1) swap-removal.
    pos_in_live: Vec<u32>,
    /// `(slot, generation, enqueued_step)` in arrival order. Entries whose
    /// event was already delivered (random picks) are dropped lazily, so
    /// the first valid entry is always the oldest live event.
    ring: VecDeque<(u32, u32, u64)>,
    max_delay: u64,
    step: u64,
    rng: StdRng,
}

impl BoundedDelayScheduler {
    /// Creates a scheduler where no event waits more than `max_delay`
    /// scheduling steps (`max_delay ≥ 1`).
    ///
    /// # Panics
    ///
    /// Panics if `max_delay == 0`.
    pub fn new(max_delay: u64, seed: u64) -> Self {
        assert!(max_delay >= 1, "a zero delay bound admits no schedule");
        BoundedDelayScheduler {
            slots: Vec::new(),
            gen: Vec::new(),
            free: Vec::new(),
            live: Vec::new(),
            pos_in_live: Vec::new(),
            ring: VecDeque::new(),
            max_delay,
            step: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured delay bound.
    pub fn max_delay(&self) -> u64 {
        self.max_delay
    }

    fn insert(&mut self, choice: Choice) {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(choice);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("slot count overflows u32");
                self.slots.push(Some(choice));
                self.gen.push(0);
                self.pos_in_live.push(0);
                slot
            }
        };
        self.pos_in_live[slot as usize] =
            u32::try_from(self.live.len()).expect("live count overflows u32");
        self.live.push(slot);
        self.ring
            .push_back((slot, self.gen[slot as usize], self.step));
    }

    fn remove(&mut self, slot: u32) -> Choice {
        let choice = self.slots[slot as usize].take().expect("slot is live");
        self.gen[slot as usize] = self.gen[slot as usize].wrapping_add(1);
        let pos = self.pos_in_live[slot as usize] as usize;
        let last = self.live.pop().expect("live set is non-empty");
        if last != slot {
            self.live[pos] = last;
            self.pos_in_live[last as usize] = pos as u32;
        }
        self.free.push(slot);
        choice
    }
}

impl Scheduler for BoundedDelayScheduler {
    fn note_wake(&mut self, node: NodeId) {
        self.insert(Choice::Wake(node));
    }
    fn note_send(&mut self, token: SendToken) {
        self.insert(token_choice(token));
    }
    fn note_tick(&mut self, node: NodeId) {
        self.insert(Choice::Tick(node));
    }
    fn choose(&mut self) -> Option<Choice> {
        if self.live.is_empty() {
            return None;
        }
        self.step += 1;
        // Drop consumed ring entries so the front is the true oldest event.
        while let Some(&(slot, generation, _)) = self.ring.front() {
            let valid =
                self.slots[slot as usize].is_some() && self.gen[slot as usize] == generation;
            if valid {
                break;
            }
            self.ring.pop_front();
        }
        let overdue = self
            .ring
            .front()
            .is_some_and(|&(_, _, enqueued)| self.step.saturating_sub(enqueued) >= self.max_delay);
        let slot = if overdue {
            self.ring.pop_front().expect("overdue front exists").0
        } else {
            self.live[self.rng.gen_range(0..self.live.len())]
        };
        Some(self.remove(slot))
    }
    fn pending(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn token(src: usize, dst: usize, seq: u64) -> SendToken {
        SendToken {
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            seq,
            kind: "t",
        }
    }

    #[test]
    fn fifo_preserves_global_order() {
        let mut s = FifoScheduler::new();
        s.note_send(token(0, 1, 0));
        s.note_wake(NodeId::new(2));
        s.note_send(token(1, 0, 1));
        assert_eq!(
            s.choose(),
            Some(Choice::Deliver {
                src: NodeId::new(0),
                dst: NodeId::new(1)
            })
        );
        assert_eq!(s.choose(), Some(Choice::Wake(NodeId::new(2))));
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn lifo_reverses_order() {
        let mut s = LifoScheduler::new();
        s.note_wake(NodeId::new(0));
        s.note_wake(NodeId::new(1));
        assert_eq!(s.choose(), Some(Choice::Wake(NodeId::new(1))));
        assert_eq!(s.choose(), Some(Choice::Wake(NodeId::new(0))));
    }

    #[test]
    fn lifo_keeps_ticks_below_pending_events() {
        let mut s = LifoScheduler::new();
        s.note_send(token(0, 1, 0));
        s.note_tick(NodeId::new(2));
        s.note_send(token(1, 0, 1));
        // Both deliveries (newest first) drain before the buried tick.
        assert_eq!(
            s.choose(),
            Some(Choice::Deliver {
                src: NodeId::new(1),
                dst: NodeId::new(0)
            })
        );
        assert_eq!(
            s.choose(),
            Some(Choice::Deliver {
                src: NodeId::new(0),
                dst: NodeId::new(1)
            })
        );
        assert_eq!(s.choose(), Some(Choice::Tick(NodeId::new(2))));
        assert_eq!(s.choose(), None);
    }

    #[test]
    fn bounded_delay_never_starves() {
        // Feed one uniquely-identifiable event per step while draining one
        // per step: an event's wait is bounded by max_delay plus the backlog
        // ahead of it, so its delivery position stays close to its arrival
        // position (no starvation, unlike a pure random scheduler).
        let d = 3usize;
        let mut s = BoundedDelayScheduler::new(d as u64, 0);
        let total = 200usize;
        let mut delivered: Vec<usize> = Vec::new();
        for i in 0..total {
            s.note_send(token(i, i + 1, i as u64)); // src encodes the index
            if let Some(Choice::Deliver { src, .. }) = s.choose() {
                delivered.push(src.index());
            }
        }
        while let Some(Choice::Deliver { src, .. }) = s.choose() {
            delivered.push(src.index());
        }
        assert_eq!(s.pending(), 0);
        assert_eq!(delivered.len(), total);
        for (position, &index) in delivered.iter().enumerate() {
            let displacement = position.abs_diff(index);
            assert!(
                displacement <= 2 * d + 2,
                "event {index} delivered at position {position} (displacement {displacement})"
            );
        }
    }

    #[test]
    fn bounded_delay_forces_overdue_head() {
        let mut s = BoundedDelayScheduler::new(1, 7);
        for i in 0..20 {
            s.note_send(token(i, i + 1, i as u64));
        }
        // With max_delay = 1 every choose must take the oldest event: the
        // schedule degenerates to FIFO.
        for i in 0..20 {
            assert_eq!(
                s.choose(),
                Some(Choice::Deliver {
                    src: NodeId::new(i),
                    dst: NodeId::new(i + 1)
                })
            );
        }
    }

    #[test]
    #[should_panic(expected = "zero delay bound")]
    fn zero_delay_bound_rejected() {
        let _ = BoundedDelayScheduler::new(0, 0);
    }

    #[test]
    fn bounded_delay_drains_oldest_first_under_backlog() {
        // With the whole backlog enqueued at step 0, every choose after the
        // first `d - 1` sees an overdue front: the tail of the drain must be
        // exactly oldest-first, and every event delivered exactly once —
        // this exercises the age ring across heavy lazy deletion (each
        // early random pick leaves a stale ring entry behind).
        let d = 5usize;
        let total = 1000usize;
        let mut s = BoundedDelayScheduler::new(d as u64, 3);
        for i in 0..total {
            s.note_send(token(i, 0, i as u64));
        }
        let mut delivered = Vec::new();
        while let Some(Choice::Deliver { src, .. }) = s.choose() {
            delivered.push(src.index());
        }
        assert_eq!(s.pending(), 0);
        assert_eq!(delivered.len(), total);
        assert!(delivered[d..].windows(2).all(|w| w[0] < w[1]));
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_delay_slab_survives_slot_reuse() {
        // Churn: repeatedly refill and partially drain so freed slots are
        // reused while stale ring entries for their former occupants are
        // still queued. Generation tags must keep a recycled slot's new
        // event from being mistaken for the old (already-delivered) one.
        let mut s = BoundedDelayScheduler::new(3, 11);
        let mut next = 0usize;
        let mut delivered = Vec::new();
        for _ in 0..100 {
            for _ in 0..4 {
                s.note_send(token(next, 0, next as u64));
                next += 1;
            }
            for _ in 0..3 {
                if let Some(Choice::Deliver { src, .. }) = s.choose() {
                    delivered.push(src.index());
                }
            }
        }
        while let Some(Choice::Deliver { src, .. }) = s.choose() {
            delivered.push(src.index());
        }
        assert_eq!(s.pending(), 0);
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..next).collect::<Vec<_>>(), "every event delivered exactly once");
    }

    #[test]
    fn random_is_reproducible_and_exhaustive() {
        let run = |seed| {
            let mut s = RandomScheduler::seeded(seed);
            for i in 0..10 {
                s.note_wake(NodeId::new(i));
            }
            let mut order = Vec::new();
            while let Some(c) = s.choose() {
                order.push(c);
            }
            order
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let mut nodes: Vec<_> = a
            .iter()
            .map(|c| match c {
                Choice::Wake(n) => n.index(),
                _ => unreachable!(),
            })
            .collect();
        nodes.sort_unstable();
        assert_eq!(nodes, (0..10).collect::<Vec<_>>());
    }
}
