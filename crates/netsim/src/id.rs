use std::fmt;

/// Identifier of a node in the simulated network.
///
/// In the paper a node id is a unique `O(log n)`-bit string (an IP address);
/// here it is a dense index into the simulation's node table. The *bit* cost
/// of shipping an id inside a message is accounted separately (see
/// [`Metrics::id_bits`](crate::Metrics::id_bits)), so the representation
/// width of this type does not affect measured bit complexity.
///
/// # Example
///
/// ```
/// use ard_netsim::NodeId;
///
/// let id = NodeId::new(7);
/// assert_eq!(id.index(), 7);
/// assert_eq!(id.to_string(), "n7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its dense index.
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for i in [0usize, 1, 17, 65_535] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(3) < NodeId::new(4));
        assert_eq!(NodeId::new(9), NodeId::new(9));
    }

    #[test]
    fn debug_and_display_match() {
        let id = NodeId::new(42);
        assert_eq!(format!("{id:?}"), "n42");
        assert_eq!(format!("{id}"), "n42");
    }
}
