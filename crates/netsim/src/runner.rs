use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

use crate::envelope::Envelope;
use crate::scheduler::{Choice, Footprint, Scheduler, SendToken, StateDigest};
use crate::table::{Knowledge, NodeTable};
use crate::trace::{Trace, TraceEvent};
use crate::{Context, Metrics, NodeId};

/// Multiply-mix hasher for the link-slot map.
///
/// Keys are two dense node indices packed into one `u64`, hashed on every
/// send and delivery; SipHash's DoS resistance buys nothing for
/// deterministic simulation state, so a two-instruction mix is used
/// instead.
#[derive(Clone, Copy, Default)]
pub(crate) struct LinkHasher(u64);

impl Hasher for LinkHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        let mut x = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 32;
        self.0 = x;
    }
}


/// Packs a directed link into the slot map's key.
pub(crate) fn link_key(src: NodeId, dst: NodeId) -> u64 {
    ((src.index() as u64) << 32) | dst.index() as u64
}

/// Compressed-sparse-row adjacency over the *initial* knowledge graph
/// `E₀ ∪ reverse(E₀)`, with a lazily interned link-slot per entry.
///
/// Most of a run's traffic flows over links both ends knew from the start,
/// so resolving `(src, dst)` to its queue slot is a binary search in a
/// short sorted row instead of a hash probe. Links learned at runtime (and
/// links of dynamically added nodes) miss the CSR and fall back to the
/// `link_slots` hash map.
#[derive(Clone, Default)]
struct Csr {
    /// Row boundaries: node `i`'s neighbors live in
    /// `targets[offsets[i]..offsets[i + 1]]`. Empty for networks built
    /// without up-front topology.
    offsets: Vec<u32>,
    /// Sorted, deduplicated neighbor indices per row.
    targets: Vec<u32>,
    /// Link slot per `targets` entry; `u32::MAX` until the first send
    /// interns a queue for the link.
    slots: Vec<u32>,
}

impl Csr {
    /// Builds the bidirectional adjacency from each node's initial
    /// out-edges. Rows are sorted and deduplicated — a duplicate entry
    /// would intern two queues for one link and silently break per-link
    /// FIFO.
    fn build<'a>(n: usize, neighbors: &impl Fn(NodeId) -> &'a [NodeId]) -> Csr {
        u32::try_from(n).expect("node count fits u32");
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            for &v in neighbors(NodeId::new(i)) {
                offsets[i + 1] += 1;
                offsets[v.index() + 1] += 1;
            }
        }
        for k in 1..=n {
            offsets[k] = offsets[k]
                .checked_add(offsets[k - 1])
                .expect("CSR entry count fits u32");
        }
        let total = offsets[n] as usize;
        let mut raw = vec![0u32; total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for i in 0..n {
            for &v in neighbors(NodeId::new(i)) {
                raw[cursor[i] as usize] = v.index() as u32;
                cursor[i] += 1;
                raw[cursor[v.index()] as usize] = i as u32;
                cursor[v.index()] += 1;
            }
        }
        let mut targets = Vec::with_capacity(total);
        let mut compact = vec![0u32; n + 1];
        for i in 0..n {
            let row = &mut raw[offsets[i] as usize..offsets[i + 1] as usize];
            row.sort_unstable();
            let mut prev = u32::MAX;
            for &t in row.iter() {
                if t != prev {
                    targets.push(t);
                    prev = t;
                }
            }
            compact[i + 1] = targets.len() as u32;
        }
        let slots = vec![u32::MAX; targets.len()];
        Csr {
            offsets: compact,
            targets,
            slots,
        }
    }

    /// Position of `(src, dst)` in `targets`/`slots`, if the link is part
    /// of the initial topology.
    #[inline]
    fn find(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        let i = src.index();
        if i + 1 >= self.offsets.len() {
            return None;
        }
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        self.targets[lo..hi]
            .binary_search(&(dst.index() as u32))
            .ok()
            .map(|p| lo + p)
    }
}

/// Behaviour of one node in the simulated network.
///
/// Handlers are *reactive*: a node acts only when it wakes up or receives a
/// message, and all sends happen through the provided [`Context`]. This is
/// the paper's model — after the steady state, "all nodes are awake, in a
/// state that will never send any more messages, and all message queues are
/// empty".
pub trait Protocol {
    /// The protocol's message type.
    type Message: Envelope;

    /// Called exactly once, when the node wakes up (either via an explicit
    /// wake-up event or on the first message it receives).
    fn on_wake(&mut self, ctx: &mut Context<'_, Self::Message>);

    /// Called for every delivered message, in per-link FIFO order.
    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Message,
        ctx: &mut Context<'_, Self::Message>,
    );

    /// Called when a timer tick armed via [`Context::arm_tick`] fires.
    ///
    /// Ticks model scheduler-driven virtual time for timeout logic (e.g.
    /// retransmission). They may fire spuriously; the default does nothing.
    fn on_tick(&mut self, ctx: &mut Context<'_, Self::Message>) {
        let _ = ctx;
    }

    /// Called when the node restarts after a crash, with its protocol state
    /// intact (durable state model). The default does nothing.
    fn on_restart(&mut self, ctx: &mut Context<'_, Self::Message>) {
        let _ = ctx;
    }

    /// Called when the node restarts after a crash with *stale* state
    /// ([`Choice::StaleRestart`] — a Byzantine deviation from the paper's
    /// durable-state model). Implementations should forget recent protocol
    /// state, e.g. reset to their boot state and re-run their wake logic.
    /// The default treats it like an ordinary restart.
    fn on_stale_restart(&mut self, ctx: &mut Context<'_, Self::Message>) {
        self.on_restart(ctx);
    }

    /// Mixes the node's protocol state into the runner's canonical state
    /// digest ([`Runner::state_digest`]), which the explorer's reduced mode
    /// uses to dedup converged branches and validate independence.
    ///
    /// The default mixes nothing. That is fine for protocols never searched
    /// with `--reduce` (the engine-level state — knowledge, flags, queues —
    /// is always digested), but a protocol explored under reduction should
    /// mix every field that can influence its future behaviour or its
    /// violation checks, or branches differing only in that field would
    /// wrongly dedup as equivalent.
    fn digest_state(&self, d: &mut StateDigest) {
        let _ = d;
    }
}

/// Error returned by [`Runner::run`] when the step budget is exhausted
/// before quiescence — i.e. a livelock or an unexpectedly expensive run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivelockError {
    /// Number of steps executed before giving up.
    pub steps: u64,
    /// Tokens still pending in the scheduler.
    pub pending: usize,
}

impl fmt::Display for LivelockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "network failed to quiesce within {} steps ({} events still pending)",
            self.steps, self.pending
        )
    }
}

impl Error for LivelockError {}

/// One directed link's in-flight messages, each with its causal depth.
type LinkQueue<M> = VecDeque<(M, u64)>;

/// The discrete-event simulation engine.
///
/// Owns the nodes, the per-link FIFO queues, each node's knowledge set and
/// the communication [`Metrics`]. Event *ordering* is delegated to a
/// [`Scheduler`]; the runner guarantees per-link FIFO delivery regardless of
/// the scheduler's choices.
///
/// Internally the engine is allocation-free per event: knowledge sets live
/// in a struct-of-arrays [`NodeTable`] (dense bitsets below ~8 K nodes,
/// interval-coded runs above), metering uses the non-allocating
/// [`Envelope`] visitor, and each directed link's queue is interned into a
/// dense slot on first send (so steady-state traffic reuses its queue) —
/// resolved through a CSR adjacency when the topology was known up front,
/// with a hash-map fallback for links learned at runtime.
///
/// See the [crate-level documentation](crate) for a complete example.
///
/// Cloning a runner (for `P: Clone`) deep-copies the whole network state —
/// nodes, knowledge, link queues, metrics — which is what the explorer's
/// checkpoint/fork machinery snapshots at DFS branch points.
#[derive(Clone)]
pub struct Runner<P: Protocol> {
    pub(crate) nodes: Vec<P>,
    /// Packed flags + knowledge sets, struct-of-arrays over node index.
    pub(crate) table: NodeTable,
    /// Initial-topology fast path for link-slot resolution.
    csr: Csr,
    /// Fallback interning of `(src, dst)` to a dense slot in `links`, for
    /// links outside the initial topology.
    link_slots: HashMap<u64, u32, BuildHasherDefault<LinkHasher>>,
    links: Vec<LinkQueue<P::Message>>,
    pub(crate) metrics: Metrics,
    pub(crate) seq: u64,
    pub(crate) steps: u64,
    pub(crate) trace: Option<Trace>,
    outbox: Vec<(NodeId, P::Message)>,
    /// Scratch footprint for the step being executed; populated by the
    /// mutation sites (link pops/pushes) only while `fp_on` is set.
    fp: Footprint,
    /// Whether the current step records its footprint (the scheduler asked
    /// via [`Scheduler::wants_footprints`]).
    fp_on: bool,
    /// Cumulative heap bytes of every enqueued message payload
    /// ([`Envelope::payload_heap_bytes`] at send time). Observability only.
    pub(crate) payload_bytes_sent: u64,
    /// Heap bytes of payloads currently sitting in link queues.
    pub(crate) payload_inflight: u64,
    /// High-water mark of [`payload_inflight`](Runner::payload_inflight).
    pub(crate) payload_peak: u64,
}

impl<P: Protocol> Runner<P> {
    /// Creates a network of `nodes`, where node `i` initially knows the ids
    /// in `initial_knowledge[i]` (the initial knowledge graph `E₀`).
    ///
    /// The id bit-width for metering defaults to `⌈log₂ n⌉` (minimum 1), as
    /// in the paper's model where ids have `O(log n)` bits.
    ///
    /// Prefer [`with_topology`](Runner::with_topology) when the edge lists
    /// already live somewhere borrowable — this convenience wrapper costs
    /// one temporary `Vec` per node.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors disagree in length or an initial edge
    /// points outside the node table.
    pub fn new(nodes: Vec<P>, initial_knowledge: Vec<Vec<NodeId>>) -> Self {
        assert_eq!(
            nodes.len(),
            initial_knowledge.len(),
            "one knowledge set per node required"
        );
        Self::with_topology(nodes, |id| &initial_knowledge[id.index()][..])
    }

    /// Creates a network of `nodes` whose initial knowledge graph `E₀` is
    /// given by borrowed edge slices: node `id` initially knows
    /// `neighbors(id)`.
    ///
    /// This is the allocation-light constructor for large networks: no
    /// per-node temporary `Vec`s, knowledge sets pre-sized (and
    /// representation-selected) for `n`, and the CSR link-slot index built
    /// in the same pass. [`Runner::new`] delegates here.
    ///
    /// # Panics
    ///
    /// Panics if an initial edge points outside the node table.
    pub fn with_topology<'a>(
        nodes: Vec<P>,
        neighbors: impl Fn(NodeId) -> &'a [NodeId],
    ) -> Self {
        let n = nodes.len();
        let id_bits = (usize::BITS - n.saturating_sub(1).leading_zeros()).max(1) as u64;
        let mut table = NodeTable::new(n);
        for i in 0..n {
            let me = NodeId::new(i);
            let mut set = Knowledge::for_network(n);
            for &v in neighbors(me) {
                assert!(
                    v.index() < n,
                    "initial edge {me} → {v} points outside the network"
                );
                set.insert(v.index());
            }
            set.insert(i);
            table.knowledge.push(set);
        }
        let csr = Csr::build(n, &neighbors);
        Runner {
            nodes,
            table,
            csr,
            link_slots: HashMap::default(),
            links: Vec::new(),
            metrics: Metrics::new(id_bits),
            seq: 0,
            steps: 0,
            trace: None,
            outbox: Vec::new(),
            fp: Footprint::new(),
            fp_on: false,
            payload_bytes_sent: 0,
            payload_inflight: 0,
            payload_peak: 0,
        }
    }

    /// Turns on event tracing (see [`crate::trace`]); subsequent wake-ups,
    /// sends and deliveries are logged. Idempotent.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::default());
        }
    }

    /// The event log, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Number of events executed so far (wake-ups + deliveries).
    pub fn steps_executed(&self) -> u64 {
        self.steps
    }

    /// Number of nodes in the network.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids, in index order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len()).map(NodeId::new)
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node's protocol state.
    ///
    /// Prefer [`exec`](Runner::exec) when the mutation needs to send
    /// messages.
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.nodes[id.index()]
    }

    /// Iterates over all nodes in index order.
    pub fn nodes(&self) -> impl Iterator<Item = &P> {
        self.nodes.iter()
    }

    /// The accumulated communication metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Whether node `u` has learned `v`'s id (knowledge-graph edge `u → v`).
    pub fn knows(&self, u: NodeId, v: NodeId) -> bool {
        self.table.knowledge[u.index()].contains(v.index())
    }

    /// Sum of heap bytes currently backing the per-node knowledge sets —
    /// the scale benchmarks report this as bytes/node.
    pub fn knowledge_bytes(&self) -> usize {
        self.table.knowledge_bytes()
    }

    /// Cumulative heap bytes of every message payload enqueued so far
    /// ([`Envelope::payload_heap_bytes`] measured at send time). Dividing
    /// by the executed step count gives the bench's bytes-per-event figure.
    pub fn payload_bytes_sent(&self) -> u64 {
        self.payload_bytes_sent
    }

    /// High-water mark of payload heap bytes simultaneously in flight
    /// (enqueued on link queues). This is the arena pressure a run exerts:
    /// before run-length payloads it grew with O(component)-sized handovers.
    pub fn payload_peak_bytes(&self) -> u64 {
        self.payload_peak
    }

    /// Records `bytes` of payload entering a link queue.
    #[inline]
    pub(crate) fn note_payload_enqueued(&mut self, bytes: usize) {
        let bytes = bytes as u64;
        self.payload_bytes_sent += bytes;
        self.payload_inflight += bytes;
        self.payload_peak = self.payload_peak.max(self.payload_inflight);
    }

    /// Teaches node `u` the id of `v` out of band.
    ///
    /// This models a *dynamic link addition* (§6 of the paper): an external
    /// event hands `u` a new address. Protocol-internal knowledge growth
    /// happens automatically on message delivery.
    pub fn add_link(&mut self, u: NodeId, v: NodeId) {
        assert!(v.index() < self.len(), "link target {v} does not exist");
        self.table.knowledge[u.index()].insert(v.index());
    }

    /// Adds a new node that initially knows `known`, returning its id.
    ///
    /// Models a *dynamic node addition* (§6): "there is no difference
    /// between a node joining the system at a certain time and a node that
    /// wakes up at that time" — wake the returned id to bring it online.
    pub fn add_node(&mut self, node: P, known: Vec<NodeId>) -> NodeId {
        let id = NodeId::new(self.len());
        let mut set = Knowledge::for_network(self.len() + 1);
        for v in known {
            assert!(
                v.index() < self.len(),
                "initial edge {id} → {v} points outside the network"
            );
            set.insert(v.index());
        }
        set.insert(id.index());
        self.nodes.push(node);
        self.table.push(set);
        id
    }

    /// Whether the node has woken up.
    pub fn is_awake(&self, id: NodeId) -> bool {
        self.table.awake(id.index())
    }

    /// Whether the node is currently crashed (between a
    /// [`Choice::Crash`] and its [`Choice::Restart`]).
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.table.crashed(id.index())
    }

    /// Whether the node has permanently left the network
    /// ([`Choice::Leave`]); all events targeting it are discarded.
    pub fn has_left(&self, id: NodeId) -> bool {
        self.table.left(id.index())
    }

    /// Enqueues a wake-up event for `node`; the scheduler decides when it
    /// fires relative to message deliveries. Idempotent for nodes that are
    /// already awake or already enqueued.
    pub fn enqueue_wake(&mut self, node: NodeId, sched: &mut dyn Scheduler) {
        let i = node.index();
        if !self.table.awake(i) && !self.table.wake_enqueued(i) {
            self.table.set_wake_enqueued(i, true);
            sched.note_wake(node);
        }
    }

    /// Enqueues wake-ups for every node.
    pub fn enqueue_wake_all(&mut self, sched: &mut dyn Scheduler) {
        for id in 0..self.len() {
            self.enqueue_wake(NodeId::new(id), sched);
        }
    }

    /// Wakes `node` immediately (bypassing the scheduler's ordering), as the
    /// staged drivers of the lower-bound constructions require. Messages it
    /// sends are still scheduled normally. No-op if already awake.
    pub fn wake_now(&mut self, node: NodeId, sched: &mut dyn Scheduler) {
        self.wake_inner(node, 0, sched);
    }

    /// Runs `f` against a node with a live sending [`Context`], for external
    /// commands that are not triggered by a message (e.g. the Ad-hoc
    /// variant's leader probes).
    pub fn exec<R>(
        &mut self,
        node: NodeId,
        sched: &mut dyn Scheduler,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Message>) -> R,
    ) -> R {
        debug_assert!(self.outbox.is_empty());
        let mut outbox = std::mem::take(&mut self.outbox);
        let mut ctx = Context::new(node, &mut outbox);
        let r = f(&mut self.nodes[node.index()], &mut ctx);
        let tick = ctx.tick_armed();
        self.outbox = outbox;
        self.flush(node, 1, sched);
        if tick {
            sched.note_tick(node);
        }
        r
    }

    /// Runs a handler against `node` with a live [`Context`], flushes its
    /// sends at `depth`, and forwards any armed tick to the scheduler.
    fn dispatch(
        &mut self,
        node: NodeId,
        depth: u64,
        sched: &mut dyn Scheduler,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Message>),
    ) {
        debug_assert!(self.outbox.is_empty());
        let mut outbox = std::mem::take(&mut self.outbox);
        let mut ctx = Context::new(node, &mut outbox);
        f(&mut self.nodes[node.index()], &mut ctx);
        let tick = ctx.tick_armed();
        self.outbox = outbox;
        self.flush(node, depth, sched);
        if tick {
            sched.note_tick(node);
        }
    }

    fn wake_inner(&mut self, node: NodeId, depth: u64, sched: &mut dyn Scheduler) {
        let i = node.index();
        self.table.set_wake_enqueued(i, false);
        if self.table.awake(i) {
            return;
        }
        self.table.set_awake(i, true);
        self.metrics.record_wakeup();
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent::Wake {
                node,
                step: self.steps,
            });
        }
        self.dispatch(node, depth + 1, sched, |n, ctx| n.on_wake(ctx));
    }

    /// Flushes the outbox of `src`: enforces the knowledge constraint,
    /// meters each message and hands a token to the scheduler.
    ///
    /// Metering happens here, at *send* time, with the non-allocating
    /// [`Envelope::carried_id_count`]; knowledge updates happen at
    /// *delivery* time in [`step`](Runner::step) via the visitor. Neither
    /// side materialises an id `Vec`.
    fn flush(&mut self, src: NodeId, depth: u64, sched: &mut dyn Scheduler) {
        let mut outbox = std::mem::take(&mut self.outbox);
        for (dst, msg) in outbox.drain(..) {
            assert!(
                self.table.knowledge[src.index()].contains(dst.index()),
                "knowledge violation: {src} sent a {:?} to {dst} without knowing its id",
                msg.kind()
            );
            self.metrics
                .record(msg.kind(), msg.carried_id_count(), msg.aux_bits());
            if let Some(trace) = &mut self.trace {
                trace.push(TraceEvent::Send {
                    src,
                    dst,
                    kind: msg.kind(),
                    seq: self.seq,
                    step: self.steps,
                });
            }
            let token = SendToken {
                src,
                dst,
                seq: self.seq,
                kind: msg.kind(),
            };
            self.seq += 1;
            if self.fp_on {
                self.fp.touch_link(link_key(src, dst));
            }
            self.note_payload_enqueued(msg.payload_heap_bytes());
            let slot = self.intern_link_slot(src, dst);
            let queue = &mut self.links[slot as usize];
            queue.push_back((msg, depth));
            self.metrics.observe_link_queue(queue.len());
            sched.note_send(token);
        }
    }

    /// Resolves `(src, dst)` to its queue slot, interning a fresh queue on
    /// the link's first send. Initial-topology links resolve through the
    /// CSR row (binary search, no hashing); runtime-learned links fall back
    /// to the hash map.
    pub(crate) fn intern_link_slot(&mut self, src: NodeId, dst: NodeId) -> u32 {
        if let Some(pos) = self.csr.find(src, dst) {
            let slot = self.csr.slots[pos];
            if slot != u32::MAX {
                return slot;
            }
            let slot = u32::try_from(self.links.len()).expect("link slots overflow u32");
            self.links.push(LinkQueue::new());
            self.csr.slots[pos] = slot;
            return slot;
        }
        match self.link_slots.entry(link_key(src, dst)) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let slot = u32::try_from(self.links.len()).expect("link slots overflow u32");
                self.links.push(LinkQueue::new());
                *e.insert(slot)
            }
        }
    }

    /// Slot of a link that has already sent at least once, if any.
    pub(crate) fn existing_link_slot(&self, src: NodeId, dst: NodeId) -> Option<u32> {
        if let Some(pos) = self.csr.find(src, dst) {
            let slot = self.csr.slots[pos];
            return (slot != u32::MAX).then_some(slot);
        }
        self.link_slots.get(&link_key(src, dst)).copied()
    }

    /// Removes the oldest in-flight message on `src → dst`.
    fn pop_link(&mut self, src: NodeId, dst: NodeId) -> (P::Message, u64) {
        let slot = self
            .existing_link_slot(src, dst)
            .unwrap_or_else(|| panic!("scheduler bug: no pending messages on {src} → {dst}"));
        if self.fp_on {
            self.fp.touch_link(link_key(src, dst));
        }
        let popped = self.links[slot as usize]
            .pop_front()
            .unwrap_or_else(|| panic!("scheduler bug: empty link {src} → {dst}"));
        self.payload_inflight -= popped.0.payload_heap_bytes() as u64;
        popped
    }

    /// Executes one scheduler-chosen event. Returns `false` when quiescent.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler returns a [`Choice`] with no matching pending
    /// event (a scheduler bug).
    pub fn step(&mut self, sched: &mut dyn Scheduler) -> bool {
        if sched.wants_state_digest() {
            let digest = self.state_digest();
            sched.note_state_digest(digest);
        }
        let Some(choice) = sched.choose() else {
            return false;
        };
        let track = sched.wants_footprints();
        if track {
            self.fp.clear();
            self.fp_on = true;
            // The only node whose state a step can touch is the stepped /
            // targeted one (dispatch never reaches into other nodes); link
            // mutations are recorded at the pop/push sites.
            match choice {
                Choice::Wake(n)
                | Choice::Crash(n)
                | Choice::Restart(n)
                | Choice::Tick(n)
                | Choice::StaleRestart(n)
                | Choice::Join(n)
                | Choice::Leave(n) => self.fp.touch_node(n),
                Choice::Deliver { dst, .. } => self.fp.touch_node(dst),
                Choice::Drop { .. }
                | Choice::Duplicate { .. }
                | Choice::Silence { .. }
                | Choice::Forge { .. } => {}
            }
        }
        self.execute(choice, sched);
        if track {
            self.fp_on = false;
            let fp = std::mem::take(&mut self.fp);
            sched.note_footprint(choice, &fp);
            self.fp = fp;
        }
        true
    }

    /// Executes one already-chosen event.
    fn execute(&mut self, choice: Choice, sched: &mut dyn Scheduler) {
        match choice {
            Choice::Wake(node) => {
                self.steps += 1;
                if self.table.left(node.index()) {
                    self.table.set_wake_enqueued(node.index(), false);
                    self.metrics.record_leave_discard();
                    return;
                }
                if self.table.crashed(node.index()) {
                    // A crashed node loses its pending wake-up; Restart
                    // re-enqueues one so the node is not stranded asleep.
                    self.table.set_wake_enqueued(node.index(), false);
                    self.metrics.record_crash_discard();
                    return;
                }
                self.wake_inner(node, 0, sched);
            }
            Choice::Deliver { src, dst } => {
                self.steps += 1;
                let (msg, depth) = self.pop_link(src, dst);
                if self.table.left(dst.index()) || self.table.crashed(dst.index()) {
                    // Delivery to a departed or crashed node: the message
                    // is lost.
                    if self.table.left(dst.index()) {
                        self.metrics.record_leave_discard();
                    } else {
                        self.metrics.record_crash_discard();
                    }
                    if let Some(trace) = &mut self.trace {
                        trace.push(TraceEvent::Drop {
                            src,
                            dst,
                            kind: msg.kind(),
                            step: self.steps,
                        });
                    }
                    return;
                }
                self.metrics.record_delivery(depth);
                if let Some(trace) = &mut self.trace {
                    trace.push(TraceEvent::Deliver {
                        src,
                        dst,
                        kind: msg.kind(),
                        step: self.steps,
                    });
                }
                // Knowledge-graph growth: the receiver learns the sender and
                // every id in the payload (visited, not collected; run-coded
                // sets absorb whole payload runs, so a run-coded handover
                // costs O(runs), not O(ids)).
                let n = self.nodes.len();
                let know = &mut self.table.knowledge[dst.index()];
                know.insert(src.index());
                msg.for_each_carried_run(&mut |start, end| {
                    debug_assert!((end as usize) <= n);
                    know.insert_run(start, end);
                });
                // A message wakes a sleeping receiver.
                if !self.table.awake(dst.index()) {
                    self.wake_inner(dst, depth, sched);
                }
                self.dispatch(dst, depth + 1, sched, |node, ctx| {
                    node.on_message(src, msg, ctx);
                });
            }
            Choice::Drop { src, dst } => {
                self.steps += 1;
                let (msg, _depth) = self.pop_link(src, dst);
                self.metrics.record_drop();
                if let Some(trace) = &mut self.trace {
                    trace.push(TraceEvent::Drop {
                        src,
                        dst,
                        kind: msg.kind(),
                        step: self.steps,
                    });
                }
            }
            Choice::Duplicate { src, dst } => {
                self.steps += 1;
                if self.fp_on {
                    self.fp.touch_link(link_key(src, dst));
                }
                let slot = self.existing_link_slot(src, dst).unwrap_or_else(|| {
                    panic!("scheduler bug: no pending messages on {src} → {dst}")
                });
                let queue = &mut self.links[slot as usize];
                let (msg, depth) = queue
                    .front()
                    .cloned()
                    .unwrap_or_else(|| panic!("scheduler bug: empty link {src} → {dst}"));
                let kind = msg.kind();
                let payload_bytes = msg.payload_heap_bytes();
                queue.push_back((msg, depth));
                let queue_len = queue.len();
                self.note_payload_enqueued(payload_bytes);
                self.metrics.observe_link_queue(queue_len);
                self.metrics.record_duplicate();
                if let Some(trace) = &mut self.trace {
                    trace.push(TraceEvent::Duplicate {
                        src,
                        dst,
                        kind,
                        step: self.steps,
                    });
                }
                // The copy gets its own token (and thus its own delivery
                // choice); it is metered only as a fault, not per kind.
                let token = SendToken {
                    src,
                    dst,
                    seq: self.seq,
                    kind,
                };
                self.seq += 1;
                sched.note_send(token);
            }
            Choice::Crash(node) => {
                self.steps += 1;
                self.table.set_crashed(node.index(), true);
                self.metrics.record_crash();
                if let Some(trace) = &mut self.trace {
                    trace.push(TraceEvent::Crash {
                        node,
                        step: self.steps,
                    });
                }
            }
            Choice::Restart(node) => {
                self.steps += 1;
                let i = node.index();
                if self.table.left(i) {
                    // A departed node never comes back.
                    self.metrics.record_leave_discard();
                    return;
                }
                self.table.set_crashed(i, false);
                self.metrics.record_restart();
                if let Some(trace) = &mut self.trace {
                    trace.push(TraceEvent::Restart {
                        node,
                        step: self.steps,
                    });
                }
                if self.table.awake(i) {
                    self.dispatch(node, 1, sched, |n, ctx| n.on_restart(ctx));
                } else if !self.table.wake_enqueued(i) {
                    // The node's wake-up was discarded while it was down:
                    // re-enqueue it so liveness survives the crash window.
                    self.table.set_wake_enqueued(i, true);
                    sched.note_wake(node);
                }
            }
            Choice::Tick(node) => {
                self.steps += 1;
                if self.table.left(node.index()) {
                    self.metrics.record_leave_discard();
                    return;
                }
                if self.table.crashed(node.index()) || !self.table.awake(node.index()) {
                    // A tick armed before the crash fires into the void.
                    self.metrics.record_crash_discard();
                    return;
                }
                self.metrics.record_tick();
                if let Some(trace) = &mut self.trace {
                    trace.push(TraceEvent::Tick {
                        node,
                        step: self.steps,
                    });
                }
                self.dispatch(node, 1, sched, |n, ctx| n.on_tick(ctx));
            }
            Choice::Forge { src, dst, salt } => {
                self.steps += 1;
                let Some(msg) = P::Message::forge(src, dst, salt) else {
                    // The protocol has no forgery for this salt: the choice
                    // is a counted no-op so schedules stay replayable.
                    self.metrics.record_forge_noop();
                    return;
                };
                // A forged send bypasses the outbox (and thus the honest
                // knowledge-violation assert in `flush`): a Byzantine node
                // addresses whoever it likes. It is metered per kind like
                // any send — and tracked in the Byzantine counters so
                // budget checks can net the adversarial traffic out.
                let kind = msg.kind();
                let bits = msg.bits(self.metrics.id_bits());
                self.metrics
                    .record(kind, msg.carried_id_count(), msg.aux_bits());
                self.metrics.record_forge(bits);
                if let Some(trace) = &mut self.trace {
                    trace.push(TraceEvent::Forge {
                        src,
                        dst,
                        kind,
                        step: self.steps,
                    });
                }
                let token = SendToken {
                    src,
                    dst,
                    seq: self.seq,
                    kind,
                };
                self.seq += 1;
                if self.fp_on {
                    self.fp.touch_link(link_key(src, dst));
                }
                self.note_payload_enqueued(msg.payload_heap_bytes());
                let slot = self.intern_link_slot(src, dst);
                let queue = &mut self.links[slot as usize];
                queue.push_back((msg, 0));
                self.metrics.observe_link_queue(queue.len());
                sched.note_send(token);
            }
            Choice::Silence { src, dst } => {
                self.steps += 1;
                let (msg, _depth) = self.pop_link(src, dst);
                self.metrics.record_silence();
                if let Some(trace) = &mut self.trace {
                    trace.push(TraceEvent::Silence {
                        src,
                        dst,
                        kind: msg.kind(),
                        step: self.steps,
                    });
                }
            }
            Choice::StaleRestart(node) => {
                self.steps += 1;
                let i = node.index();
                if self.table.left(i) {
                    self.metrics.record_leave_discard();
                    return;
                }
                self.table.set_crashed(i, false);
                self.metrics.record_stale_restart();
                if let Some(trace) = &mut self.trace {
                    trace.push(TraceEvent::StaleRestart {
                        node,
                        step: self.steps,
                    });
                }
                if self.table.awake(i) {
                    self.dispatch(node, 1, sched, |n, ctx| n.on_stale_restart(ctx));
                } else if !self.table.wake_enqueued(i) {
                    self.table.set_wake_enqueued(i, true);
                    sched.note_wake(node);
                }
            }
            Choice::Join(node) => {
                self.steps += 1;
                let i = node.index();
                if self.table.left(i) {
                    self.metrics.record_leave_discard();
                    return;
                }
                if self.table.crashed(i) {
                    self.metrics.record_crash_discard();
                    return;
                }
                self.metrics.record_join();
                if let Some(trace) = &mut self.trace {
                    trace.push(TraceEvent::Join {
                        node,
                        step: self.steps,
                    });
                }
                // §6: "there is no difference between a node joining the
                // system at a certain time and a node that wakes up at that
                // time" — a join is a token-free wake of a node whose
                // initial wake-up the churn plan withheld. No-op if the
                // node already woke (e.g. via an incoming message).
                self.wake_inner(node, 0, sched);
            }
            Choice::Leave(node) => {
                self.steps += 1;
                self.table.set_left(node.index(), true);
                self.metrics.record_leave();
                if let Some(trace) = &mut self.trace {
                    trace.push(TraceEvent::Leave {
                        node,
                        step: self.steps,
                    });
                }
            }
        }
    }

    /// Runs until quiescence or until `max_steps` events have been executed.
    ///
    /// # Errors
    ///
    /// Returns [`LivelockError`] if the budget runs out first.
    pub fn run(&mut self, sched: &mut dyn Scheduler, max_steps: u64) -> Result<u64, LivelockError> {
        let mut steps = 0;
        while steps < max_steps {
            if !self.step(sched) {
                self.report_terminal(sched);
                return Ok(steps);
            }
            steps += 1;
        }
        if sched.pending() == 0 {
            self.report_terminal(sched);
            return Ok(steps);
        }
        Err(LivelockError {
            steps,
            pending: sched.pending(),
        })
    }

    /// Hands the terminal-state digest to a scheduler that asked for one.
    fn report_terminal(&self, sched: &mut dyn Scheduler) {
        if sched.wants_terminal_digest() {
            let digest = self.state_digest();
            sched.note_terminal_digest(digest);
        }
    }

    /// Canonical digest of the complete observable simulation state: per
    /// node its liveness flags, knowledge membership and protocol state
    /// (via [`Protocol::digest_state`]); every non-empty link queue with
    /// its in-flight messages, iterated in `(src, dst)` key order so the
    /// digest is independent of slot-interning history; and the metrics
    /// (violation checks read them, so branch dedup must honour them).
    ///
    /// Excluded on purpose: the step counter and trace (observational),
    /// and link-queue *capacity* or slot layout (execution-history
    /// artifacts with no behavioural effect).
    pub fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.mix(self.nodes.len() as u64);
        for (i, node) in self.nodes.iter().enumerate() {
            let flags = u64::from(self.table.awake(i))
                | u64::from(self.table.wake_enqueued(i)) << 1
                | u64::from(self.table.crashed(i)) << 2
                | u64::from(self.table.left(i)) << 3;
            d.mix(flags);
            self.table.knowledge[i].digest_into(&mut d);
            node.digest_state(&mut d);
        }
        // Non-empty queues in canonical key order: a drained link must hash
        // like a never-interned one (whether a slot exists is history, not
        // state).
        let mut keyed: Vec<(u64, u32)> = Vec::new();
        for i in 0..self.csr.offsets.len().saturating_sub(1) {
            let lo = self.csr.offsets[i] as usize;
            let hi = self.csr.offsets[i + 1] as usize;
            for p in lo..hi {
                let slot = self.csr.slots[p];
                if slot != u32::MAX && !self.links[slot as usize].is_empty() {
                    keyed.push((((i as u64) << 32) | u64::from(self.csr.targets[p]), slot));
                }
            }
        }
        for (&key, &slot) in &self.link_slots {
            if !self.links[slot as usize].is_empty() {
                keyed.push((key, slot));
            }
        }
        keyed.sort_unstable_by_key(|&(key, _)| key);
        d.mix(keyed.len() as u64);
        for (key, slot) in keyed {
            d.mix(key);
            let queue = &self.links[slot as usize];
            d.mix(queue.len() as u64);
            for (msg, depth) in queue {
                msg.digest(&mut d);
                d.mix(*depth);
            }
        }
        self.metrics.digest_into(&mut d);
        d.mix(self.seq);
        d.finish()
    }

    /// Whether all link queues are empty (no in-flight messages).
    pub fn links_empty(&self) -> bool {
        self.links.iter().all(VecDeque::is_empty)
    }
}

impl<P: Protocol + fmt::Debug> fmt::Debug for Runner<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runner")
            .field("nodes", &self.nodes.len())
            .field(
                "in_flight",
                &self.links.iter().map(VecDeque::len).sum::<usize>(),
            )
            .field("metrics", &self.metrics)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FifoScheduler, LifoScheduler};

    /// Flood protocol: on wake or first sighting of a token, forward it to
    /// all initially-known peers.
    #[derive(Debug)]
    struct Flood {
        peers: Vec<NodeId>,
        seen: bool,
    }

    #[derive(Clone, Debug)]
    struct Tok;

    impl Envelope for Tok {
        fn kind(&self) -> &'static str {
            "tok"
        }
        fn for_each_carried_id(&self, _f: &mut dyn FnMut(NodeId)) {}
        fn aux_bits(&self) -> u64 {
            0
        }
    }

    impl Protocol for Flood {
        type Message = Tok;
        fn on_wake(&mut self, ctx: &mut Context<'_, Tok>) {
            if !self.seen {
                self.seen = true;
                for &p in &self.peers {
                    ctx.send(p, Tok);
                }
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: Tok, _ctx: &mut Context<'_, Tok>) {}
    }

    fn line(n: usize) -> Runner<Flood> {
        let nodes = (0..n)
            .map(|i| Flood {
                peers: if i + 1 < n {
                    vec![NodeId::new(i + 1)]
                } else {
                    vec![]
                },
                seen: false,
            })
            .collect();
        let knowledge = (0..n)
            .map(|i| {
                if i + 1 < n {
                    vec![NodeId::new(i + 1)]
                } else {
                    vec![]
                }
            })
            .collect();
        Runner::new(nodes, knowledge)
    }

    #[test]
    fn message_wakes_sleeping_receiver() {
        let mut r = line(4);
        let mut s = FifoScheduler::new();
        r.enqueue_wake(NodeId::new(0), &mut s);
        r.run(&mut s, 100).unwrap();
        // Wake cascades down the whole line even though only node 0 was woken.
        assert!(r.ids().all(|id| r.is_awake(id)));
        assert_eq!(r.metrics().total_messages(), 3);
        assert!(r.links_empty());
    }

    #[test]
    fn causal_depth_counts_the_chain() {
        let mut r = line(5);
        let mut s = FifoScheduler::new();
        r.enqueue_wake(NodeId::new(0), &mut s);
        r.run(&mut s, 100).unwrap();
        assert_eq!(r.metrics().max_causal_depth(), 4);
    }

    #[test]
    fn knowledge_grows_from_sender() {
        let mut r = line(2);
        let mut s = FifoScheduler::new();
        assert!(!r.knows(NodeId::new(1), NodeId::new(0)));
        r.enqueue_wake(NodeId::new(0), &mut s);
        r.run(&mut s, 100).unwrap();
        assert!(r.knows(NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    #[should_panic(expected = "knowledge violation")]
    fn sending_to_unknown_id_panics() {
        struct Bad;
        impl Protocol for Bad {
            type Message = Tok;
            fn on_wake(&mut self, ctx: &mut Context<'_, Tok>) {
                ctx.send(NodeId::new(1), Tok);
            }
            fn on_message(&mut self, _: NodeId, _: Tok, _: &mut Context<'_, Tok>) {}
        }
        let mut r = Runner::new(vec![Bad, Bad], vec![vec![], vec![]]);
        let mut s = FifoScheduler::new();
        r.wake_now(NodeId::new(0), &mut s);
    }

    #[test]
    fn livelock_is_reported() {
        /// Two nodes bouncing a token forever.
        struct Bounce {
            peer: NodeId,
        }
        impl Protocol for Bounce {
            type Message = Tok;
            fn on_wake(&mut self, ctx: &mut Context<'_, Tok>) {
                ctx.send(self.peer, Tok);
            }
            fn on_message(&mut self, from: NodeId, _: Tok, ctx: &mut Context<'_, Tok>) {
                ctx.send(from, Tok);
            }
        }
        let mut r = Runner::new(
            vec![
                Bounce {
                    peer: NodeId::new(1),
                },
                Bounce {
                    peer: NodeId::new(0),
                },
            ],
            vec![vec![NodeId::new(1)], vec![NodeId::new(0)]],
        );
        let mut s = FifoScheduler::new();
        r.enqueue_wake(NodeId::new(0), &mut s);
        let err = r.run(&mut s, 50).unwrap_err();
        assert_eq!(err.steps, 50);
        assert!(err.pending > 0);
        assert!(err.to_string().contains("failed to quiesce"));
    }

    #[test]
    fn per_link_fifo_holds_under_lifo_scheduler() {
        /// Node 0 sends numbered messages to node 1; node 1 records arrival order.
        #[derive(Clone, Debug)]
        struct Num(u32);
        impl Envelope for Num {
            fn kind(&self) -> &'static str {
                "num"
            }
            fn for_each_carried_id(&self, _f: &mut dyn FnMut(NodeId)) {}
            fn aux_bits(&self) -> u64 {
                32
            }
        }
        struct Sender;
        struct Receiver(Vec<u32>);
        enum Either {
            S(Sender),
            R(Receiver),
        }
        impl Protocol for Either {
            type Message = Num;
            fn on_wake(&mut self, ctx: &mut Context<'_, Num>) {
                if let Either::S(_) = self {
                    for i in 0..10 {
                        ctx.send(NodeId::new(1), Num(i));
                    }
                }
            }
            fn on_message(&mut self, _: NodeId, m: Num, _: &mut Context<'_, Num>) {
                if let Either::R(r) = self {
                    r.0.push(m.0);
                }
            }
        }
        let mut r = Runner::new(
            vec![Either::S(Sender), Either::R(Receiver(Vec::new()))],
            vec![vec![NodeId::new(1)], vec![]],
        );
        // LIFO reorders *events*, but per-link FIFO must still hold.
        let mut s = LifoScheduler::new();
        r.enqueue_wake(NodeId::new(0), &mut s);
        r.run(&mut s, 100).unwrap();
        match r.node(NodeId::new(1)) {
            Either::R(rec) => assert_eq!(rec.0, (0..10).collect::<Vec<_>>()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn exec_flushes_external_commands() {
        let mut r = line(3);
        let mut s = FifoScheduler::new();
        r.exec(NodeId::new(0), &mut s, |node, ctx| {
            node.seen = true;
            for &p in &node.peers {
                ctx.send(p, Tok);
            }
        });
        assert_eq!(s.pending(), 1);
        r.run(&mut s, 100).unwrap();
        // exec's 0→1 plus node 1's wake-up flood 1→2 (node 2 has no peers).
        assert_eq!(r.metrics().total_messages(), 2);
    }

    #[test]
    fn dynamic_node_and_link_addition() {
        let mut r = line(2);
        let mut s = FifoScheduler::new();
        r.enqueue_wake_all(&mut s);
        r.run(&mut s, 100).unwrap();
        let newcomer = r.add_node(
            Flood {
                peers: vec![NodeId::new(0)],
                seen: false,
            },
            vec![NodeId::new(0)],
        );
        assert_eq!(newcomer, NodeId::new(2));
        r.add_link(NodeId::new(1), newcomer);
        assert!(r.knows(NodeId::new(1), newcomer));
        r.enqueue_wake(newcomer, &mut s);
        r.run(&mut s, 100).unwrap();
        assert!(r.is_awake(newcomer));
    }

    #[test]
    fn id_bits_default_is_log2_n() {
        assert_eq!(line(2).metrics().id_bits(), 1);
        assert_eq!(line(8).metrics().id_bits(), 3);
        assert_eq!(line(9).metrics().id_bits(), 4);
        assert_eq!(line(1024).metrics().id_bits(), 10);
    }
}
