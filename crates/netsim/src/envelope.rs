use crate::NodeId;

/// Number of bits charged for a message's kind tag.
///
/// Every message carries a constant-size type discriminator; the paper's bit
/// accounting treats all non-id message content as `O(log n)` bits, so a
/// small constant tag is consistent with every bound we reproduce.
pub(crate) const KIND_TAG_BITS: u64 = 4;

/// Metering interface implemented by protocol message types.
///
/// The simulator uses this trait for two things:
///
/// 1. **Knowledge propagation.** When a message is delivered, the receiver
///    learns the sender's id *and* every id returned by [`carried_ids`].
///    This is exactly the paper's knowledge-graph rule: "when a node `v`
///    receives a message containing `id(w)` then `E := E ∪ {(v → w)}`".
///    A protocol must therefore report every id embedded in a message, or
///    later sends to those ids will (correctly) panic.
/// 2. **Bit accounting.** A message of kind `k` carrying `c` ids costs
///    `c · id_bits + aux_bits + 4` bits, where `id_bits = ⌈log₂ n⌉` is
///    configured on the [`Metrics`](crate::Metrics) and `aux_bits` covers
///    non-id payload (flags, counters, phase numbers).
///
/// [`carried_ids`]: Envelope::carried_ids
///
/// # Example
///
/// ```
/// use ard_netsim::{Envelope, NodeId};
///
/// #[derive(Clone, Debug)]
/// enum Msg {
///     Hello,
///     Introduce { who: Vec<NodeId> },
/// }
///
/// impl Envelope for Msg {
///     fn kind(&self) -> &'static str {
///         match self {
///             Msg::Hello => "hello",
///             Msg::Introduce { .. } => "introduce",
///         }
///     }
///     fn carried_ids(&self) -> Vec<NodeId> {
///         match self {
///             Msg::Hello => Vec::new(),
///             Msg::Introduce { who } => who.clone(),
///         }
///     }
///     fn aux_bits(&self) -> u64 { 0 }
/// }
///
/// let m = Msg::Introduce { who: vec![NodeId::new(1), NodeId::new(2)] };
/// assert_eq!(m.kind(), "introduce");
/// assert_eq!(m.carried_ids().len(), 2);
/// ```
pub trait Envelope: Clone + std::fmt::Debug {
    /// A short static name for this message's kind, used as the metrics key
    /// (e.g. `"search"`, `"query reply"`).
    fn kind(&self) -> &'static str;

    /// Every node id embedded in the message payload.
    ///
    /// The receiver learns all of these ids on delivery. The sender's own id
    /// is implicit (the underlying transport reveals the peer address, as
    /// TCP/IP does) and must not be listed here.
    fn carried_ids(&self) -> Vec<NodeId>;

    /// Bits of non-id payload: booleans, counters, phase numbers, set-length
    /// prefixes, and similar. Ids are charged separately via
    /// [`carried_ids`](Envelope::carried_ids).
    fn aux_bits(&self) -> u64;

    /// Total size of the message in bits, given the configured id width.
    fn bits(&self, id_bits: u64) -> u64 {
        self.carried_ids().len() as u64 * id_bits + self.aux_bits() + KIND_TAG_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Fixed(Vec<NodeId>, u64);

    impl Envelope for Fixed {
        fn kind(&self) -> &'static str {
            "fixed"
        }
        fn carried_ids(&self) -> Vec<NodeId> {
            self.0.clone()
        }
        fn aux_bits(&self) -> u64 {
            self.1
        }
    }

    #[test]
    fn bits_charges_ids_aux_and_tag() {
        let m = Fixed(vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)], 5);
        assert_eq!(m.bits(10), 3 * 10 + 5 + KIND_TAG_BITS);
    }

    #[test]
    fn empty_message_still_costs_tag() {
        let m = Fixed(Vec::new(), 0);
        assert_eq!(m.bits(16), KIND_TAG_BITS);
    }
}
