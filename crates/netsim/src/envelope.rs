use crate::NodeId;

/// Number of bits charged for a message's kind tag.
///
/// Every message carries a constant-size type discriminator; the paper's bit
/// accounting treats all non-id message content as `O(log n)` bits, so a
/// small constant tag is consistent with every bound we reproduce. Public so
/// the budget checks derive their per-message overhead from the same
/// constant the metering charges (they must not drift apart).
pub const KIND_TAG_BITS: u64 = 4;

/// Metering interface implemented by protocol message types.
///
/// The simulator uses this trait for two things:
///
/// 1. **Knowledge propagation.** When a message is delivered, the receiver
///    learns the sender's id *and* every id visited by
///    [`for_each_carried_id`]. This is exactly the paper's knowledge-graph
///    rule: "when a node `v` receives a message containing `id(w)` then
///    `E := E ∪ {(v → w)}`". A protocol must therefore report every id
///    embedded in a message, or later sends to those ids will (correctly)
///    panic.
/// 2. **Bit accounting.** A message of kind `k` carrying `c` ids costs
///    `c · id_bits + aux_bits + 4` bits, where `id_bits = ⌈log₂ n⌉` is
///    configured on the [`Metrics`](crate::Metrics) and `aux_bits` covers
///    non-id payload (flags, counters, phase numbers).
///
/// Both uses sit on the simulator's per-event hot path, so the required
/// method is a visitor: implementations walk their embedded ids without
/// allocating. The [`carried_ids`] convenience (which *does* allocate a
/// `Vec`) is provided for tests and debugging.
///
/// [`for_each_carried_id`]: Envelope::for_each_carried_id
/// [`carried_ids`]: Envelope::carried_ids
///
/// # Example
///
/// ```
/// use ard_netsim::{Envelope, NodeId};
///
/// #[derive(Clone, Debug)]
/// enum Msg {
///     Hello,
///     Introduce { who: Vec<NodeId> },
/// }
///
/// impl Envelope for Msg {
///     fn kind(&self) -> &'static str {
///         match self {
///             Msg::Hello => "hello",
///             Msg::Introduce { .. } => "introduce",
///         }
///     }
///     fn for_each_carried_id(&self, f: &mut dyn FnMut(NodeId)) {
///         match self {
///             Msg::Hello => {}
///             Msg::Introduce { who } => who.iter().copied().for_each(f),
///         }
///     }
///     fn aux_bits(&self) -> u64 { 0 }
/// }
///
/// let m = Msg::Introduce { who: vec![NodeId::new(1), NodeId::new(2)] };
/// assert_eq!(m.kind(), "introduce");
/// assert_eq!(m.carried_id_count(), 2);
/// assert_eq!(m.carried_ids(), vec![NodeId::new(1), NodeId::new(2)]);
/// ```
pub trait Envelope: Clone + std::fmt::Debug {
    /// A short static name for this message's kind, used as the metrics key
    /// (e.g. `"search"`, `"query reply"`).
    fn kind(&self) -> &'static str;

    /// Calls `f` with every node id embedded in the message payload, in a
    /// fixed order.
    ///
    /// The receiver learns all of these ids on delivery. The sender's own id
    /// is implicit (the underlying transport reveals the peer address, as
    /// TCP/IP does) and must not be visited here.
    fn for_each_carried_id(&self, f: &mut dyn FnMut(NodeId));

    /// Bits of non-id payload: booleans, counters, phase numbers, set-length
    /// prefixes, and similar. Ids are charged separately via
    /// [`for_each_carried_id`](Envelope::for_each_carried_id).
    fn aux_bits(&self) -> u64;

    /// Calls `f` with half-open `[start, end)` index runs that together
    /// cover exactly the ids [`for_each_carried_id`] yields (same
    /// multiset of ids; runs need not be maximal or sorted). Knowledge
    /// absorption at delivery uses this to learn a whole run per call —
    /// for run-coded payloads that is O(runs), not O(ids).
    ///
    /// The default decomposes the id visitor into singleton runs; override
    /// when the payload representation stores runs natively.
    ///
    /// [`for_each_carried_id`]: Envelope::for_each_carried_id
    fn for_each_carried_run(&self, f: &mut dyn FnMut(u32, u32)) {
        self.for_each_carried_id(&mut |id| {
            let i = id.index() as u32;
            f(i, i + 1);
        });
    }

    /// Heap bytes currently backing this message's payload (capacity, not
    /// occupancy). Purely observability — the bench reports payload bytes
    /// per event and the peak in-flight payload footprint; nothing in the
    /// simulation branches on it. The default (no heap payload) suits
    /// scalar-only messages.
    fn payload_heap_bytes(&self) -> usize {
        0
    }

    /// Number of ids the visitor yields; used for metering.
    ///
    /// The default counts via [`for_each_carried_id`] without allocating;
    /// override only if a cheaper count is available.
    fn carried_id_count(&self) -> usize {
        let mut count = 0usize;
        self.for_each_carried_id(&mut |_| count += 1);
        count
    }

    /// Every embedded id collected into a `Vec`, in visitor order.
    ///
    /// Convenience for tests and debugging; the simulator itself never
    /// calls this on the hot path.
    fn carried_ids(&self) -> Vec<NodeId> {
        let mut ids = Vec::new();
        self.for_each_carried_id(&mut |id| ids.push(id));
        ids
    }

    /// Total size of the message in bits, given the configured id width.
    fn bits(&self, id_bits: u64) -> u64 {
        self.carried_id_count() as u64 * id_bits + self.aux_bits() + KIND_TAG_BITS
    }

    /// Mixes the message's content into a canonical state digest (the
    /// explorer's terminal-state and branch-dedup hashing).
    ///
    /// The default mixes kind, carried ids and [`aux_bits`]: sufficient
    /// whenever the non-id payload is fully determined by those (most
    /// messages here). Override when two *different* payloads can agree on
    /// all three — e.g. a phase counter whose value doesn't change the bit
    /// *count* — otherwise distinct in-flight messages hash alike and the
    /// explorer may wrongly dedup two genuinely different branches.
    ///
    /// [`aux_bits`]: Envelope::aux_bits
    fn digest(&self, d: &mut crate::StateDigest) {
        d.mix_bytes(self.kind().as_bytes());
        d.mix(self.carried_id_count() as u64);
        self.for_each_carried_id(&mut |id| d.mix(id.index() as u64));
        d.mix(self.aux_bits());
    }

    /// Builds a *forged* message for a Byzantine `src` to inject toward
    /// `dst` ([`Choice::Forge`](crate::Choice::Forge)).
    ///
    /// `salt` is a protocol-interpreted forgery descriptor: by convention
    /// the low 8 bits select a forgery flavor (equivocation, fabricated
    /// ids, …) and the high bits parameterize it, so seeded plans and the
    /// explorer can enumerate distinct lies without knowing the message
    /// type. The default returns `None` — protocols without a Byzantine
    /// story turn every forge choice into a metered no-op.
    fn forge(src: NodeId, dst: NodeId, salt: u32) -> Option<Self>
    where
        Self: Sized,
    {
        let _ = (src, dst, salt);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Fixed(Vec<NodeId>, u64);

    impl Envelope for Fixed {
        fn kind(&self) -> &'static str {
            "fixed"
        }
        fn for_each_carried_id(&self, f: &mut dyn FnMut(NodeId)) {
            self.0.iter().copied().for_each(f);
        }
        fn aux_bits(&self) -> u64 {
            self.1
        }
    }

    #[test]
    fn bits_charges_ids_aux_and_tag() {
        let m = Fixed(vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)], 5);
        assert_eq!(m.bits(10), 3 * 10 + 5 + KIND_TAG_BITS);
    }

    #[test]
    fn empty_message_still_costs_tag() {
        let m = Fixed(Vec::new(), 0);
        assert_eq!(m.bits(16), KIND_TAG_BITS);
    }

    #[test]
    fn default_run_visitor_covers_the_ids() {
        let m = Fixed(vec![NodeId::new(4), NodeId::new(2), NodeId::new(3)], 0);
        let mut covered = Vec::new();
        m.for_each_carried_run(&mut |s, e| covered.extend((s..e).map(|i| NodeId::new(i as usize))));
        assert_eq!(covered, m.carried_ids());
        assert_eq!(m.payload_heap_bytes(), 0, "default reports no heap payload");
    }

    #[test]
    fn count_and_vec_agree_with_visitor() {
        let m = Fixed(vec![NodeId::new(4), NodeId::new(2)], 0);
        assert_eq!(m.carried_id_count(), 2);
        assert_eq!(m.carried_ids(), vec![NodeId::new(4), NodeId::new(2)]);
        let empty = Fixed(Vec::new(), 0);
        assert_eq!(empty.carried_id_count(), 0);
        assert!(empty.carried_ids().is_empty());
    }
}
