//! Interval-coded index sets for run-heavy knowledge at large `n`.
//!
//! A discovery run grows each node's knowledge toward "everyone in my
//! component", and component ids are dense ranges of the simulator's
//! index space — so the *steady state* of a knowledge set is a handful of
//! long runs, not scattered bits. An [`IntervalSet`] stores exactly those
//! runs (`[start, end)`, sorted, disjoint, non-adjacent), which makes its
//! memory proportional to the number of runs (≈ constant per component)
//! instead of the O(n) bits a dense [`BitSet`](crate::BitSet) pays per
//! node. At n = 10⁶ that is the difference between ~125 GB of bitset
//! words and a few MB of run pairs.

/// A sorted-run set of `usize` indices below `u32::MAX`.
///
/// Semantically identical to [`BitSet`](crate::BitSet) (the property tests
/// in `crates/netsim/tests` hold the two to the same answers); the trade-off
/// is O(log runs) insertion against O(runs) memory and O(runs) union.
///
/// # Example
///
/// ```
/// use ard_netsim::IntervalSet;
///
/// let mut set = IntervalSet::new();
/// assert!(set.insert(3));
/// assert!(set.insert(4));
/// assert!(!set.insert(3), "second insert reports already-present");
/// assert_eq!(set.runs(), &[(3, 5)], "adjacent inserts coalesce");
/// assert_eq!(set.len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntervalSet {
    /// Sorted, disjoint, non-adjacent half-open runs `[start, end)`.
    runs: Vec<(u32, u32)>,
    /// Cached total membership, kept in sync by every mutation.
    len: u64,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// Inserts `index`, coalescing with adjacent runs. Returns `true` if it
    /// was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not below `u32::MAX` (node indices are dense and
    /// far smaller in practice).
    pub fn insert(&mut self, index: usize) -> bool {
        let i = u32::try_from(index).expect("interval set index fits u32");
        assert!(i < u32::MAX, "interval set index below u32::MAX");
        // Position of the first run starting after `i`; the run that could
        // contain `i` (if any) sits just before it.
        let at = self.runs.partition_point(|&(start, _)| start <= i);
        if at > 0 {
            let (start, end) = self.runs[at - 1];
            debug_assert!(start <= i);
            if i < end {
                return false;
            }
            if i == end {
                // Extend the left run; it may now touch the right one.
                if self.runs.get(at).is_some_and(|&(next, _)| next == i + 1) {
                    self.runs[at - 1].1 = self.runs[at].1;
                    self.runs.remove(at);
                } else {
                    self.runs[at - 1].1 = i + 1;
                }
                self.len += 1;
                return true;
            }
        }
        if self.runs.get(at).is_some_and(|&(next, _)| next == i + 1) {
            self.runs[at].0 = i;
        } else {
            self.runs.insert(at, (i, i + 1));
        }
        self.len += 1;
        true
    }

    /// Whether `index` is in the set.
    pub fn contains(&self, index: usize) -> bool {
        let Ok(i) = u32::try_from(index) else {
            return false;
        };
        let at = self.runs.partition_point(|&(start, _)| start <= i);
        at > 0 && i < self.runs[at - 1].1
    }

    /// Whether every index in the half-open run `[start, end)` is present
    /// (one binary search: a covered run lies inside a single stored run).
    pub fn covers(&self, start: u32, end: u32) -> bool {
        if start >= end {
            return true;
        }
        let at = self.runs.partition_point(|&(s, _)| s <= start);
        at > 0 && end <= self.runs[at - 1].1
    }

    /// Number of indices in the set.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The coalesced runs, as sorted disjoint half-open `(start, end)` pairs.
    pub fn runs(&self) -> &[(u32, u32)] {
        &self.runs
    }

    /// Iterates over the set's indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.runs
            .iter()
            .flat_map(|&(start, end)| (start..end).map(|i| i as usize))
    }

    /// Removes every index (keeping the run buffer for reuse).
    pub fn clear(&mut self) {
        self.runs.clear();
        self.len = 0;
    }

    /// Inserts `index`, optimized for (mostly) ascending streams: an index
    /// at or past the end of the last run is handled in O(1); anything
    /// else falls back to [`insert`](IntervalSet::insert). Building a set
    /// from a sorted id list this way is O(ids), where repeated `insert`
    /// would pay a tail-memmove per new run.
    pub fn push(&mut self, index: usize) -> bool {
        let i = u32::try_from(index).expect("interval set index fits u32");
        assert!(i < u32::MAX, "interval set index below u32::MAX");
        match self.runs.last_mut() {
            None => {
                self.runs.push((i, i + 1));
                self.len += 1;
                true
            }
            Some((start, end)) if *start <= i => {
                if i < *end {
                    false
                } else {
                    if i == *end {
                        *end = i + 1;
                    } else {
                        self.runs.push((i, i + 1));
                    }
                    self.len += 1;
                    true
                }
            }
            Some(_) => self.insert(index),
        }
    }

    /// Inserts every index in the half-open run `[start, end)`, merging
    /// with any overlapping or adjacent runs, in O(log runs + runs moved).
    /// Learning a delivered payload's whole run this way is O(1) amortized
    /// where per-id insertion would be O(run length).
    pub fn insert_run(&mut self, start: u32, end: u32) {
        if start >= end {
            return;
        }
        // Runs strictly left of `start` (no overlap, not adjacent) …
        let lo = self.runs.partition_point(|&(_, e)| e < start);
        // … and the first run strictly right of `end`.
        let hi = self.runs.partition_point(|&(s, _)| s <= end);
        if lo == hi {
            self.runs.insert(lo, (start, end));
            self.len += u64::from(end - start);
            return;
        }
        // Every run in `lo..hi` overlaps or touches `[start, end)`, so the
        // union of all of them with it is one contiguous span `[s, e)`; the
        // net growth is that span minus what those runs already covered.
        let mut covered = 0u64;
        let mut s = start;
        let mut e = end;
        for &(rs, re) in &self.runs[lo..hi] {
            covered += u64::from(re - rs);
            s = s.min(rs);
            e = e.max(re);
        }
        self.runs[lo] = (s, e);
        self.runs.drain(lo + 1..hi);
        self.len += u64::from(e - s) - covered;
    }

    /// Inserts the run `[start, end)`, optimized for (mostly) ascending
    /// streams: a run starting at or past the end of the last stored run
    /// is handled in O(1); anything else falls back to
    /// [`insert_run`](IntervalSet::insert_run). The delivery path builds
    /// its scratch set from a payload's run decomposition this way.
    pub fn push_run(&mut self, start: u32, end: u32) {
        if start >= end {
            return;
        }
        match self.runs.last_mut() {
            None => {
                self.runs.push((start, end));
                self.len += u64::from(end - start);
            }
            Some((_, last_end)) if start >= *last_end => {
                if start == *last_end {
                    *last_end = end;
                } else {
                    self.runs.push((start, end));
                }
                self.len += u64::from(end - start);
            }
            Some(&mut (ls, le)) if start >= ls && end <= le => {
                // Fully covered: nothing to learn.
            }
            _ => self.insert_run(start, end),
        }
    }

    /// Unions `other` into `self` in O(runs of self + runs of other) — the
    /// set-size-independent merge that makes cluster handover cheap.
    pub fn union_with(&mut self, other: &IntervalSet) {
        if other.runs.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.runs.len() + other.runs.len());
        let mut len = 0u64;
        let mut a = self.runs.iter().copied().peekable();
        let mut b = other.runs.iter().copied().peekable();
        let mut cur: Option<(u32, u32)> = None;
        loop {
            let next = match (a.peek(), b.peek()) {
                (Some(&x), Some(&y)) => {
                    if x.0 <= y.0 {
                        a.next()
                    } else {
                        b.next()
                    }
                }
                (Some(_), None) => a.next(),
                (None, Some(_)) => b.next(),
                (None, None) => break,
            }
            .expect("peeked run present");
            match &mut cur {
                Some((_, end)) if next.0 <= *end => *end = (*end).max(next.1),
                _ => {
                    if let Some(done) = cur.take() {
                        len += u64::from(done.1 - done.0);
                        merged.push(done);
                    }
                    cur = Some(next);
                }
            }
        }
        if let Some(done) = cur {
            len += u64::from(done.1 - done.0);
            merged.push(done);
        }
        self.runs = merged;
        self.len = len;
    }

    /// Heap bytes backing the set (capacity, not just occupancy).
    pub fn heap_bytes(&self) -> usize {
        self.runs.capacity() * std::mem::size_of::<(u32, u32)>()
    }
}

impl FromIterator<usize> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut set = IntervalSet::new();
        for i in iter {
            set.insert(i);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_and_coalescing() {
        let mut s = IntervalSet::new();
        assert!(s.insert(5));
        assert!(s.insert(7));
        assert_eq!(s.runs(), &[(5, 6), (7, 8)]);
        // Filling the gap coalesces the two runs into one.
        assert!(s.insert(6));
        assert_eq!(s.runs(), &[(5, 8)]);
        assert!(!s.insert(6));
        assert!(s.contains(5) && s.contains(6) && s.contains(7));
        assert!(!s.contains(4) && !s.contains(8));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn insert_extends_runs_on_both_sides() {
        let mut s = IntervalSet::new();
        s.insert(10);
        s.insert(9); // extend a run's start
        s.insert(11); // extend a run's end
        assert_eq!(s.runs(), &[(9, 12)]);
        s.insert(0); // fresh run before
        s.insert(100); // fresh run after
        assert_eq!(s.runs(), &[(0, 1), (9, 12), (100, 101)]);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn iter_yields_sorted_members() {
        let s: IntervalSet = [5usize, 1, 200, 64, 2].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2, 5, 64, 200]);
    }

    #[test]
    fn union_with_merges_overlapping_runs() {
        let mut a: IntervalSet = (0usize..10).collect();
        let b: IntervalSet = (5usize..20).chain(30..32).collect();
        a.union_with(&b);
        assert_eq!(a.runs(), &[(0, 20), (30, 32)]);
        assert_eq!(a.len(), 22);
        // Union with an empty set is a no-op.
        a.union_with(&IntervalSet::new());
        assert_eq!(a.len(), 22);
        // Union into an empty set copies.
        let mut c = IntervalSet::new();
        c.union_with(&a);
        assert_eq!(c, a);
    }

    #[test]
    fn union_with_coalesces_adjacent_runs() {
        let mut a: IntervalSet = (0usize..5).collect();
        let b: IntervalSet = (5usize..9).collect();
        a.union_with(&b);
        assert_eq!(a.runs(), &[(0, 9)]);
    }

    #[test]
    fn insert_run_merges_overlaps_and_adjacency() {
        let mut s = IntervalSet::new();
        s.insert_run(10, 20);
        assert_eq!(s.runs(), &[(10, 20)]);
        assert_eq!(s.len(), 10);
        // Disjoint run before.
        s.insert_run(0, 3);
        assert_eq!(s.runs(), &[(0, 3), (10, 20)]);
        // Overlapping both plus the gap: one merged span.
        s.insert_run(2, 15);
        assert_eq!(s.runs(), &[(0, 20)]);
        assert_eq!(s.len(), 20);
        // Fully covered: no change.
        s.insert_run(5, 10);
        assert_eq!(s.len(), 20);
        // Adjacent on the right coalesces.
        s.insert_run(20, 25);
        assert_eq!(s.runs(), &[(0, 25)]);
        assert_eq!(s.len(), 25);
        // Empty run is a no-op.
        s.insert_run(30, 30);
        assert_eq!(s.runs(), &[(0, 25)]);
    }

    #[test]
    fn insert_run_matches_per_id_inserts() {
        // Oracle: the same memberships built id-by-id.
        let runs = [(5u32, 9u32), (0, 2), (8, 20), (30, 31), (19, 30), (2, 5)];
        let mut by_run = IntervalSet::new();
        let mut by_id = IntervalSet::new();
        for &(a, b) in &runs {
            by_run.insert_run(a, b);
            for i in a..b {
                by_id.insert(i as usize);
            }
            assert_eq!(by_run, by_id);
            assert_eq!(by_run.len(), by_id.len());
        }
        assert_eq!(by_run.runs(), &[(0, 31)]);
    }

    #[test]
    fn push_run_fast_path_and_fallback() {
        let mut s = IntervalSet::new();
        s.push_run(0, 4); // empty-set path
        s.push_run(4, 8); // adjacent extend
        assert_eq!(s.runs(), &[(0, 8)]);
        s.push_run(10, 12); // disjoint append
        assert_eq!(s.runs(), &[(0, 8), (10, 12)]);
        s.push_run(10, 12); // fully covered no-op
        assert_eq!(s.len(), 10);
        s.push_run(5, 11); // overlapping fallback to insert_run
        assert_eq!(s.runs(), &[(0, 12)]);
        assert_eq!(s.len(), 12);
        s.push_run(1, 2); // covered by first (non-last) run
        assert_eq!(s.len(), 12);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s: IntervalSet = [1usize].into_iter().collect();
        assert!(!s.contains(usize::MAX));
    }
}
