//! Scoped worker-pool parallel map with input-order merging.
//!
//! The explorer and shrinker fan speculative simulation runs out over
//! `std::thread::scope` workers, then consume the results **in input
//! order** — the same seed-order-merge discipline the bench harness uses —
//! so the merged outcome is byte-identical at any job count. This module
//! is the one primitive they share: apply a `Sync` function to every item
//! of a batch, on up to `jobs` threads, and hand the results back in the
//! order the items went in.
//!
//! With `jobs <= 1` (or a single item) no thread is spawned at all: the
//! map runs inline on the caller's thread, so sequential users pay nothing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item of `items` on up to `jobs` worker threads,
/// returning the results in input order.
///
/// Work is claimed dynamically (an atomic cursor over the batch), so
/// uneven item costs balance across workers, but each result lands in the
/// slot of its input index — the output is the same `Vec` a sequential
/// `map` would produce, regardless of `jobs` or thread timing.
pub fn parallel_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = work.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= work.len() {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot lock")
                    .take()
                    .expect("each work item is claimed exactly once");
                let result = f(item);
                *slots[i].lock().expect("result slot lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("every claimed item produced a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for jobs in [0, 1, 2, 4, 8] {
            let got = parallel_map(jobs, items.clone(), |x| x * x + 1);
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_batches_work() {
        let empty: Vec<u32> = parallel_map(4, Vec::new(), |x: u32| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(4, vec![41], |x| x + 1), vec![42]);
    }

    #[test]
    fn uneven_item_costs_still_merge_in_order() {
        // Later items finish first; order must come from the input.
        let items: Vec<u64> = (0..32).collect();
        let got = parallel_map(4, items, |x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x
        });
        assert_eq!(got, (0..32).collect::<Vec<u64>>());
    }
}
