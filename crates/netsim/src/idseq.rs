//! Run-length-coded id sequences for message payloads.
//!
//! A discovery run's large payloads (`info` handovers, query-family
//! replies) ship subsets of a component whose ids are dense ranges of the
//! simulator's index space — mostly *runs*, not scattered ids. An
//! [`IdSeq`] stores such a payload as an ordered sequence of half-open
//! runs once it grows past a small threshold, so the endgame's
//! O(component)-sized payloads collapse to a handful of words instead of
//! an O(component) `Vec<NodeId>` per message (the allocation/memcpy
//! traffic that dominated large-n throughput).
//!
//! Unlike [`IntervalSet`](crate::IntervalSet), an [`IdSeq`] is a
//! *sequence*, not a set: it preserves exactly the order ids were pushed
//! (including duplicates), because the [`Envelope`](crate::Envelope)
//! contract — visitor order, digests, bit metering — is defined over the
//! payload's id order and must stay byte-identical to the `Vec<NodeId>`
//! representation it replaces.

use crate::NodeId;

/// Ids stored one-per-word before switching to run coding. Below this the
/// payload is small enough that run bookkeeping cannot pay for itself;
/// above it, consecutive pushes start coalescing into `(start, end)` runs.
const DENSE_MAX: u32 = 32;

/// Packs a half-open run `[start, end)` into one word.
fn pack(start: u32, end: u32) -> u64 {
    (u64::from(start) << 32) | u64::from(end)
}

/// Unpacks a half-open run `[start, end)` from one word.
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// An ordered sequence of node ids with run-length compression.
///
/// Semantically a `Vec<NodeId>`: pushing ids and iterating yields exactly
/// the pushed sequence, in order, duplicates included. Representationally
/// it is dense (one id per word) below [`DENSE_MAX`] ids and run-coded
/// above, where a push of `last_end` extends the final run in place — so
/// a payload built from ascending iteration (every production site: the
/// `BTreeSet` cluster sets) stores long runs in O(1) words each.
///
/// Equality compares the id *sequence*, not the representation: a dense
/// and a run-coded `IdSeq` holding the same ids are equal.
///
/// # Example
///
/// ```
/// use ard_netsim::{IdSeq, NodeId};
///
/// let seq: IdSeq = (0..100).map(NodeId::new).collect();
/// assert_eq!(seq.len(), 100);
/// assert!(seq.heap_bytes() <= 40 * 8, "one ascending run stays compact");
/// assert_eq!(seq.iter().collect::<Vec<_>>(), (0..100).map(NodeId::new).collect::<Vec<_>>());
/// ```
#[derive(Clone, Default)]
pub struct IdSeq {
    /// Dense mode: one id per word (low 32 bits). Run mode: one half-open
    /// `[start, end)` run per word, `start` in the high 32 bits.
    words: Vec<u64>,
    /// Total ids in the sequence (sum of run lengths in run mode).
    len: u32,
    /// Whether `words` holds runs instead of single ids.
    run_coded: bool,
}

impl IdSeq {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        IdSeq::default()
    }

    /// Creates an empty sequence reusing `buf`'s capacity (the buffer is
    /// cleared). Pair with [`into_words`](IdSeq::into_words) to recycle
    /// payload buffers through a [`MessageArena`](crate::MessageArena).
    pub fn with_buffer(mut buf: Vec<u64>) -> Self {
        buf.clear();
        IdSeq {
            words: buf,
            len: 0,
            run_coded: false,
        }
    }

    /// Appends `id` to the sequence.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `id`'s index is `u32::MAX`, the one
    /// index a half-open `u32` run cannot end past.
    pub fn push(&mut self, id: NodeId) {
        let i = id.index() as u32;
        debug_assert!(i < u32::MAX, "id sequence index below u32::MAX");
        if !self.run_coded {
            if self.len < DENSE_MAX {
                self.words.push(u64::from(i));
                self.len += 1;
                return;
            }
            self.convert_to_runs();
        }
        match self.words.last_mut() {
            // Extending the last run keeps ascending streams at one word
            // per run; anything else appends a fresh (possibly singleton)
            // run, preserving the exact push order.
            Some(w) if (*w as u32) == i && (*w >> 32) as u32 <= i => *w += 1,
            _ => self.words.push(pack(i, i + 1)),
        }
        self.len += 1;
    }

    /// Re-codes the dense words as runs, in place. Each maximal ascending
    /// stretch of consecutive ids becomes one run; since every run
    /// consumes at least one dense word, the write index never passes the
    /// read index and the buffer never grows.
    fn convert_to_runs(&mut self) {
        let mut write = 0usize;
        let mut read = 0usize;
        while read < self.words.len() {
            let start = self.words[read] as u32;
            let mut end = start + 1;
            read += 1;
            while read < self.words.len() && self.words[read] as u32 == end {
                end += 1;
                read += 1;
            }
            self.words[write] = pack(start, end);
            write += 1;
        }
        self.words.truncate(write);
        self.run_coded = true;
    }

    /// Number of ids in the sequence.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Calls `f` with every id, in push order (the hot, allocation-free
    /// walk behind [`Envelope::for_each_carried_id`](crate::Envelope::for_each_carried_id)).
    pub fn for_each(&self, f: &mut dyn FnMut(NodeId)) {
        if self.run_coded {
            for &w in &self.words {
                let (start, end) = unpack(w);
                for i in start..end {
                    f(NodeId::new(i as usize));
                }
            }
        } else {
            for &w in &self.words {
                f(NodeId::new(w as usize));
            }
        }
    }

    /// Calls `f` with `[start, end)` runs whose concatenation is exactly
    /// the id sequence. Dense stretches of consecutive ids are reported as
    /// one run even in dense mode, so knowledge absorption at delivery
    /// can learn a whole run per call instead of id-by-id.
    pub fn for_each_run(&self, f: &mut dyn FnMut(u32, u32)) {
        if self.run_coded {
            for &w in &self.words {
                let (start, end) = unpack(w);
                f(start, end);
            }
        } else {
            let mut i = 0usize;
            while i < self.words.len() {
                let start = self.words[i] as u32;
                let mut end = start + 1;
                i += 1;
                while i < self.words.len() && self.words[i] as u32 == end {
                    end += 1;
                    i += 1;
                }
                f(start, end);
            }
        }
    }

    /// Iterates over the ids in push order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().flat_map(move |&w| {
            let (start, end) = if self.run_coded {
                unpack(w)
            } else {
                (w as u32, w as u32 + 1)
            };
            (start..end).map(|i| NodeId::new(i as usize))
        })
    }

    /// Whether `id` occurs anywhere in the sequence (linear scan; tests
    /// and assertions only).
    pub fn contains(&self, id: NodeId) -> bool {
        let i = id.index() as u32;
        if self.run_coded {
            self.words.iter().any(|&w| {
                let (start, end) = unpack(w);
                start <= i && i < end
            })
        } else {
            self.words.iter().any(|&w| w as u32 == i)
        }
    }

    /// The ids collected into a `Vec`, in push order.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }

    /// Heap bytes backing the sequence (capacity, not just occupancy) —
    /// the payload-bytes metering the bench reports per event.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    /// Consumes the sequence, returning its word buffer for recycling.
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }
}

impl PartialEq for IdSeq {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for IdSeq {}

impl std::fmt::Debug for IdSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl FromIterator<NodeId> for IdSeq {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut seq = IdSeq::new();
        for id in iter {
            seq.push(id);
        }
        seq
    }
}

impl Extend<NodeId> for IdSeq {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for id in iter {
            self.push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(indices: &[usize]) -> Vec<NodeId> {
        indices.iter().copied().map(NodeId::new).collect()
    }

    fn roundtrip(oracle: &[NodeId]) {
        let seq: IdSeq = oracle.iter().copied().collect();
        assert_eq!(seq.len(), oracle.len());
        assert_eq!(seq.is_empty(), oracle.is_empty());
        assert_eq!(seq.to_vec(), oracle, "iter reproduces push order");
        let mut visited = Vec::new();
        seq.for_each(&mut |id| visited.push(id));
        assert_eq!(visited, oracle, "for_each matches iter");
        let mut by_runs = Vec::new();
        seq.for_each_run(&mut |s, e| by_runs.extend((s..e).map(|i| NodeId::new(i as usize))));
        assert_eq!(by_runs, oracle, "run decomposition concatenates to the sequence");
    }

    #[test]
    fn dense_sequences_round_trip() {
        roundtrip(&[]);
        roundtrip(&ids(&[7]));
        roundtrip(&ids(&[5, 3, 9, 3, 0])); // unsorted, duplicate
        roundtrip(&(0..31).map(NodeId::new).collect::<Vec<_>>());
    }

    #[test]
    fn run_coded_sequences_round_trip() {
        // Ascending across the threshold: coalesces into one run.
        let asc: Vec<NodeId> = (10..200).map(NodeId::new).collect();
        roundtrip(&asc);
        let seq: IdSeq = asc.iter().copied().collect();
        assert!(seq.run_coded);
        assert_eq!(seq.words.len(), 1, "one ascending run is one word");

        // Segmented ascending (snapshot shape: more ++ done ++ unaware).
        let segs: Vec<NodeId> = (0..40).chain(100..140).chain(20..60).map(NodeId::new).collect();
        roundtrip(&segs);

        // Adversarially fragmented: every other id, no coalescing possible.
        let frag: Vec<NodeId> = (0..50).map(|i| NodeId::new(2 * i)).collect();
        roundtrip(&frag);

        // Descending (never produced, still must be exact).
        let desc: Vec<NodeId> = (0..50).rev().map(NodeId::new).collect();
        roundtrip(&desc);
    }

    #[test]
    fn threshold_conversion_is_in_place() {
        let mut seq = IdSeq::new();
        for i in 0..DENSE_MAX as usize {
            seq.push(NodeId::new(i));
        }
        assert!(!seq.run_coded);
        let cap = seq.words.capacity();
        seq.push(NodeId::new(DENSE_MAX as usize));
        assert!(seq.run_coded);
        assert_eq!(seq.words.capacity(), cap, "conversion reuses the buffer");
        assert_eq!(seq.to_vec(), (0..=DENSE_MAX as usize).map(NodeId::new).collect::<Vec<_>>());
    }

    #[test]
    fn equality_is_representation_independent() {
        // Same ids, one dense (pushed) and one forced run-coded (long
        // prefix trimmed by building differently is not possible — build
        // past the threshold then compare against the same sequence).
        let long: Vec<NodeId> = (0..100).map(NodeId::new).collect();
        let a: IdSeq = long.iter().copied().collect();
        let mut b = IdSeq::new();
        b.extend(long.iter().copied());
        assert_eq!(a, b);

        let short_dense: IdSeq = ids(&[1, 2, 3]).into_iter().collect();
        let mut short_runs = IdSeq::new();
        short_runs.extend(ids(&[1, 2, 3]));
        short_runs.convert_to_runs();
        assert!(!short_dense.run_coded && short_runs.run_coded);
        assert_eq!(short_dense, short_runs);
        assert_ne!(short_dense, ids(&[1, 3, 2]).into_iter().collect::<IdSeq>());
    }

    #[test]
    fn buffer_recycling_round_trips() {
        let seq: IdSeq = (0..10).map(NodeId::new).collect();
        let words = seq.into_words();
        let cap = words.capacity();
        let mut reused = IdSeq::with_buffer(words);
        assert!(reused.is_empty());
        assert_eq!(reused.words.capacity(), cap);
        reused.push(NodeId::new(42));
        assert_eq!(reused.to_vec(), ids(&[42]));
    }

    #[test]
    fn contains_scans_both_modes() {
        let dense: IdSeq = ids(&[3, 8]).into_iter().collect();
        assert!(dense.contains(NodeId::new(8)));
        assert!(!dense.contains(NodeId::new(4)));
        let runs: IdSeq = (0..100).map(NodeId::new).collect();
        assert!(runs.contains(NodeId::new(99)));
        assert!(!runs.contains(NodeId::new(100)));
    }

    #[test]
    fn duplicate_of_run_end_starts_a_new_run() {
        // Pushing an id equal to the last run's *end* extends it; pushing
        // one equal to its last member must append, not extend.
        let mut seq = IdSeq::new();
        seq.extend((0..40).map(NodeId::new));
        assert!(seq.run_coded);
        seq.push(NodeId::new(39));
        let mut expected: Vec<NodeId> = (0..40).map(NodeId::new).collect();
        expected.push(NodeId::new(39));
        assert_eq!(seq.to_vec(), expected);
        assert_eq!(seq.len(), 41);
    }
}
