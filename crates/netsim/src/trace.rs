//! Execution tracing: an optional, ordered log of every wake-up, send and
//! delivery, for debugging protocols and for rendering executions in
//! documentation.
//!
//! Tracing is off by default (zero cost); enable it with
//! [`Runner::enable_trace`](crate::Runner::enable_trace).
//!
//! # Example
//!
//! ```
//! use ard_netsim::trace::TraceEvent;
//! # use ard_netsim::{Context, Envelope, FifoScheduler, NodeId, Protocol, Runner};
//! # #[derive(Clone, Debug)]
//! # struct Ping;
//! # impl Envelope for Ping {
//! #     fn kind(&self) -> &'static str { "ping" }
//! #     fn for_each_carried_id(&self, _f: &mut dyn FnMut(NodeId)) {}
//! #     fn aux_bits(&self) -> u64 { 0 }
//! # }
//! # struct Node { peer: Option<NodeId> }
//! # impl Protocol for Node {
//! #     type Message = Ping;
//! #     fn on_wake(&mut self, ctx: &mut Context<'_, Ping>) {
//! #         if let Some(p) = self.peer { ctx.send(p, Ping); }
//! #     }
//! #     fn on_message(&mut self, _: NodeId, _: Ping, _: &mut Context<'_, Ping>) {}
//! # }
//! let mut runner = Runner::new(
//!     vec![Node { peer: Some(NodeId::new(1)) }, Node { peer: None }],
//!     vec![vec![NodeId::new(1)], vec![]],
//! );
//! runner.enable_trace();
//! let mut sched = FifoScheduler::new();
//! runner.enqueue_wake(NodeId::new(0), &mut sched);
//! runner.run(&mut sched, 10).unwrap();
//!
//! let trace = runner.trace().unwrap();
//! // wake(n0), send, deliver, message-triggered wake(n1)
//! assert_eq!(trace.len(), 4);
//! assert!(matches!(trace.events()[0], TraceEvent::Wake { .. }));
//! println!("{}", trace.render(10));
//! ```

use std::fmt;

use crate::NodeId;

/// One logged simulation event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node woke up.
    Wake {
        /// The node.
        node: NodeId,
        /// Simulation step at which it happened.
        step: u64,
    },
    /// A message was sent (buffered onto its link).
    Send {
        /// Sender.
        src: NodeId,
        /// Destination.
        dst: NodeId,
        /// Message kind.
        kind: &'static str,
        /// Global send sequence number.
        seq: u64,
        /// Simulation step at which it happened.
        step: u64,
    },
    /// A message was delivered.
    Deliver {
        /// Sender.
        src: NodeId,
        /// Destination.
        dst: NodeId,
        /// Message kind.
        kind: &'static str,
        /// Simulation step at which it happened.
        step: u64,
    },
    /// A message was dropped (link fault or delivery to a crashed node).
    Drop {
        /// Sender.
        src: NodeId,
        /// Destination.
        dst: NodeId,
        /// Message kind.
        kind: &'static str,
        /// Simulation step at which it happened.
        step: u64,
    },
    /// A message was duplicated (link fault): a copy joined the queue tail.
    Duplicate {
        /// Sender.
        src: NodeId,
        /// Destination.
        dst: NodeId,
        /// Message kind.
        kind: &'static str,
        /// Simulation step at which it happened.
        step: u64,
    },
    /// A node crashed.
    Crash {
        /// The node.
        node: NodeId,
        /// Simulation step at which it happened.
        step: u64,
    },
    /// A crashed node restarted.
    Restart {
        /// The node.
        node: NodeId,
        /// Simulation step at which it happened.
        step: u64,
    },
    /// A timer tick fired on a node.
    Tick {
        /// The node.
        node: NodeId,
        /// Simulation step at which it happened.
        step: u64,
    },
    /// A Byzantine node forged a message onto a link.
    Forge {
        /// The Byzantine sender.
        src: NodeId,
        /// Destination.
        dst: NodeId,
        /// Message kind of the forged payload.
        kind: &'static str,
        /// Simulation step at which it happened.
        step: u64,
    },
    /// A Byzantine sender silently withheld its oldest queued message.
    Silence {
        /// The Byzantine sender.
        src: NodeId,
        /// The receiver that never sees the message.
        dst: NodeId,
        /// Message kind of the withheld message.
        kind: &'static str,
        /// Simulation step at which it happened.
        step: u64,
    },
    /// A crashed node restarted with stale (amnesiac) state.
    StaleRestart {
        /// The node.
        node: NodeId,
        /// Simulation step at which it happened.
        step: u64,
    },
    /// A node joined the running network (churn).
    Join {
        /// The node.
        node: NodeId,
        /// Simulation step at which it happened.
        step: u64,
    },
    /// A node left the network permanently (churn).
    Leave {
        /// The node.
        node: NodeId,
        /// Simulation step at which it happened.
        step: u64,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Wake { node, step } => write!(f, "[{step:>6}] wake    {node}"),
            TraceEvent::Send {
                src,
                dst,
                kind,
                seq,
                step,
            } => {
                write!(f, "[{step:>6}] send    {src} → {dst}  {kind} (#{seq})")
            }
            TraceEvent::Deliver {
                src,
                dst,
                kind,
                step,
            } => {
                write!(f, "[{step:>6}] deliver {src} → {dst}  {kind}")
            }
            TraceEvent::Drop {
                src,
                dst,
                kind,
                step,
            } => {
                write!(f, "[{step:>6}] drop    {src} → {dst}  {kind}")
            }
            TraceEvent::Duplicate {
                src,
                dst,
                kind,
                step,
            } => {
                write!(f, "[{step:>6}] dup     {src} → {dst}  {kind}")
            }
            TraceEvent::Crash { node, step } => write!(f, "[{step:>6}] crash   {node}"),
            TraceEvent::Restart { node, step } => write!(f, "[{step:>6}] restart {node}"),
            TraceEvent::Tick { node, step } => write!(f, "[{step:>6}] tick    {node}"),
            TraceEvent::Forge {
                src,
                dst,
                kind,
                step,
            } => {
                write!(f, "[{step:>6}] forge   {src} → {dst}  {kind}")
            }
            TraceEvent::Silence {
                src,
                dst,
                kind,
                step,
            } => {
                write!(f, "[{step:>6}] silence {src} → {dst}  {kind}")
            }
            TraceEvent::StaleRestart { node, step } => {
                write!(f, "[{step:>6}] stale-restart {node}")
            }
            TraceEvent::Join { node, step } => write!(f, "[{step:>6}] join    {node}"),
            TraceEvent::Leave { node, step } => write!(f, "[{step:>6}] leave   {node}"),
        }
    }
}

/// The accumulated event log of a traced run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    pub(crate) fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events, in execution order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of logged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events involving `node` (as waker, sender or receiver).
    pub fn involving(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(move |e| match e {
            TraceEvent::Wake { node: n, .. }
            | TraceEvent::Crash { node: n, .. }
            | TraceEvent::Restart { node: n, .. }
            | TraceEvent::Tick { node: n, .. }
            | TraceEvent::StaleRestart { node: n, .. }
            | TraceEvent::Join { node: n, .. }
            | TraceEvent::Leave { node: n, .. } => *n == node,
            TraceEvent::Send { src, dst, .. }
            | TraceEvent::Deliver { src, dst, .. }
            | TraceEvent::Drop { src, dst, .. }
            | TraceEvent::Duplicate { src, dst, .. }
            | TraceEvent::Forge { src, dst, .. }
            | TraceEvent::Silence { src, dst, .. } => *src == node || *dst == node,
        })
    }

    /// Renders up to `limit` events as text, one per line (with a final
    /// elision marker if truncated).
    pub fn render(&self, limit: usize) -> String {
        let mut out = String::new();
        for event in self.events.iter().take(limit) {
            out.push_str(&event.to_string());
            out.push('\n');
        }
        if self.events.len() > limit {
            out.push_str(&format!("… {} more events\n", self.events.len() - limit));
        }
        out
    }
}

/// Aggregated per-node and per-link statistics of a trace.
#[derive(Clone, Debug, Default)]
pub struct TraceStats {
    /// Messages sent per node.
    pub sends_by_node: std::collections::BTreeMap<NodeId, u64>,
    /// Messages received per node.
    pub receives_by_node: std::collections::BTreeMap<NodeId, u64>,
    /// Messages delivered per directed link.
    pub messages_by_link: std::collections::BTreeMap<(NodeId, NodeId), u64>,
}

impl TraceStats {
    /// The node that sent the most messages, with its count.
    pub fn busiest_sender(&self) -> Option<(NodeId, u64)> {
        self.sends_by_node
            .iter()
            .max_by_key(|&(_, c)| *c)
            .map(|(&n, &c)| (n, c))
    }

    /// The directed link that carried the most messages, with its count.
    pub fn busiest_link(&self) -> Option<((NodeId, NodeId), u64)> {
        self.messages_by_link
            .iter()
            .max_by_key(|&(_, c)| *c)
            .map(|(&l, &c)| (l, c))
    }

    /// The `k` heaviest senders, descending.
    pub fn top_senders(&self, k: usize) -> Vec<(NodeId, u64)> {
        let mut all: Vec<(NodeId, u64)> =
            self.sends_by_node.iter().map(|(&n, &c)| (n, c)).collect();
        all.sort_by_key(|&(n, c)| (std::cmp::Reverse(c), n));
        all.truncate(k);
        all
    }
}

impl Trace {
    /// Computes per-node and per-link aggregates over the whole log.
    pub fn stats(&self) -> TraceStats {
        let mut stats = TraceStats::default();
        for event in &self.events {
            match *event {
                TraceEvent::Wake { .. }
                | TraceEvent::Drop { .. }
                | TraceEvent::Duplicate { .. }
                | TraceEvent::Crash { .. }
                | TraceEvent::Restart { .. }
                | TraceEvent::Tick { .. }
                | TraceEvent::Forge { .. }
                | TraceEvent::Silence { .. }
                | TraceEvent::StaleRestart { .. }
                | TraceEvent::Join { .. }
                | TraceEvent::Leave { .. } => {}
                TraceEvent::Send { src, .. } => {
                    *stats.sends_by_node.entry(src).or_default() += 1;
                }
                TraceEvent::Deliver { src, dst, .. } => {
                    *stats.receives_by_node.entry(dst).or_default() += 1;
                    *stats.messages_by_link.entry((src, dst)).or_default() += 1;
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_aggregate_sends_receives_and_links() {
        let mut t = Trace::default();
        t.push(TraceEvent::Wake {
            node: NodeId::new(0),
            step: 0,
        });
        for i in 0..3 {
            t.push(TraceEvent::Send {
                src: NodeId::new(0),
                dst: NodeId::new(1),
                kind: "x",
                seq: i,
                step: i,
            });
            t.push(TraceEvent::Deliver {
                src: NodeId::new(0),
                dst: NodeId::new(1),
                kind: "x",
                step: i + 1,
            });
        }
        t.push(TraceEvent::Send {
            src: NodeId::new(1),
            dst: NodeId::new(0),
            kind: "y",
            seq: 3,
            step: 5,
        });
        t.push(TraceEvent::Deliver {
            src: NodeId::new(1),
            dst: NodeId::new(0),
            kind: "y",
            step: 6,
        });
        let s = t.stats();
        assert_eq!(s.busiest_sender(), Some((NodeId::new(0), 3)));
        assert_eq!(
            s.busiest_link(),
            Some(((NodeId::new(0), NodeId::new(1)), 3))
        );
        assert_eq!(s.receives_by_node[&NodeId::new(0)], 1);
        assert_eq!(s.top_senders(5).len(), 2);
        assert_eq!(s.top_senders(1), vec![(NodeId::new(0), 3)]);
    }

    #[test]
    fn empty_trace_has_empty_stats() {
        let t = Trace::default();
        let s = t.stats();
        assert!(s.busiest_sender().is_none());
        assert!(s.busiest_link().is_none());
        assert!(s.top_senders(3).is_empty());
    }

    #[test]
    fn involving_filters_by_participant() {
        let mut t = Trace::default();
        t.push(TraceEvent::Wake {
            node: NodeId::new(0),
            step: 0,
        });
        t.push(TraceEvent::Send {
            src: NodeId::new(0),
            dst: NodeId::new(1),
            kind: "x",
            seq: 0,
            step: 1,
        });
        t.push(TraceEvent::Wake {
            node: NodeId::new(2),
            step: 2,
        });
        assert_eq!(t.involving(NodeId::new(1)).count(), 1);
        assert_eq!(t.involving(NodeId::new(0)).count(), 2);
        assert_eq!(t.involving(NodeId::new(3)).count(), 0);
    }

    #[test]
    fn render_truncates() {
        let mut t = Trace::default();
        for i in 0..5 {
            t.push(TraceEvent::Wake {
                node: NodeId::new(i),
                step: i as u64,
            });
        }
        let s = t.render(2);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("3 more events"));
        assert!(!t.is_empty());
    }

    #[test]
    fn render_at_exact_limit_has_no_elision_marker() {
        let mut t = Trace::default();
        for i in 0..3 {
            t.push(TraceEvent::Wake {
                node: NodeId::new(i),
                step: i as u64,
            });
        }
        let exact = t.render(3);
        assert_eq!(exact.lines().count(), 3);
        assert!(!exact.contains("more events"));
        // A zero limit renders nothing but the elision marker.
        assert_eq!(t.render(0), "… 3 more events\n");
        assert_eq!(t.render(usize::MAX), exact);
    }

    fn send(src: usize, dst: usize, seq: u64) -> TraceEvent {
        TraceEvent::Send {
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            kind: "x",
            seq,
            step: seq,
        }
    }

    fn deliver(src: usize, dst: usize) -> TraceEvent {
        TraceEvent::Deliver {
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            kind: "x",
            step: 0,
        }
    }

    #[test]
    fn top_senders_breaks_count_ties_by_node_id() {
        let mut t = Trace::default();
        // Nodes 2 and 1 send twice each, node 0 once; insertion order is
        // deliberately scrambled.
        t.push(send(2, 0, 0));
        t.push(send(1, 0, 1));
        t.push(send(0, 1, 2));
        t.push(send(2, 1, 3));
        t.push(send(1, 2, 4));
        let s = t.stats();
        assert_eq!(
            s.top_senders(10),
            vec![
                (NodeId::new(1), 2),
                (NodeId::new(2), 2),
                (NodeId::new(0), 1),
            ]
        );
        assert_eq!(s.top_senders(2).len(), 2);
        assert!(s.top_senders(0).is_empty());
    }

    #[test]
    fn tied_maxima_resolve_to_the_largest_key() {
        // `max_by_key` keeps the last maximum; BTreeMap iterates in
        // ascending key order, so ties resolve to the largest node/link.
        // Pinned so hot-spot reports stay deterministic.
        let mut t = Trace::default();
        t.push(send(0, 1, 0));
        t.push(send(1, 0, 1));
        t.push(deliver(0, 1));
        t.push(deliver(1, 0));
        let s = t.stats();
        assert_eq!(s.busiest_sender(), Some((NodeId::new(1), 1)));
        assert_eq!(s.busiest_link(), Some(((NodeId::new(1), NodeId::new(0)), 1)));
    }

    #[test]
    fn involving_counts_self_loops_once() {
        let mut t = Trace::default();
        t.push(deliver(0, 0));
        assert_eq!(t.involving(NodeId::new(0)).count(), 1);
        let s = t.stats();
        assert_eq!(s.messages_by_link[&(NodeId::new(0), NodeId::new(0))], 1);
    }

    #[test]
    fn display_formats_are_readable() {
        let e = TraceEvent::Deliver {
            src: NodeId::new(1),
            dst: NodeId::new(2),
            kind: "search",
            step: 42,
        };
        assert_eq!(e.to_string(), "[    42] deliver n1 → n2  search");
    }
}
