//! Deterministic fault injection: seeded, policy-driven link loss,
//! duplication, partitions and node crash/restart, composable with every
//! [`Scheduler`].
//!
//! A [`FaultPlan`] describes *policy* (drop/duplicate probabilities, link
//! overrides, partition windows, crash events); a [`FaultScheduler`] wraps
//! any inner scheduler and turns that policy into explicit fault
//! [`Choice`]s. Every injected fault flows through the normal choice
//! stream, so a [`RecordingScheduler`](crate::record::RecordingScheduler)
//! wrapped *around* the fault scheduler captures a complete execution:
//! replaying the recorded schedule needs no fault machinery at all — the
//! recorded `Drop`/`Duplicate`/`Crash`/`Restart`/`Tick` choices drive the
//! runner directly, byte-exactly, and shrink like any other choices.
//!
//! # Determinism
//!
//! A message's fate (dropped? duplicated?) is drawn from a seeded RNG at
//! *send* time, in send order, so the same plan over the same run prefix
//! always faults the same sends. One documented subtlety: an injected
//! `Drop` removes the link's *oldest* in-flight message at the moment the
//! choice executes, which under backlog may differ from the send that drew
//! the unlucky number — the run is still fully deterministic, the fault is
//! simply attributed to the head of the queue.
//!
//! # Example
//!
//! ```
//! use ard_netsim::fault::{FaultPlan, FaultScheduler};
//! use ard_netsim::{FifoScheduler, NodeId, Scheduler};
//!
//! let plan = FaultPlan::new(7).with_drop(0.5);
//! let mut sched = FaultScheduler::new(FifoScheduler::new(), Some(plan));
//! sched.note_wake(NodeId::new(0));
//! assert!(sched.choose().is_some());
//! ```

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::scheduler::{Choice, Footprint, Scheduler, SendToken};
use crate::NodeId;

/// Per-link override of the global drop/duplicate probabilities.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkFault {
    /// Sender side of the link.
    pub src: NodeId,
    /// Receiver side of the link.
    pub dst: NodeId,
    /// Probability a message sent on this link is dropped.
    pub drop: f64,
    /// Probability a delivered-bound message on this link is duplicated.
    pub dup: f64,
}

/// A network partition over a window of choice indices: while active,
/// every message crossing the cut (exactly one endpoint in `left`) is
/// dropped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// One side of the cut; everything else is the other side.
    pub left: Vec<NodeId>,
    /// First choice index at which the partition is active.
    pub from: u64,
    /// First choice index at which it is no longer active (exclusive).
    pub until: u64,
}

/// A crash/restart pair: the node goes down at choice index `at` and comes
/// back `restart_after` choices later.
///
/// Crashes always pair with a restart: a permanently-dead node plus a
/// retransmitting sender is a livelock by construction, and the paper's
/// requirements are only claimed for nodes that participate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashEvent {
    /// The node that crashes.
    pub node: NodeId,
    /// Choice index at which the crash fires.
    pub at: u64,
    /// Choices between the crash and its restart (≥ 1).
    pub restart_after: u64,
}

/// Congruential step shared by every seeded plan generator (same constants
/// as [`FaultPlan::with_spread_crashes`]).
fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407)
}

/// Mixes a plan seed into an LCG starting state.
fn lcg_seed(seed: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
}

/// A seeded, declarative Byzantine-behaviour policy: which nodes lie, and
/// how.
///
/// The plan is pure policy (`f` nodes, four fault classes); concrete
/// choices are derived deterministically from the seed once the network
/// size is known — [`byzantine_nodes`](ByzantinePlan::byzantine_nodes)
/// picks the liars, [`timeline`](ByzantinePlan::timeline) lays out their
/// forgeries and stale restarts on the choice-index axis, and the
/// [`silence`](ByzantinePlan::silence) class withholds a fraction of their
/// outgoing sends at send time. Attach with
/// [`FaultScheduler::with_byzantine`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ByzantinePlan {
    /// Seed deriving the Byzantine set and every forged payload.
    pub seed: u64,
    /// Number of Byzantine nodes.
    pub f: usize,
    /// Equivocation: conflicting forged payloads to different neighbors.
    pub equivocate: bool,
    /// Fabrication: forged messages carrying ids the sender never learned.
    pub fabricate: bool,
    /// Selective silence: Byzantine senders withhold some of their sends.
    pub silence: bool,
    /// Stale restart: crash followed by an amnesiac rejoin.
    pub stale_restart: bool,
}

/// Fraction of a Byzantine sender's messages withheld when the
/// [`silence`](ByzantinePlan::silence) class is active.
const SILENCE_PROB: f64 = 0.35;

impl ByzantinePlan {
    /// A plan with `f` Byzantine nodes and every fault class enabled.
    pub fn new(seed: u64, f: usize) -> Self {
        ByzantinePlan {
            seed,
            f,
            equivocate: true,
            fabricate: true,
            silence: true,
            stale_restart: true,
        }
    }

    /// Restricts the plan to a single named class.
    ///
    /// # Panics
    ///
    /// Panics on an unknown class name.
    pub fn only(mut self, class: &str) -> Self {
        self.equivocate = false;
        self.fabricate = false;
        self.silence = false;
        self.stale_restart = false;
        match class {
            "equivocate" => self.equivocate = true,
            "fabricate" => self.fabricate = true,
            "silence" => self.silence = true,
            "stale-restart" => self.stale_restart = true,
            other => panic!(
                "unknown Byzantine class `{other}` \
                 (expected equivocate, fabricate, silence or stale-restart)"
            ),
        }
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_vacuous(&self) -> bool {
        self.f == 0
            || !(self.equivocate || self.fabricate || self.silence || self.stale_restart)
    }

    /// The Byzantine node set of an `n`-node network: `min(f, n)` distinct
    /// nodes derived from the seed.
    pub fn byzantine_nodes(&self, n: usize) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        if n == 0 {
            return out;
        }
        let mut x = lcg_seed(self.seed);
        while out.len() < self.f.min(n) {
            x = lcg(x);
            let node = NodeId::new(((x >> 33) as usize) % n);
            if !out.contains(&node) {
                out.push(node);
            }
        }
        out
    }

    /// The plan's forgery / stale-restart events as `(choice index,
    /// choice)` pairs, sorted by index. Every forged id is `< n`, so
    /// fabricated payloads always name addressable (if never-learned)
    /// nodes.
    pub fn timeline(&self, n: usize) -> Vec<(u64, Choice)> {
        let mut events: Vec<(u64, Choice)> = Vec::new();
        if n < 2 {
            return events;
        }
        let nodes = self.byzantine_nodes(n);
        let mut x = lcg_seed(self.seed ^ 0xB12A);
        let mut pick_other = |avoid: NodeId| -> NodeId {
            loop {
                x = lcg(x);
                let d = NodeId::new(((x >> 33) as usize) % n);
                if d != avoid || n == 1 {
                    return d;
                }
            }
        };
        let mut at = 15u64;
        for &b in &nodes {
            if self.equivocate {
                // Conflicting leadership claims (flavor 0) to two
                // different receivers.
                let d1 = pick_other(b);
                let mut d2 = pick_other(b);
                if n > 2 {
                    while d2 == d1 {
                        d2 = pick_other(b);
                    }
                }
                let phase = 2 + (at % 5) as u32;
                events.push((
                    at,
                    Choice::Forge {
                        src: b,
                        dst: d1,
                        salt: phase << 8,
                    },
                ));
                events.push((
                    at + 1,
                    Choice::Forge {
                        src: b,
                        dst: d2,
                        salt: (phase + 1) << 8,
                    },
                ));
                at += 20;
            }
            if self.fabricate {
                // A forged search naming an id the sender never learned
                // (flavor 1).
                let d = pick_other(b);
                let fake = pick_other(d);
                events.push((
                    at,
                    Choice::Forge {
                        src: b,
                        dst: d,
                        salt: ((fake.index() as u32) << 8) | 1,
                    },
                ));
                at += 20;
            }
            if self.stale_restart {
                events.push((at, Choice::Crash(b)));
                events.push((at + 10, Choice::StaleRestart(b)));
                at += 30;
            }
        }
        events.sort_by_key(|&(at, _)| at);
        events
    }
}

/// A seeded join/leave churn policy, extending the paper's dynamic
/// additions (§6, R6/Theorem 8) with permanent departures.
///
/// `rate` is the fraction of the network that joins late *and* the
/// fraction that leaves: `⌈rate·n⌉` joiners (their initial wake-ups are
/// withheld by the driver and replaced with scheduled [`Choice::Join`]s)
/// and the same number of disjoint leavers. Attach with
/// [`FaultScheduler::with_churn`].
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnPlan {
    /// Seed deriving joiner/leaver sets and event times.
    pub seed: u64,
    /// Fraction of nodes that join late / leave (`0.0 ≤ rate ≤ 0.5`).
    pub rate: f64,
}

impl ChurnPlan {
    /// A churn plan at the given rate.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ rate ≤ 0.5` (joiners and leavers are disjoint
    /// sets, so each can cover at most half the network).
    pub fn new(seed: u64, rate: f64) -> Self {
        assert!(
            (0.0..=0.5).contains(&rate),
            "churn rate {rate} must be in [0, 0.5]: joiners and leavers are disjoint"
        );
        ChurnPlan { seed, rate }
    }

    /// Whether the plan injects nothing.
    pub fn is_vacuous(&self) -> bool {
        self.rate == 0.0
    }

    /// Number of joiners (= number of leavers) in an `n`-node network.
    fn count(&self, n: usize) -> usize {
        ((self.rate * n as f64).ceil() as usize).min(n / 2)
    }

    /// Distinct nodes derived from the seed: the first `count` are the
    /// joiners, the next `count` the leavers.
    fn picks(&self, n: usize) -> Vec<NodeId> {
        let want = 2 * self.count(n);
        let mut out: Vec<NodeId> = Vec::new();
        if n == 0 {
            return out;
        }
        let mut x = lcg_seed(self.seed);
        while out.len() < want {
            x = lcg(x);
            let node = NodeId::new(((x >> 33) as usize) % n);
            if !out.contains(&node) {
                out.push(node);
            }
        }
        out
    }

    /// The nodes whose initial wake-ups the driver must withhold; they
    /// come online via scheduled [`Choice::Join`]s instead.
    pub fn joiners(&self, n: usize) -> Vec<NodeId> {
        let mut picks = self.picks(n);
        picks.truncate(self.count(n));
        picks
    }

    /// The nodes that leave permanently (disjoint from the joiners).
    pub fn leavers(&self, n: usize) -> Vec<NodeId> {
        self.picks(n).split_off(self.count(n))
    }

    /// The churn events as `(choice index, choice)` pairs, sorted by
    /// index: joins early (the paper's late wake-ups), leaves staggered
    /// through the run.
    pub fn timeline(&self, n: usize) -> Vec<(u64, Choice)> {
        let mut events: Vec<(u64, Choice)> = Vec::new();
        for (k, j) in self.joiners(n).into_iter().enumerate() {
            events.push((10 + 25 * k as u64, Choice::Join(j)));
        }
        for (k, l) in self.leavers(n).into_iter().enumerate() {
            events.push((30 + 25 * k as u64, Choice::Leave(l)));
        }
        events.sort_by_key(|&(at, _)| at);
        events
    }
}

/// A seeded, declarative fault policy.
///
/// Built with the `with_*` combinators; executed by [`FaultScheduler`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault RNG (independent of any scheduler seed).
    pub seed: u64,
    /// Global per-message drop probability (`0.0 ≤ p < 1.0`).
    pub drop: f64,
    /// Global per-message duplicate probability (`0.0 ≤ p < 1.0`).
    pub dup: f64,
    /// Per-link probability overrides (first match wins).
    pub links: Vec<LinkFault>,
    /// Partition windows.
    pub partitions: Vec<Partition>,
    /// Crash/restart events.
    pub crashes: Vec<CrashEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    fn check_prob(p: f64, what: &str) {
        assert!(
            (0.0..1.0).contains(&p),
            "{what} probability {p} must be in [0, 1): at rate 1 no message ever \
             arrives and no retransmission strategy can terminate"
        );
    }

    /// Sets the global drop probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ p < 1.0`.
    pub fn with_drop(mut self, p: f64) -> Self {
        Self::check_prob(p, "drop");
        self.drop = p;
        self
    }

    /// Sets the global duplicate probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ p < 1.0`.
    pub fn with_dup(mut self, p: f64) -> Self {
        Self::check_prob(p, "duplicate");
        self.dup = p;
        self
    }

    /// Overrides the probabilities of one directed link.
    ///
    /// # Panics
    ///
    /// Panics unless both probabilities are in `[0, 1)`.
    pub fn with_link(mut self, src: NodeId, dst: NodeId, drop: f64, dup: f64) -> Self {
        Self::check_prob(drop, "drop");
        Self::check_prob(dup, "duplicate");
        self.links.push(LinkFault {
            src,
            dst,
            drop,
            dup,
        });
        self
    }

    /// Partitions `left` from the rest of the network over the choice-index
    /// window `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn with_partition(mut self, left: Vec<NodeId>, from: u64, until: u64) -> Self {
        assert!(from < until, "partition window [{from}, {until}) is empty");
        self.partitions.push(Partition { left, from, until });
        self
    }

    /// Crashes `node` at choice index `at`, restarting it `restart_after`
    /// choices later.
    ///
    /// # Panics
    ///
    /// Panics if `restart_after == 0` (crash and restart must be distinct
    /// choices).
    pub fn with_crash(mut self, node: NodeId, at: u64, restart_after: u64) -> Self {
        assert!(restart_after >= 1, "a crash needs a later restart");
        self.crashes.push(CrashEvent {
            node,
            at,
            restart_after,
        });
        self
    }

    /// Adds `count` crash/restart events spread over distinct-ish nodes of
    /// an `n`-node network, derived deterministically from the plan seed —
    /// the `--faults crash=N` convenience.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` and `count > 0`.
    pub fn with_spread_crashes(mut self, count: usize, n: usize) -> Self {
        if count > 0 {
            assert!(n > 0, "cannot crash nodes in an empty network");
        }
        let mut x = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for k in 0..count {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let node = NodeId::new(((x >> 33) as usize) % n);
            self = self.with_crash(node, 20 + 40 * k as u64, 25);
        }
        self
    }

    /// Whether the plan injects nothing (equivalent to no plan at all).
    pub fn is_vacuous(&self) -> bool {
        self.drop == 0.0
            && self.dup == 0.0
            && self.links.iter().all(|l| l.drop == 0.0 && l.dup == 0.0)
            && self.partitions.is_empty()
            && self.crashes.is_empty()
    }

    /// The drop/duplicate probabilities in force on `src → dst`.
    fn probs(&self, src: NodeId, dst: NodeId) -> (f64, f64) {
        match self.links.iter().find(|l| l.src == src && l.dst == dst) {
            Some(l) => (l.drop, l.dup),
            None => (self.drop, self.dup),
        }
    }

    /// Whether an active partition window severs `src → dst` at `index`.
    fn partitioned(&self, src: NodeId, dst: NodeId, index: u64) -> bool {
        self.partitions.iter().any(|p| {
            (p.from..p.until).contains(&index)
                && (p.left.contains(&src) != p.left.contains(&dst))
        })
    }

    /// The crash/restart events as `(choice index, choice)` pairs, sorted
    /// by index (stable, so simultaneous events keep declaration order).
    fn timeline(&self) -> VecDeque<(u64, Choice)> {
        let mut events: Vec<(u64, Choice)> = Vec::with_capacity(2 * self.crashes.len());
        for c in &self.crashes {
            events.push((c.at, Choice::Crash(c.node)));
            events.push((c.at + c.restart_after, Choice::Restart(c.node)));
        }
        events.sort_by_key(|&(at, _)| at);
        events.into()
    }
}

/// Wraps any scheduler and injects the faults a [`FaultPlan`] prescribes,
/// as explicit choices in the schedule.
///
/// With `plan = None` the wrapper is fully transparent — same choices,
/// same order, zero RNG draws — so callers can wrap unconditionally and
/// keep a single code path (the explorer does exactly this).
///
/// Mechanics: a message's fate is drawn when its send is announced. A
/// doomed send's token is withheld from the inner scheduler and a
/// [`Choice::Drop`] is queued instead; a duplicated send forwards its
/// token *and* queues a [`Choice::Duplicate`]. Queued fault choices and
/// due crash/restart events fire before inner choices; crash events that
/// are not yet due when the inner scheduler quiesces fire then, so every
/// crash always gets its restart and the run still terminates.
#[derive(Clone, Debug)]
pub struct FaultScheduler<S> {
    inner: S,
    plan: Option<FaultPlan>,
    rng: StdRng,
    /// Fault choices injected by send fates, FIFO.
    injected: VecDeque<Choice>,
    /// Crash/restart (plus forgery/churn) timeline, sorted by choice index.
    events: VecDeque<(u64, Choice)>,
    /// Number of choices returned so far (the plan's time axis).
    choice_index: u64,
    /// Byzantine plan, if attached via [`with_byzantine`](Self::with_byzantine).
    byz: Option<ByzantinePlan>,
    /// Materialized Byzantine node set (empty without a plan).
    byz_nodes: Vec<NodeId>,
    /// Churn plan, if attached via [`with_churn`](Self::with_churn).
    churn: Option<ChurnPlan>,
    /// Dedicated RNG for Byzantine silence draws, seeded from the plan —
    /// kept separate from the link-fault RNG so attaching a Byzantine plan
    /// never perturbs an existing fault plan's fates.
    byz_rng: StdRng,
    /// Whether the last `choose` was answered by the fault layer itself
    /// (timeline event or injected fault) rather than the inner scheduler —
    /// such steps are position-pinned, so their footprints are reported as
    /// dependent-with-everything.
    served_fault: bool,
}

impl<S: Scheduler> FaultScheduler<S> {
    /// Wraps `inner` under `plan`, seeding the fault RNG from the plan.
    pub fn new(inner: S, plan: Option<FaultPlan>) -> Self {
        let seed = plan.as_ref().map_or(0, |p| p.seed);
        Self::seeded(inner, plan, seed)
    }

    /// Wraps `inner` under `plan` with an explicit fault-RNG seed (the
    /// explorer's random-walk phase varies the seed per walk while keeping
    /// one plan).
    pub fn seeded(inner: S, plan: Option<FaultPlan>, seed: u64) -> Self {
        let events = plan.as_ref().map(FaultPlan::timeline).unwrap_or_default();
        FaultScheduler {
            inner,
            plan,
            rng: StdRng::seed_from_u64(seed),
            injected: VecDeque::new(),
            events,
            choice_index: 0,
            byz: None,
            byz_nodes: Vec::new(),
            churn: None,
            byz_rng: StdRng::seed_from_u64(0),
            served_fault: false,
        }
    }

    /// Attaches a [`ByzantinePlan`] for an `n`-node network: its forgery /
    /// stale-restart timeline merges into the event queue and its silence
    /// class starts withholding Byzantine sends. `None` detaches.
    pub fn with_byzantine(mut self, plan: Option<ByzantinePlan>, n: usize) -> Self {
        if let Some(plan) = plan {
            self.byz_nodes = plan.byzantine_nodes(n);
            self.byz_rng = StdRng::seed_from_u64(plan.seed ^ 0x5117_EACE);
            self.merge_events(plan.timeline(n));
            self.byz = Some(plan);
        } else {
            self.byz = None;
            self.byz_nodes.clear();
        }
        self
    }

    /// Attaches a [`ChurnPlan`] for an `n`-node network: its join/leave
    /// timeline merges into the event queue. The *driver* must withhold
    /// the initial wake-ups of [`ChurnPlan::joiners`] — the scheduler only
    /// times their joins. `None` detaches.
    pub fn with_churn(mut self, plan: Option<ChurnPlan>, n: usize) -> Self {
        if let Some(plan) = plan {
            self.merge_events(plan.timeline(n));
            self.churn = Some(plan);
        } else {
            self.churn = None;
        }
        self
    }

    /// Merges extra timeline events into the sorted event queue (stable,
    /// so simultaneous events keep attach order).
    fn merge_events(&mut self, extra: Vec<(u64, Choice)>) {
        if extra.is_empty() {
            return;
        }
        let mut all: Vec<(u64, Choice)> = self.events.drain(..).collect();
        all.extend(extra);
        all.sort_by_key(|&(at, _)| at);
        self.events = all.into();
    }

    /// The wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped scheduler.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Consumes the wrapper, returning the inner scheduler.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn bump(&mut self, choice: Choice) -> Option<Choice> {
        self.choice_index += 1;
        Some(choice)
    }

    /// Whether this layer perturbs *sends* in an order-sensitive way: RNG
    /// fates (drop/dup/silence draws advance a stream shared by all sends)
    /// or partitions (a send's fate reads the global choice index). While
    /// true, no two steps commute for the explorer's purposes, so every
    /// footprint is reported as dependent-with-everything — reduction
    /// degrades gracefully instead of pruning unsoundly. Pure-timeline
    /// plans (crash/forge/churn at pinned indices) don't trip this: only
    /// the event-served steps themselves are pinned.
    fn perturbs_sends(&self) -> bool {
        if let Some(plan) = &self.plan {
            if plan.drop > 0.0
                || plan.dup > 0.0
                || plan.links.iter().any(|l| l.drop > 0.0 || l.dup > 0.0)
                || !plan.partitions.is_empty()
            {
                return true;
            }
        }
        self.byz.as_ref().is_some_and(|b| b.silence) && !self.byz_nodes.is_empty()
    }
}

impl<S: Scheduler> Scheduler for FaultScheduler<S> {
    fn note_wake(&mut self, node: NodeId) {
        self.inner.note_wake(node);
    }

    fn note_send(&mut self, token: SendToken) {
        let (src, dst) = (token.src, token.dst);
        // Byzantine silence is drawn first: withholding is attributed to
        // the sender, before the network can fault the message. The
        // membership test gates the draw, so runs without a Byzantine
        // plan (and honest senders under one) consume no randomness.
        if self.byz.as_ref().is_some_and(|b| b.silence)
            && self.byz_nodes.contains(&src)
            && self.byz_rng.gen::<f64>() < SILENCE_PROB
        {
            self.injected.push_back(Choice::Silence { src, dst });
            return;
        }
        let Some(plan) = &self.plan else {
            self.inner.note_send(token);
            return;
        };
        if plan.partitioned(src, dst, self.choice_index) {
            self.injected.push_back(Choice::Drop { src, dst });
            return;
        }
        let (p_drop, p_dup) = plan.probs(src, dst);
        if p_drop > 0.0 && self.rng.gen::<f64>() < p_drop {
            self.injected.push_back(Choice::Drop { src, dst });
            return;
        }
        self.inner.note_send(token);
        // A duplicate's copy is announced via note_send again when the
        // Duplicate choice executes, so its fate is drawn afresh: k extra
        // copies arise with probability dup^k (geometric), never unbounded.
        if p_dup > 0.0 && self.rng.gen::<f64>() < p_dup {
            self.injected.push_back(Choice::Duplicate { src, dst });
        }
    }

    fn note_tick(&mut self, node: NodeId) {
        self.inner.note_tick(node);
    }

    fn choose(&mut self) -> Option<Choice> {
        // Due crash/restart events fire first, then queued link faults,
        // then the inner scheduler.
        self.served_fault = true;
        if let Some(&(at, choice)) = self.events.front() {
            if at <= self.choice_index {
                self.events.pop_front();
                return self.bump(choice);
            }
        }
        if let Some(choice) = self.injected.pop_front() {
            return self.bump(choice);
        }
        if let Some(choice) = self.inner.choose() {
            self.served_fault = false;
            return self.bump(choice);
        }
        // Inner quiescence: flush not-yet-due events so every crash gets
        // its restart (a restart may un-quiesce the network again).
        if let Some((_, choice)) = self.events.pop_front() {
            return self.bump(choice);
        }
        None
    }

    fn pending(&self) -> usize {
        self.inner.pending() + self.injected.len() + self.events.len()
    }

    fn wants_footprints(&self) -> bool {
        self.inner.wants_footprints()
    }

    fn note_footprint(&mut self, choice: Choice, footprint: &Footprint) {
        // A step served by the fault layer is pinned to its choice index; a
        // step under a send-perturbing plan couples with every other step
        // through the RNG stream / partition clock. Either way the choice
        // cannot be commuted, so its footprint widens to everything.
        if self.served_fault || self.perturbs_sends() {
            self.inner.note_footprint(choice, &Footprint::everything());
        } else {
            self.inner.note_footprint(choice, footprint);
        }
    }

    fn wants_state_digest(&self) -> bool {
        self.inner.wants_state_digest()
    }

    fn note_state_digest(&mut self, digest: u64) {
        self.inner.note_state_digest(digest);
    }

    fn wants_terminal_digest(&self) -> bool {
        self.inner.wants_terminal_digest()
    }

    fn note_terminal_digest(&mut self, digest: u64) {
        self.inner.note_terminal_digest(digest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FifoScheduler, SendToken};

    fn token(src: usize, dst: usize, seq: u64) -> SendToken {
        SendToken {
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            seq,
            kind: "t",
        }
    }

    #[test]
    fn no_plan_is_fully_transparent() {
        let run = |faulty: bool| {
            let mut plain = FifoScheduler::new();
            let mut wrapped = FaultScheduler::new(FifoScheduler::new(), None);
            let feed = |s: &mut dyn Scheduler| {
                s.note_wake(NodeId::new(0));
                s.note_send(token(0, 1, 0));
                s.note_tick(NodeId::new(1));
            };
            let drain = |s: &mut dyn Scheduler| {
                let mut out = Vec::new();
                while let Some(c) = s.choose() {
                    out.push(c);
                }
                out
            };
            if faulty {
                feed(&mut wrapped);
                drain(&mut wrapped)
            } else {
                feed(&mut plain);
                drain(&mut plain)
            }
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn drop_rate_one_half_drops_about_half() {
        let plan = FaultPlan::new(3).with_drop(0.5);
        let mut s = FaultScheduler::new(FifoScheduler::new(), Some(plan));
        for i in 0..200 {
            s.note_send(token(0, 1, i));
        }
        let mut drops = 0;
        let mut delivers = 0;
        while let Some(c) = s.choose() {
            match c {
                Choice::Drop { .. } => drops += 1,
                Choice::Deliver { .. } => delivers += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(drops + delivers, 200);
        assert!((60..140).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn fates_are_seed_deterministic() {
        let run = || {
            let plan = FaultPlan::new(9).with_drop(0.3).with_dup(0.2);
            let mut s = FaultScheduler::new(FifoScheduler::new(), Some(plan));
            for i in 0..50 {
                s.note_send(token(i % 4, (i + 1) % 4, i as u64));
            }
            let mut out = Vec::new();
            while let Some(c) = s.choose() {
                out.push(c);
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn partition_window_drops_crossing_messages_only() {
        let plan = FaultPlan::new(0).with_partition(vec![NodeId::new(0)], 0, 1_000);
        let mut s = FaultScheduler::new(FifoScheduler::new(), Some(plan));
        s.note_send(token(0, 1, 0)); // crosses the cut → dropped
        s.note_send(token(1, 2, 1)); // stays on the right side → delivered
        assert_eq!(
            s.choose(),
            Some(Choice::Drop {
                src: NodeId::new(0),
                dst: NodeId::new(1)
            })
        );
        assert_eq!(
            s.choose(),
            Some(Choice::Deliver {
                src: NodeId::new(1),
                dst: NodeId::new(2)
            })
        );
        assert_eq!(s.choose(), None);
    }

    #[test]
    fn crash_events_fire_in_order_and_flush_at_quiescence() {
        // Crash at index 1, restart 3 later — but the network quiesces
        // after two choices, so the restart flushes at quiescence.
        let plan = FaultPlan::new(0).with_crash(NodeId::new(2), 1, 3);
        let mut s = FaultScheduler::new(FifoScheduler::new(), Some(plan));
        s.note_wake(NodeId::new(0));
        s.note_wake(NodeId::new(1));
        assert_eq!(s.choose(), Some(Choice::Wake(NodeId::new(0))));
        assert_eq!(s.choose(), Some(Choice::Crash(NodeId::new(2))));
        assert_eq!(s.choose(), Some(Choice::Wake(NodeId::new(1))));
        assert_eq!(s.choose(), Some(Choice::Restart(NodeId::new(2))));
        assert_eq!(s.choose(), None);
    }

    #[test]
    fn duplicate_choice_follows_the_forwarded_token() {
        let plan = FaultPlan::new(1).with_dup(0.999_999);
        let mut s = FaultScheduler::new(FifoScheduler::new(), Some(plan));
        s.note_send(token(0, 1, 0));
        assert_eq!(
            s.choose(),
            Some(Choice::Duplicate {
                src: NodeId::new(0),
                dst: NodeId::new(1)
            })
        );
        assert_eq!(
            s.choose(),
            Some(Choice::Deliver {
                src: NodeId::new(0),
                dst: NodeId::new(1)
            })
        );
    }

    #[test]
    fn link_overrides_beat_the_global_rates() {
        let plan = FaultPlan::new(0)
            .with_drop(0.9)
            .with_link(NodeId::new(0), NodeId::new(1), 0.0, 0.0);
        let mut s = FaultScheduler::new(FifoScheduler::new(), Some(plan));
        for i in 0..50 {
            s.note_send(token(0, 1, i));
        }
        let mut delivers = 0;
        while let Some(c) = s.choose() {
            assert!(matches!(c, Choice::Deliver { .. }));
            delivers += 1;
        }
        assert_eq!(delivers, 50);
    }

    #[test]
    fn spread_crashes_always_pair_restarts() {
        let plan = FaultPlan::new(5).with_spread_crashes(3, 8);
        assert_eq!(plan.crashes.len(), 3);
        for c in &plan.crashes {
            assert!(c.restart_after >= 1);
            assert!(c.node.index() < 8);
        }
        assert!(!plan.is_vacuous());
        assert!(FaultPlan::new(5).is_vacuous());
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn full_loss_is_rejected() {
        let _ = FaultPlan::new(0).with_drop(1.0);
    }

    #[test]
    fn byzantine_nodes_are_distinct_and_seed_deterministic() {
        let plan = ByzantinePlan::new(11, 3);
        let nodes = plan.byzantine_nodes(8);
        assert_eq!(nodes.len(), 3);
        let mut dedup = nodes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
        assert_eq!(nodes, ByzantinePlan::new(11, 3).byzantine_nodes(8));
        // f larger than the network clamps.
        assert_eq!(plan.byzantine_nodes(2).len(), 2);
        assert!(plan.byzantine_nodes(0).is_empty());
    }

    #[test]
    fn byzantine_timeline_stays_inside_the_network() {
        let plan = ByzantinePlan::new(5, 2);
        let events = plan.timeline(8);
        assert!(!events.is_empty());
        let liars = plan.byzantine_nodes(8);
        for &(_, c) in &events {
            match c {
                Choice::Forge { src, dst, salt } => {
                    assert!(liars.contains(&src));
                    assert!(dst.index() < 8);
                    assert_ne!(src, dst);
                    // Any id baked into the salt names a real node.
                    assert!(((salt >> 8) as usize) < 8 || salt & 0xFF == 0);
                }
                Choice::Crash(n) | Choice::StaleRestart(n) => {
                    assert!(liars.contains(&n));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // Sorted by index.
        assert!(events.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn byzantine_class_restriction_drops_other_events() {
        let plan = ByzantinePlan::new(5, 2).only("stale-restart");
        assert!(!plan.equivocate && !plan.fabricate && !plan.silence);
        let events = plan.timeline(8);
        assert!(events
            .iter()
            .all(|&(_, c)| matches!(c, Choice::Crash(_) | Choice::StaleRestart(_))));
        assert!(ByzantinePlan::new(5, 0).is_vacuous());
        assert!(!plan.is_vacuous());
    }

    #[test]
    #[should_panic(expected = "unknown Byzantine class")]
    fn unknown_class_is_rejected() {
        let _ = ByzantinePlan::new(0, 1).only("gaslight");
    }

    #[test]
    fn churn_joiners_and_leavers_are_disjoint() {
        let plan = ChurnPlan::new(3, 0.25);
        let joiners = plan.joiners(16);
        let leavers = plan.leavers(16);
        assert_eq!(joiners.len(), 4);
        assert_eq!(leavers.len(), 4);
        assert!(joiners.iter().all(|j| !leavers.contains(j)));
        let events = plan.timeline(16);
        assert_eq!(events.len(), 8);
        assert!(events.windows(2).all(|w| w[0].0 <= w[1].0));
        // Tiny rates still churn at least one node each way.
        assert_eq!(ChurnPlan::new(3, 0.05).joiners(8).len(), 1);
        assert!(ChurnPlan::new(3, 0.0).is_vacuous());
    }

    #[test]
    #[should_panic(expected = "must be in [0, 0.5]")]
    fn over_half_churn_is_rejected() {
        let _ = ChurnPlan::new(0, 0.6);
    }

    #[test]
    fn silence_withholds_only_byzantine_sends() {
        let plan = ByzantinePlan::new(7, 1).only("silence");
        let liar = plan.byzantine_nodes(4)[0];
        let honest = NodeId::new((liar.index() + 1) % 4);
        let mut s = FaultScheduler::new(FifoScheduler::new(), None).with_byzantine(Some(plan), 4);
        for i in 0..200 {
            s.note_send(SendToken {
                src: if i % 2 == 0 { liar } else { honest },
                dst: NodeId::new((i % 2 + 2) as usize % 4),
                seq: i as u64,
                kind: "t",
            });
        }
        let mut silenced = 0;
        let mut delivered_from_liar = 0;
        let mut delivered_from_honest = 0;
        while let Some(c) = s.choose() {
            match c {
                Choice::Silence { src, .. } => {
                    assert_eq!(src, liar);
                    silenced += 1;
                }
                Choice::Deliver { src, .. } if src == liar => delivered_from_liar += 1,
                Choice::Deliver { .. } => delivered_from_honest += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(delivered_from_honest, 100, "honest sends are untouched");
        assert_eq!(silenced + delivered_from_liar, 100);
        assert!((10..70).contains(&silenced), "silenced = {silenced}");
    }

    #[test]
    fn byzantine_timeline_flushes_at_quiescence() {
        // A stale-restart pair scheduled far in the future still fires
        // when the network quiesces early, like crash events do.
        let plan = ByzantinePlan::new(2, 1).only("stale-restart");
        let mut s = FaultScheduler::new(FifoScheduler::new(), None).with_byzantine(Some(plan), 4);
        let mut seen = Vec::new();
        while let Some(c) = s.choose() {
            seen.push(c);
        }
        assert!(matches!(seen[0], Choice::Crash(_)));
        assert!(matches!(seen[1], Choice::StaleRestart(_)));
    }

    #[test]
    fn attaching_vacuous_plans_changes_nothing() {
        let run = |byz: bool| {
            let mut s = FaultScheduler::new(FifoScheduler::new(), None);
            if byz {
                s = s
                    .with_byzantine(Some(ByzantinePlan::new(9, 0)), 4)
                    .with_churn(Some(ChurnPlan::new(9, 0.0)), 4);
            }
            s.note_wake(NodeId::new(0));
            s.note_send(token(0, 1, 0));
            let mut out = Vec::new();
            while let Some(c) = s.choose() {
                out.push(c);
            }
            out
        };
        assert_eq!(run(false), run(true));
    }
}
