//! Sharded deterministic FIFO event loop.
//!
//! [`Runner::run`] under a [`FifoScheduler`](crate::FifoScheduler)
//! processes one global queue: every event of causal generation `g` runs
//! before any event of generation `g + 1`, so the execution is a sequence
//! of *rounds* — exactly a bulk-synchronous schedule. This module exploits
//! that: [`Runner::run_sharded`] partitions each round's events across
//! worker threads by destination shard (contiguous node ranges), lets the
//! workers mutate their own nodes' state independently, and then merges
//! the per-event outputs **in the original round order** on the
//! coordinating thread.
//!
//! Because the merge walks events in the exact order the sequential
//! engine would execute them — assigning `seq` numbers, step counts,
//! metrics updates, trace entries and (optionally) recorded
//! [`Schedule`] choices at merge time — the output is **byte-identical at
//! any shard count**: same [`Metrics`] (including `max_link_queue`, which
//! the merge re-derives from per-link pending counts in global order),
//! same [`Trace`](crate::trace::Trace), same recorded schedule, same final
//! node and knowledge state. This is the same determinism contract the
//! explorer's `--jobs` flag keeps (see [`par`](crate::par)), extended from
//! *independent runs merged in input order* to *one run's events merged in
//! round order*.
//!
//! Scope: the sharded loop implements the reliable FIFO semantics only —
//! wake-ups, deliveries and timer ticks. Fault injection (drops,
//! duplicates, crashes, restarts) and adversarial schedulers remain the
//! sequential engine's job; determinism there is already covered by
//! record/replay.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::sync::mpsc;

use crate::envelope::Envelope;
use crate::record::Schedule;
use crate::runner::{link_key, LinkHasher, LivelockError, Protocol, Runner};
use crate::scheduler::Choice;
use crate::intset::IntervalSet;
use crate::table::Knowledge;
use crate::trace::TraceEvent;
use crate::{Context, NodeId};

/// One event of the current round, carrying its message payload (the
/// sharded loop needs no link queues: FIFO order *is* emission order).
enum Ev<M> {
    /// Explicit wake-up of a sleeping node.
    Wake(NodeId),
    /// Delivery of `msg` on `src → dst`, sent at causal depth `depth`.
    Deliver {
        src: NodeId,
        dst: NodeId,
        msg: M,
        depth: u64,
    },
    /// A timer tick armed by `node`.
    Tick(NodeId),
}

impl<M> Ev<M> {
    /// The node whose shard executes this event.
    fn target(&self) -> NodeId {
        match *self {
            Ev::Wake(node) | Ev::Tick(node) => node,
            Ev::Deliver { dst, .. } => dst,
        }
    }
}

/// Merge-side descriptor of a dispatched event (the payload went to the
/// worker; the merge still needs identity, kind and depth).
enum EvMeta {
    Wake(NodeId),
    Deliver {
        src: NodeId,
        dst: NodeId,
        kind: &'static str,
        depth: u64,
    },
    Tick(NodeId),
}

/// What one event did, in execution order (parallel to the round's emit
/// stream: each event's emissions are the next `emits` entries).
struct EvOut {
    /// Whether the event woke a sleeping node.
    woke: bool,
    /// Number of emissions ([`Emit`]s) the event produced.
    emits: u32,
}

/// One side effect emitted while executing an event; the source node is
/// implicitly the event's target.
enum Emit<M> {
    /// A message send, pre-metered by the worker (id count via the
    /// [`Envelope`] visitor, walked in parallel).
    Send {
        dst: NodeId,
        msg: M,
        ids: usize,
        aux_bits: u64,
        kind: &'static str,
    },
    /// A timer tick armed during the event.
    Tick,
}

/// One worker's checked-out slice of the network: its nodes, their
/// knowledge sets and awake flags, for the contiguous index range
/// `base..base + nodes.len()`.
struct Shard<P: Protocol> {
    base: usize,
    /// Total network size (for the carried-id debug assert).
    network: usize,
    nodes: Vec<P>,
    knowledge: Vec<Knowledge>,
    awake: Vec<bool>,
    outbox: Vec<(NodeId, P::Message)>,
    /// Reusable staging set for one delivery's carried ids (mirrors the
    /// sequential engine's batch absorption).
    scratch: IntervalSet,
}

impl<P: Protocol> Shard<P> {
    /// Executes this shard's slice of one round, appending one [`EvOut`]
    /// per event and its emissions to `emits`.
    fn exec_round(
        &mut self,
        events: Vec<Ev<P::Message>>,
        outs: &mut Vec<EvOut>,
        emits: &mut Vec<Emit<P::Message>>,
    ) {
        for ev in events {
            let before = emits.len();
            let mut woke = false;
            match ev {
                Ev::Wake(node) => {
                    let i = node.index() - self.base;
                    if !self.awake[i] {
                        self.awake[i] = true;
                        woke = true;
                        self.dispatch(node, emits, |n, ctx| n.on_wake(ctx));
                    }
                }
                Ev::Deliver { src, dst, msg, .. } => {
                    let i = dst.index() - self.base;
                    let network = self.network;
                    let know = &mut self.knowledge[i];
                    if let Knowledge::Dense(bits) = know {
                        bits.insert(src.index());
                        msg.for_each_carried_id(&mut |id| {
                            debug_assert!(id.index() < network);
                            bits.insert(id.index());
                        });
                    } else {
                        let scratch = &mut self.scratch;
                        scratch.clear();
                        scratch.push(src.index());
                        msg.for_each_carried_id(&mut |id| {
                            debug_assert!(id.index() < network);
                            scratch.push(id.index());
                        });
                        know.absorb_scratch(scratch);
                    }
                    if !self.awake[i] {
                        self.awake[i] = true;
                        woke = true;
                        self.dispatch(dst, emits, |n, ctx| n.on_wake(ctx));
                    }
                    self.dispatch(dst, emits, |n, ctx| n.on_message(src, msg, ctx));
                }
                Ev::Tick(node) => {
                    self.dispatch(node, emits, |n, ctx| n.on_tick(ctx));
                }
            }
            outs.push(EvOut {
                woke,
                emits: u32::try_from(emits.len() - before).expect("emissions per event fit u32"),
            });
        }
    }

    /// Runs a handler with a live [`Context`] and converts its sends (and
    /// any armed tick, after them — matching the sequential flush order)
    /// into [`Emit`]s, enforcing the knowledge constraint sender-side.
    fn dispatch(
        &mut self,
        node: NodeId,
        emits: &mut Vec<Emit<P::Message>>,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Message>),
    ) {
        debug_assert!(self.outbox.is_empty());
        let mut outbox = std::mem::take(&mut self.outbox);
        let mut ctx = Context::new(node, &mut outbox);
        f(&mut self.nodes[node.index() - self.base], &mut ctx);
        let tick = ctx.tick_armed();
        self.outbox = outbox;
        for (dst, msg) in self.outbox.drain(..) {
            assert!(
                self.knowledge[node.index() - self.base].contains(dst.index()),
                "knowledge violation: {node} sent a {:?} to {dst} without knowing its id",
                msg.kind()
            );
            emits.push(Emit::Send {
                dst,
                ids: msg.carried_id_count(),
                aux_bits: msg.aux_bits(),
                kind: msg.kind(),
                msg,
            });
        }
        if tick {
            emits.push(Emit::Tick);
        }
    }
}

impl<P> Runner<P>
where
    P: Protocol + Send,
    P::Message: Send,
{
    /// Wakes every node (in id order) and runs the network to quiescence
    /// on `shards` worker threads, with output byte-identical to
    /// [`enqueue_wake_all`](Runner::enqueue_wake_all) +
    /// [`run`](Runner::run) under a
    /// [`FifoScheduler`](crate::FifoScheduler) at *any* shard count —
    /// metrics, trace, knowledge, node state and step count all match.
    ///
    /// Call on a freshly built network (no messages in flight).
    ///
    /// # Errors
    ///
    /// Returns [`LivelockError`] if `max_steps` events execute without
    /// reaching quiescence, exactly when the sequential run would. Unlike
    /// the sequential engine, the still-pending messages are discarded
    /// rather than left queued.
    ///
    /// # Panics
    ///
    /// Panics if messages are already in flight, or (like the sequential
    /// engine) if a handler violates the knowledge constraint.
    pub fn run_sharded(&mut self, shards: usize, max_steps: u64) -> Result<u64, LivelockError> {
        self.run_sharded_impl(shards, max_steps, None)
    }

    /// Like [`run_sharded`](Runner::run_sharded), but also returns the
    /// [`Schedule`] of the equivalent sequential execution — byte-identical
    /// to what a `RecordingScheduler`-wrapped FIFO run records (the merge
    /// appends one [`Choice`] per event in global order).
    pub fn run_sharded_recorded(
        &mut self,
        shards: usize,
        max_steps: u64,
    ) -> (Result<u64, LivelockError>, Schedule) {
        let mut choices = Vec::new();
        let result = self.run_sharded_impl(shards, max_steps, Some(&mut choices));
        (result, Schedule::new(choices))
    }

    fn run_sharded_impl(
        &mut self,
        shards: usize,
        max_steps: u64,
        mut record: Option<&mut Vec<Choice>>,
    ) -> Result<u64, LivelockError> {
        assert!(
            self.links_empty(),
            "run_sharded needs a quiescent network (no messages in flight)"
        );
        let n = self.len();
        if n == 0 {
            return Ok(0);
        }
        let shards = shards.clamp(1, n);
        let chunk = n.div_ceil(shards);

        // Check the per-node state out into per-shard owners.
        let mut nodes = std::mem::take(&mut self.nodes);
        let mut knowledge = std::mem::take(&mut self.table.knowledge);
        let mut shard_states: Vec<Shard<P>> = Vec::with_capacity(shards);
        for s in 0..shards {
            let base = s * chunk;
            let take = chunk.min(nodes.len());
            let rest_nodes = nodes.split_off(take);
            let rest_knowledge = knowledge.split_off(take);
            let awake = (base..base + take).map(|i| self.table.awake(i)).collect();
            shard_states.push(Shard {
                base,
                network: n,
                nodes,
                knowledge,
                awake,
                outbox: Vec::new(),
                scratch: IntervalSet::new(),
            });
            nodes = rest_nodes;
            knowledge = rest_knowledge;
        }
        debug_assert!(nodes.is_empty() && knowledge.is_empty());

        // Round 0: wake every sleeping node, in id order.
        let mut round: Vec<Ev<P::Message>> = (0..n)
            .map(NodeId::new)
            .filter(|id| !self.table.awake(id.index()))
            .map(Ev::Wake)
            .collect();
        for ev in &round {
            self.table.set_wake_enqueued(ev.target().index(), false);
        }

        let mut executed: u64 = 0;
        let mut link_pending: HashMap<u64, usize, BuildHasherDefault<LinkHasher>> =
            HashMap::default();

        let result = std::thread::scope(|scope| {
            let mut to_workers = Vec::with_capacity(shards);
            let mut from_workers = Vec::with_capacity(shards);
            let mut handles = Vec::with_capacity(shards);
            for shard in shard_states.drain(..) {
                let (tx_ev, rx_ev) = mpsc::channel::<Vec<Ev<P::Message>>>();
                let (tx_out, rx_out) = mpsc::channel();
                to_workers.push(tx_ev);
                from_workers.push(rx_out);
                handles.push(scope.spawn(move || {
                    let mut shard = shard;
                    while let Ok(events) = rx_ev.recv() {
                        let mut outs = Vec::with_capacity(events.len());
                        let mut emits = Vec::new();
                        shard.exec_round(events, &mut outs, &mut emits);
                        if tx_out.send((outs, emits)).is_err() {
                            break;
                        }
                    }
                    shard
                }));
            }

            let outcome = loop {
                if round.is_empty() {
                    break Ok(executed);
                }
                let remaining =
                    usize::try_from(max_steps - executed).unwrap_or(usize::MAX);
                if remaining == 0 {
                    break Err(LivelockError {
                        steps: executed,
                        pending: round.len(),
                    });
                }
                // Budget-capped prefix of this round; the rest stays
                // pending, exactly like the sequential loop's cutoff.
                let leftover = if round.len() > remaining {
                    round.split_off(remaining)
                } else {
                    Vec::new()
                };

                // Partition the prefix by destination shard (order within a
                // shard is preserved, so per-link FIFO holds).
                let mut metas = Vec::with_capacity(round.len());
                let mut per_shard: Vec<Vec<Ev<P::Message>>> =
                    (0..shards).map(|_| Vec::new()).collect();
                for ev in round.drain(..) {
                    metas.push(match ev {
                        Ev::Wake(node) => EvMeta::Wake(node),
                        Ev::Deliver {
                            src,
                            dst,
                            ref msg,
                            depth,
                        } => EvMeta::Deliver {
                            src,
                            dst,
                            kind: msg.kind(),
                            depth,
                        },
                        Ev::Tick(node) => EvMeta::Tick(node),
                    });
                    per_shard[ev.target().index() / chunk].push(ev);
                }
                for (tx, events) in to_workers.iter().zip(per_shard) {
                    tx.send(events).expect("shard worker alive");
                }
                let mut outs = Vec::with_capacity(shards);
                let mut got_all = true;
                for rx in &from_workers {
                    match rx.recv() {
                        Ok(out) => outs.push(out),
                        Err(_) => {
                            got_all = false;
                            break;
                        }
                    }
                }
                if !got_all {
                    // A worker died mid-round (protocol panic); surface it
                    // below by joining.
                    break Err(LivelockError {
                        steps: executed,
                        pending: metas.len(),
                    });
                }
                let mut out_iters: Vec<_> = outs
                    .into_iter()
                    .map(|(o, e)| (o.into_iter(), e.into_iter()))
                    .collect();

                // Deterministic merge: walk the round in its original
                // order, replaying each event's bookkeeping exactly as the
                // sequential engine interleaves it.
                let mut next_round = Vec::new();
                for meta in metas {
                    executed += 1;
                    self.steps += 1;
                    let (shard_of, next_depth) = match meta {
                        EvMeta::Wake(node) | EvMeta::Tick(node) => (node.index() / chunk, 1),
                        EvMeta::Deliver { dst, depth, .. } => (dst.index() / chunk, depth + 1),
                    };
                    let (ref mut out_it, ref mut emit_it) = out_iters[shard_of];
                    let out = out_it.next().expect("one output per dispatched event");
                    let src_node = match meta {
                        EvMeta::Wake(node) => {
                            if let Some(choices) = record.as_deref_mut() {
                                choices.push(Choice::Wake(node));
                            }
                            if out.woke {
                                self.metrics.record_wakeup();
                                if let Some(trace) = &mut self.trace {
                                    trace.push(TraceEvent::Wake {
                                        node,
                                        step: self.steps,
                                    });
                                }
                            }
                            node
                        }
                        EvMeta::Deliver {
                            src, dst, kind, depth,
                        } => {
                            if let Some(choices) = record.as_deref_mut() {
                                choices.push(Choice::Deliver { src, dst });
                            }
                            let pending = link_pending
                                .get_mut(&link_key(src, dst))
                                .expect("delivery on a link with pending messages");
                            *pending -= 1;
                            self.metrics.record_delivery(depth);
                            if let Some(trace) = &mut self.trace {
                                trace.push(TraceEvent::Deliver {
                                    src,
                                    dst,
                                    kind,
                                    step: self.steps,
                                });
                            }
                            if out.woke {
                                self.metrics.record_wakeup();
                                if let Some(trace) = &mut self.trace {
                                    trace.push(TraceEvent::Wake {
                                        node: dst,
                                        step: self.steps,
                                    });
                                }
                            }
                            dst
                        }
                        EvMeta::Tick(node) => {
                            if let Some(choices) = record.as_deref_mut() {
                                choices.push(Choice::Tick(node));
                            }
                            self.metrics.record_tick();
                            if let Some(trace) = &mut self.trace {
                                trace.push(TraceEvent::Tick {
                                    node,
                                    step: self.steps,
                                });
                            }
                            node
                        }
                    };
                    for _ in 0..out.emits {
                        match emit_it.next().expect("one entry per emission") {
                            Emit::Send {
                                dst,
                                msg,
                                ids,
                                aux_bits,
                                kind,
                            } => {
                                self.metrics.record(kind, ids, aux_bits);
                                if let Some(trace) = &mut self.trace {
                                    trace.push(TraceEvent::Send {
                                        src: src_node,
                                        dst,
                                        kind,
                                        seq: self.seq,
                                        step: self.steps,
                                    });
                                }
                                self.seq += 1;
                                let pending =
                                    link_pending.entry(link_key(src_node, dst)).or_insert(0);
                                *pending += 1;
                                self.metrics.observe_link_queue(*pending);
                                next_round.push(Ev::Deliver {
                                    src: src_node,
                                    dst,
                                    msg,
                                    depth: next_depth,
                                });
                            }
                            Emit::Tick => next_round.push(Ev::Tick(src_node)),
                        }
                    }
                }

                // Budget leftovers were enqueued before this round's
                // emissions, so they come first in the next queue.
                round = leftover;
                round.append(&mut next_round);
            };

            // Check the per-node state back in (joining surfaces any
            // worker panic with its original message).
            drop(to_workers);
            for handle in handles {
                match handle.join() {
                    Ok(shard) => {
                        for (j, awake) in shard.awake.iter().enumerate() {
                            self.table.set_awake(shard.base + j, *awake);
                        }
                        self.nodes.extend(shard.nodes);
                        self.table.knowledge.extend(shard.knowledge);
                    }
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
            outcome
        });
        debug_assert_eq!(self.nodes.len(), n);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FifoScheduler, Runner};

    /// Flood protocol (as in the runner tests): forward a token to all
    /// initially-known peers on wake.
    #[derive(Debug)]
    struct Flood {
        peers: Vec<NodeId>,
        seen: bool,
    }

    #[derive(Clone, Debug)]
    struct Tok;

    impl Envelope for Tok {
        fn kind(&self) -> &'static str {
            "tok"
        }
        fn for_each_carried_id(&self, _f: &mut dyn FnMut(NodeId)) {}
        fn aux_bits(&self) -> u64 {
            0
        }
    }

    impl Protocol for Flood {
        type Message = Tok;
        fn on_wake(&mut self, ctx: &mut Context<'_, Tok>) {
            if !self.seen {
                self.seen = true;
                for &p in &self.peers {
                    ctx.send(p, Tok);
                }
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: Tok, _ctx: &mut Context<'_, Tok>) {}
    }

    fn ring(n: usize) -> Runner<Flood> {
        let nodes = (0..n)
            .map(|i| Flood {
                peers: vec![NodeId::new((i + 1) % n)],
                seen: false,
            })
            .collect();
        let knowledge = (0..n).map(|i| vec![NodeId::new((i + 1) % n)]).collect();
        Runner::new(nodes, knowledge)
    }

    fn sequential(n: usize, max_steps: u64) -> (Result<u64, LivelockError>, Runner<Flood>) {
        let mut r = ring(n);
        r.enable_trace();
        let mut s = FifoScheduler::new();
        r.enqueue_wake_all(&mut s);
        let result = r.run(&mut s, max_steps);
        (result, r)
    }

    #[test]
    fn sharded_matches_sequential_at_any_shard_count() {
        let (seq_result, seq) = sequential(25, 10_000);
        seq_result.unwrap();
        for shards in [1, 2, 3, 4, 8, 25, 64] {
            let mut r = ring(25);
            r.enable_trace();
            let steps = r.run_sharded(shards, 10_000).unwrap();
            assert_eq!(steps, seq.steps_executed(), "shards={shards}");
            assert_eq!(r.metrics(), seq.metrics(), "shards={shards}");
            assert_eq!(
                r.trace().unwrap().events(),
                seq.trace().unwrap().events(),
                "shards={shards}"
            );
            for id in r.ids().collect::<Vec<_>>() {
                assert_eq!(r.is_awake(id), seq.is_awake(id));
                for other in r.ids().collect::<Vec<_>>() {
                    assert_eq!(r.knows(id, other), seq.knows(id, other));
                }
            }
        }
    }

    #[test]
    fn sharded_livelock_matches_sequential_cutoff() {
        let budget = 13;
        let (seq_result, seq) = sequential(25, budget);
        let seq_err = seq_result.unwrap_err();
        for shards in [1, 3, 8] {
            let mut r = ring(25);
            r.enable_trace();
            let err = r.run_sharded(shards, budget).unwrap_err();
            assert_eq!(err, seq_err, "shards={shards}");
            assert_eq!(r.metrics(), seq.metrics(), "shards={shards}");
            assert_eq!(r.trace().unwrap().events(), seq.trace().unwrap().events());
        }
    }

    #[test]
    fn sharded_recording_matches_sequential_recording() {
        let mut seq = ring(9);
        let mut sched = crate::RecordingScheduler::new(FifoScheduler::new());
        seq.enqueue_wake_all(&mut sched);
        seq.run(&mut sched, 10_000).unwrap();
        let want = sched.into_schedule();

        let mut r = ring(9);
        let (result, got) = r.run_sharded_recorded(4, 10_000);
        result.unwrap();
        assert_eq!(got.to_text(), want.to_text());
    }

    #[test]
    fn empty_network_is_trivially_quiescent() {
        let mut r: Runner<Flood> = Runner::new(Vec::new(), Vec::new());
        assert_eq!(r.run_sharded(4, 100), Ok(0));
    }

    #[test]
    #[should_panic(expected = "knowledge violation")]
    fn knowledge_violation_panics_through_the_shard_boundary() {
        struct Bad;
        impl Protocol for Bad {
            type Message = Tok;
            fn on_wake(&mut self, ctx: &mut Context<'_, Tok>) {
                ctx.send(NodeId::new(1), Tok);
            }
            fn on_message(&mut self, _: NodeId, _: Tok, _: &mut Context<'_, Tok>) {}
        }
        let mut r = Runner::new(vec![Bad, Bad], vec![vec![], vec![]]);
        let _ = r.run_sharded(2, 100);
    }
}
