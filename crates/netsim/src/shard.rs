//! Sharded deterministic FIFO event loop.
//!
//! [`Runner::run`] under a [`FifoScheduler`](crate::FifoScheduler)
//! processes one global queue: every event of causal generation `g` runs
//! before any event of generation `g + 1`, so the execution is a sequence
//! of *rounds* — exactly a bulk-synchronous schedule. This module exploits
//! that: [`Runner::run_sharded`] partitions each round's events across
//! worker threads by destination shard (contiguous node ranges), lets the
//! workers mutate their own nodes' state independently, and then merges
//! the per-event outputs **in the original round order** on the
//! coordinating thread.
//!
//! Because the merge walks events in the exact order the sequential
//! engine would execute them — assigning `seq` numbers, step counts,
//! metrics updates, trace entries and (optionally) recorded
//! [`Schedule`] choices at merge time — the output is **byte-identical at
//! any shard count**: same [`Metrics`] (including `max_link_queue`, which
//! the merge re-derives from per-link pending counts in global order),
//! same [`Trace`](crate::trace::Trace), same recorded schedule, same final
//! node and knowledge state. This is the same determinism contract the
//! explorer's `--jobs` flag keeps (see [`par`](crate::par)), extended from
//! *independent runs merged in input order* to *one run's events merged in
//! round order*.
//!
//! Scope: the sharded loop implements the reliable FIFO semantics only —
//! wake-ups, deliveries and timer ticks. Fault injection (drops,
//! duplicates, crashes, restarts) and adversarial schedulers remain the
//! sequential engine's job; determinism there is already covered by
//! record/replay.
//!
//! Two engine-level optimizations keep the round loop fast at n = 10⁶:
//!
//! * **Destination-ordered rounds.** Within a round, events on different
//!   destinations are independent (each touches only its target's node
//!   state), so every shard executes its slice sorted by destination —
//!   streaming node-table access instead of a random walk — and reorders
//!   the outputs back to round order before the merge, which keeps the
//!   byte-identity contract intact.
//! * **A thread-free single-shard path.** At `shards == 1` the round loop
//!   runs inline with every per-round buffer reused, so the bulk-
//!   synchronous engine is also the fastest *sequential* FIFO engine (the
//!   throughput bench drives it); the merge resolves links to dense
//!   interned slots instead of hashing per event.

use std::sync::mpsc;

use crate::envelope::Envelope;
use crate::record::Schedule;
use crate::runner::{LivelockError, Protocol, Runner};
use crate::scheduler::Choice;
use crate::table::Knowledge;
use crate::trace::TraceEvent;
use crate::{Context, NodeId};

/// Largest round the single-shard loop executes through
/// [`Runner::fused_round`] (one pass, round order) instead of the
/// stage/sort/merge batch path. Small rounds dominate the causal-chain
/// tail of a discovery run — hundreds of thousands of rounds averaging a
/// handful of events — where destination sorting cannot buy locality and
/// the batch machinery is pure per-event overhead.
const FUSE_MAX: usize = 32;

/// One event of the current round, carrying its message payload (the
/// sharded loop needs no link queues: FIFO order *is* emission order).
enum Ev<M> {
    /// Explicit wake-up of a sleeping node.
    Wake(NodeId),
    /// Delivery of `msg` on `src → dst`, sent at causal depth `depth`.
    Deliver {
        src: NodeId,
        dst: NodeId,
        msg: M,
        depth: u64,
        /// Interned slot of the `src → dst` link, captured at send time.
        /// Slots are append-only for the life of the run, so the merge can
        /// decrement the in-flight counter without a per-delivery lookup.
        slot: u32,
    },
    /// A timer tick armed by `node`.
    Tick(NodeId),
}

impl<M> Ev<M> {
    /// The node whose shard executes this event.
    fn target(&self) -> NodeId {
        match *self {
            Ev::Wake(node) | Ev::Tick(node) => node,
            Ev::Deliver { dst, .. } => dst,
        }
    }
}

/// Merge-side descriptor of a dispatched event (the payload went to the
/// worker; the merge still needs identity, kind, depth and payload size).
enum EvMeta {
    Wake(NodeId),
    Deliver {
        src: NodeId,
        dst: NodeId,
        kind: &'static str,
        depth: u64,
        /// Payload heap bytes leaving flight on delivery (observability).
        payload_bytes: usize,
        /// Interned link slot, carried over from the [`Ev`].
        slot: u32,
    },
    Tick(NodeId),
}

impl EvMeta {
    /// Captures the merge-side view of a round event.
    fn of<M: Envelope>(ev: &Ev<M>) -> EvMeta {
        match *ev {
            Ev::Wake(node) => EvMeta::Wake(node),
            Ev::Deliver {
                src,
                dst,
                ref msg,
                depth,
                slot,
            } => EvMeta::Deliver {
                src,
                dst,
                kind: msg.kind(),
                depth,
                payload_bytes: msg.payload_heap_bytes(),
                slot,
            },
            Ev::Tick(node) => EvMeta::Tick(node),
        }
    }
}

/// What one event did, written at the event's *round-order* index (shards
/// execute destination-sorted, so emissions are located by range, not by
/// stream position).
#[derive(Clone, Copy, Default)]
struct EvOut {
    /// Whether the event woke a sleeping node.
    woke: bool,
    /// First index of the event's emissions in the shard's emit buffer.
    emit_start: u32,
    /// Number of emissions ([`Emit`]s) the event produced.
    emit_count: u32,
}

/// One side effect emitted while executing an event; the source node is
/// implicitly the event's target.
enum Emit<M> {
    /// A message send, pre-metered by the worker (id count via the
    /// [`Envelope`] visitor, walked in parallel).
    Send {
        dst: NodeId,
        msg: M,
        ids: usize,
        aux_bits: u64,
        kind: &'static str,
    },
    /// A timer tick armed during the event.
    Tick,
}

/// One worker's checked-out slice of the network: its nodes, their
/// knowledge sets and awake flags, for the contiguous index range
/// `base..base + nodes.len()`.
struct Shard<P: Protocol> {
    base: usize,
    /// Total network size (for the carried-id debug assert).
    network: usize,
    nodes: Vec<P>,
    knowledge: Vec<Knowledge>,
    awake: Vec<bool>,
    outbox: Vec<(NodeId, P::Message)>,
    /// Reusable checkout buffer: the round's events, each taken exactly
    /// once in destination order.
    staged: Vec<Option<Ev<P::Message>>>,
    /// Reusable destination-sort permutation of the round's event indices.
    order: Vec<u32>,
}

impl<P: Protocol> Shard<P> {
    /// Executes this shard's slice of one round in *destination order*
    /// (stable within a destination, so per-link FIFO holds), writing one
    /// [`EvOut`] per event at its round-order index and the emissions into
    /// `emits` located by `(emit_start, emit_count)` ranges.
    ///
    /// Same-round events on different destinations commute — a handler
    /// only reads and writes its target's node state — so sorting by
    /// destination changes the memory access pattern (streaming instead of
    /// random) without changing any output the merge observes.
    fn exec_round(
        &mut self,
        events: &mut Vec<Ev<P::Message>>,
        outs: &mut Vec<EvOut>,
        emits: &mut Vec<Option<Emit<P::Message>>>,
    ) {
        let k = events.len();
        outs.clear();
        outs.resize(k, EvOut::default());
        emits.clear();
        let mut staged = std::mem::take(&mut self.staged);
        staged.clear();
        staged.extend(events.drain(..).map(Some));
        let mut order = std::mem::take(&mut self.order);
        order.clear();
        order.extend(0..u32::try_from(k).expect("round events fit u32"));
        order.sort_unstable_by_key(|&i| {
            let target = staged[i as usize].as_ref().expect("staged event").target();
            ((target.index() as u64) << 32) | u64::from(i)
        });
        for &i in &order {
            let ev = staged[i as usize].take().expect("each event executes once");
            let emit_start = u32::try_from(emits.len()).expect("emissions per round fit u32");
            let mut woke = false;
            match ev {
                Ev::Wake(node) => {
                    let j = node.index() - self.base;
                    if !self.awake[j] {
                        self.awake[j] = true;
                        woke = true;
                        self.dispatch(node, emits, |n, ctx| n.on_wake(ctx));
                    }
                }
                Ev::Deliver { src, dst, msg, .. } => {
                    let j = dst.index() - self.base;
                    let network = self.network;
                    let know = &mut self.knowledge[j];
                    know.insert(src.index());
                    msg.for_each_carried_run(&mut |start, end| {
                        debug_assert!((end as usize) <= network);
                        know.insert_run(start, end);
                    });
                    if !self.awake[j] {
                        self.awake[j] = true;
                        woke = true;
                        self.dispatch(dst, emits, |n, ctx| n.on_wake(ctx));
                    }
                    self.dispatch(dst, emits, |n, ctx| n.on_message(src, msg, ctx));
                }
                Ev::Tick(node) => {
                    self.dispatch(node, emits, |n, ctx| n.on_tick(ctx));
                }
            }
            outs[i as usize] = EvOut {
                woke,
                emit_start,
                emit_count: u32::try_from(emits.len()).expect("emissions per round fit u32")
                    - emit_start,
            };
        }
        self.staged = staged;
        self.order = order;
    }

    /// Runs a handler with a live [`Context`] and converts its sends (and
    /// any armed tick, after them — matching the sequential flush order)
    /// into [`Emit`]s, enforcing the knowledge constraint sender-side.
    fn dispatch(
        &mut self,
        node: NodeId,
        emits: &mut Vec<Option<Emit<P::Message>>>,
        f: impl FnOnce(&mut P, &mut Context<'_, P::Message>),
    ) {
        debug_assert!(self.outbox.is_empty());
        let mut outbox = std::mem::take(&mut self.outbox);
        let mut ctx = Context::new(node, &mut outbox);
        f(&mut self.nodes[node.index() - self.base], &mut ctx);
        let tick = ctx.tick_armed();
        self.outbox = outbox;
        for (dst, msg) in self.outbox.drain(..) {
            emits.push(Some(Emit::Send {
                dst,
                ids: msg.carried_id_count(),
                aux_bits: msg.aux_bits(),
                kind: msg.kind(),
                msg,
            }));
        }
        if tick {
            emits.push(Some(Emit::Tick));
        }
    }
}

/// One shard's owned outputs for a round, as shipped through the worker
/// channel.
type RoundOutput<M> = (Vec<EvOut>, Vec<Option<Emit<M>>>);

/// One shard's outputs for the round being merged: [`EvOut`]s at
/// round-order indices, emissions taken by range, and the merge's cursor
/// into the outs.
struct RoundSlice<'a, M> {
    outs: &'a [EvOut],
    emits: &'a mut [Option<Emit<M>>],
    cursor: usize,
}

impl<P> Runner<P>
where
    P: Protocol + Send,
    P::Message: Send,
{
    /// Wakes every node (in id order) and runs the network to quiescence
    /// on `shards` worker threads, with output byte-identical to
    /// [`enqueue_wake_all`](Runner::enqueue_wake_all) +
    /// [`run`](Runner::run) under a
    /// [`FifoScheduler`](crate::FifoScheduler) at *any* shard count —
    /// metrics, trace, knowledge, node state and step count all match.
    ///
    /// Call on a freshly built network (no messages in flight).
    ///
    /// # Errors
    ///
    /// Returns [`LivelockError`] if `max_steps` events execute without
    /// reaching quiescence, exactly when the sequential run would. Unlike
    /// the sequential engine, the still-pending messages are discarded
    /// rather than left queued.
    ///
    /// # Panics
    ///
    /// Panics if messages are already in flight, or (like the sequential
    /// engine) if a handler violates the knowledge constraint.
    pub fn run_sharded(&mut self, shards: usize, max_steps: u64) -> Result<u64, LivelockError> {
        self.run_sharded_impl(shards, max_steps, None)
    }

    /// Like [`run_sharded`](Runner::run_sharded), but also returns the
    /// [`Schedule`] of the equivalent sequential execution — byte-identical
    /// to what a `RecordingScheduler`-wrapped FIFO run records (the merge
    /// appends one [`Choice`] per event in global order).
    pub fn run_sharded_recorded(
        &mut self,
        shards: usize,
        max_steps: u64,
    ) -> (Result<u64, LivelockError>, Schedule) {
        let mut choices = Vec::new();
        let result = self.run_sharded_impl(shards, max_steps, Some(&mut choices));
        (result, Schedule::new(choices))
    }

    fn run_sharded_impl(
        &mut self,
        shards: usize,
        max_steps: u64,
        mut record: Option<&mut Vec<Choice>>,
    ) -> Result<u64, LivelockError> {
        assert!(
            self.links_empty(),
            "run_sharded needs a quiescent network (no messages in flight)"
        );
        let n = self.len();
        if n == 0 {
            return Ok(0);
        }
        let shards = shards.clamp(1, n);
        let chunk = n.div_ceil(shards);

        // Check the per-node state out into per-shard owners.
        let mut nodes = std::mem::take(&mut self.nodes);
        let mut knowledge = std::mem::take(&mut self.table.knowledge);
        let mut shard_states: Vec<Shard<P>> = Vec::with_capacity(shards);
        for s in 0..shards {
            let base = s * chunk;
            let take = chunk.min(nodes.len());
            let rest_nodes = nodes.split_off(take);
            let rest_knowledge = knowledge.split_off(take);
            let awake = (base..base + take).map(|i| self.table.awake(i)).collect();
            shard_states.push(Shard {
                base,
                network: n,
                nodes,
                knowledge,
                awake,
                outbox: Vec::new(),
                staged: Vec::new(),
                order: Vec::new(),
            });
            nodes = rest_nodes;
            knowledge = rest_knowledge;
        }
        debug_assert!(nodes.is_empty() && knowledge.is_empty());

        // Round 0: wake every sleeping node, in id order.
        let mut round: Vec<Ev<P::Message>> = (0..n)
            .map(NodeId::new)
            .filter(|id| !self.table.awake(id.index()))
            .map(Ev::Wake)
            .collect();
        for ev in &round {
            self.table.set_wake_enqueued(ev.target().index(), false);
        }

        let mut executed: u64 = 0;
        // Dense in-flight counters indexed by interned link slot — the
        // merge's analogue of the sequential engine's queue lengths,
        // without a hash probe per send and delivery.
        let mut pending: Vec<u32> = Vec::new();
        let mut metas: Vec<EvMeta> = Vec::new();
        let mut next_round: Vec<Ev<P::Message>> = Vec::new();

        let result = if shards == 1 {
            // Thread-free single-shard path: same rounds, same merge, every
            // per-round buffer reused. This is the engine the sequential
            // throughput bench drives, so per-round overhead must stay at a
            // few buffer clears even when rounds carry one event each.
            let mut shard = shard_states.pop().expect("exactly one shard");
            let mut outs: Vec<EvOut> = Vec::new();
            let mut emits: Vec<Option<Emit<P::Message>>> = Vec::new();
            let outcome = loop {
                if round.is_empty() {
                    break Ok(executed);
                }
                let remaining = usize::try_from(max_steps - executed).unwrap_or(usize::MAX);
                if remaining == 0 {
                    break Err(LivelockError {
                        steps: executed,
                        pending: round.len(),
                    });
                }
                // Budget-capped prefix of this round; the rest stays
                // pending, exactly like the sequential loop's cutoff.
                let leftover = if round.len() > remaining {
                    round.split_off(remaining)
                } else {
                    Vec::new()
                };
                if round.len() <= FUSE_MAX {
                    self.fused_round(
                        &mut shard,
                        &mut round,
                        &mut emits,
                        &mut pending,
                        &mut next_round,
                        &mut record,
                        &mut executed,
                    );
                } else {
                    metas.clear();
                    metas.extend(round.iter().map(EvMeta::of));
                    shard.exec_round(&mut round, &mut outs, &mut emits);
                    let mut slices = [Some(RoundSlice {
                        outs: &outs[..],
                        emits: &mut emits[..],
                        cursor: 0,
                    })];
                    self.merge_round(
                        &mut metas,
                        chunk,
                        &mut slices,
                        &mut pending,
                        &mut next_round,
                        &mut record,
                        &mut executed,
                    );
                }
                // `round` was drained by exec_round; swap in the next
                // round's events so both buffers recycle.
                if leftover.is_empty() {
                    std::mem::swap(&mut round, &mut next_round);
                } else {
                    round = leftover;
                    round.append(&mut next_round);
                }
            };
            for (j, awake) in shard.awake.iter().enumerate() {
                self.table.set_awake(shard.base + j, *awake);
            }
            self.nodes = shard.nodes;
            self.table.knowledge = shard.knowledge;
            outcome
        } else {
            std::thread::scope(|scope| {
                let mut to_workers = Vec::with_capacity(shards);
                let mut from_workers = Vec::with_capacity(shards);
                let mut handles = Vec::with_capacity(shards);
                for shard in shard_states.drain(..) {
                    let (tx_ev, rx_ev) = mpsc::channel::<Vec<Ev<P::Message>>>();
                    let (tx_out, rx_out) = mpsc::channel();
                    to_workers.push(tx_ev);
                    from_workers.push(rx_out);
                    handles.push(scope.spawn(move || {
                        let mut shard = shard;
                        while let Ok(mut events) = rx_ev.recv() {
                            let mut outs = Vec::new();
                            let mut emits = Vec::new();
                            shard.exec_round(&mut events, &mut outs, &mut emits);
                            if tx_out.send((outs, emits)).is_err() {
                                break;
                            }
                        }
                        shard
                    }));
                }

                let outcome = loop {
                    if round.is_empty() {
                        break Ok(executed);
                    }
                    let remaining = usize::try_from(max_steps - executed).unwrap_or(usize::MAX);
                    if remaining == 0 {
                        break Err(LivelockError {
                            steps: executed,
                            pending: round.len(),
                        });
                    }
                    let leftover = if round.len() > remaining {
                        round.split_off(remaining)
                    } else {
                        Vec::new()
                    };

                    // Partition the prefix by destination shard (order
                    // within a shard is preserved, so per-link FIFO holds).
                    metas.clear();
                    let mut per_shard: Vec<Vec<Ev<P::Message>>> =
                        (0..shards).map(|_| Vec::new()).collect();
                    for ev in round.drain(..) {
                        metas.push(EvMeta::of(&ev));
                        per_shard[ev.target().index() / chunk].push(ev);
                    }
                    // Only shards with events this round get woken; idle
                    // shards cost no channel round-trip.
                    let mut outs: Vec<Option<RoundOutput<P::Message>>> =
                        (0..shards).map(|_| None).collect();
                    let mut got_all = true;
                    for (s, events) in per_shard.into_iter().enumerate() {
                        if events.is_empty() {
                            continue;
                        }
                        to_workers[s].send(events).expect("shard worker alive");
                        outs[s] = Some(Default::default());
                    }
                    for (s, out) in outs.iter_mut().enumerate() {
                        if out.is_none() {
                            continue;
                        }
                        match from_workers[s].recv() {
                            Ok(o) => *out = Some(o),
                            Err(_) => {
                                got_all = false;
                                break;
                            }
                        }
                    }
                    if !got_all {
                        // A worker died mid-round (protocol panic); surface
                        // it below by joining.
                        break Err(LivelockError {
                            steps: executed,
                            pending: metas.len(),
                        });
                    }
                    let mut slices: Vec<Option<RoundSlice<'_, P::Message>>> = outs
                        .iter_mut()
                        .map(|o| {
                            o.as_mut().map(|(outs, emits)| RoundSlice {
                                outs: &outs[..],
                                emits: &mut emits[..],
                                cursor: 0,
                            })
                        })
                        .collect();
                    self.merge_round(
                        &mut metas,
                        chunk,
                        &mut slices,
                        &mut pending,
                        &mut next_round,
                        &mut record,
                        &mut executed,
                    );

                    // Budget leftovers were enqueued before this round's
                    // emissions, so they come first in the next queue.
                    if leftover.is_empty() {
                        std::mem::swap(&mut round, &mut next_round);
                        next_round.clear();
                    } else {
                        round = leftover;
                        round.append(&mut next_round);
                    }
                };

                // Check the per-node state back in (joining surfaces any
                // worker panic with its original message).
                drop(to_workers);
                for handle in handles {
                    match handle.join() {
                        Ok(shard) => {
                            for (j, awake) in shard.awake.iter().enumerate() {
                                self.table.set_awake(shard.base + j, *awake);
                            }
                            self.nodes.extend(shard.nodes);
                            self.table.knowledge.extend(shard.knowledge);
                        }
                        Err(panic) => std::panic::resume_unwind(panic),
                    }
                }
                outcome
            })
        };
        debug_assert_eq!(self.nodes.len(), n);
        result
    }

    /// Deterministic merge of one round: walks the round in its original
    /// order, replaying each event's bookkeeping (steps, seq numbers,
    /// metrics, traces, recorded choices) exactly as the sequential engine
    /// interleaves it, and queues the emissions as the next round.
    #[allow(clippy::too_many_arguments)]
    /// Executes and merges one (budget-capped) round of at most
    /// [`FUSE_MAX`] events in a single pass, event by event in round
    /// order — the single-shard fast path for the causal-chain tail,
    /// where rounds carry only a handful of events and the
    /// stage/sort/merge machinery of [`Shard::exec_round`] +
    /// [`Runner::merge_round`] is pure overhead.
    ///
    /// Byte-identity: executing in round order is one valid destination
    /// order (same-destination events keep their relative order, and
    /// handlers on different destinations commute), and every merge-side
    /// effect below — recorded choices, metrics, trace entries, `seq`
    /// numbers, pending-counter updates and `next_round` pushes — happens
    /// in exactly the sequence [`Runner::merge_round`] would produce for
    /// the same round. The two paths must stay in lockstep; the pinned
    /// sharded-vs-sequential suites diff them at every shard count.
    #[allow(clippy::too_many_arguments)]
    fn fused_round(
        &mut self,
        shard: &mut Shard<P>,
        round: &mut Vec<Ev<P::Message>>,
        emits: &mut Vec<Option<Emit<P::Message>>>,
        pending: &mut Vec<u32>,
        next_round: &mut Vec<Ev<P::Message>>,
        record: &mut Option<&mut Vec<Choice>>,
        executed: &mut u64,
    ) {
        for ev in round.drain(..) {
            *executed += 1;
            self.steps += 1;
            emits.clear();
            let (src_node, next_depth) = match ev {
                Ev::Wake(node) => {
                    if let Some(choices) = record.as_deref_mut() {
                        choices.push(Choice::Wake(node));
                    }
                    let j = node.index() - shard.base;
                    if !shard.awake[j] {
                        shard.awake[j] = true;
                        shard.dispatch(node, emits, |n, ctx| n.on_wake(ctx));
                        self.metrics.record_wakeup();
                        if let Some(trace) = &mut self.trace {
                            trace.push(TraceEvent::Wake {
                                node,
                                step: self.steps,
                            });
                        }
                    }
                    (node, 1)
                }
                Ev::Deliver {
                    src,
                    dst,
                    msg,
                    depth,
                    slot,
                } => {
                    if let Some(choices) = record.as_deref_mut() {
                        choices.push(Choice::Deliver { src, dst });
                    }
                    debug_assert_eq!(self.existing_link_slot(src, dst), Some(slot));
                    pending[slot as usize] -= 1;
                    self.payload_inflight -= msg.payload_heap_bytes() as u64;
                    self.metrics.record_delivery(depth);
                    if let Some(trace) = &mut self.trace {
                        trace.push(TraceEvent::Deliver {
                            src,
                            dst,
                            kind: msg.kind(),
                            step: self.steps,
                        });
                    }
                    let j = dst.index() - shard.base;
                    let network = shard.network;
                    let know = &mut shard.knowledge[j];
                    know.insert(src.index());
                    msg.for_each_carried_run(&mut |start, end| {
                        debug_assert!((end as usize) <= network);
                        know.insert_run(start, end);
                    });
                    let woke = !shard.awake[j];
                    if woke {
                        shard.awake[j] = true;
                        shard.dispatch(dst, emits, |n, ctx| n.on_wake(ctx));
                    }
                    shard.dispatch(dst, emits, |n, ctx| n.on_message(src, msg, ctx));
                    if woke {
                        self.metrics.record_wakeup();
                        if let Some(trace) = &mut self.trace {
                            trace.push(TraceEvent::Wake {
                                node: dst,
                                step: self.steps,
                            });
                        }
                    }
                    (dst, depth + 1)
                }
                Ev::Tick(node) => {
                    if let Some(choices) = record.as_deref_mut() {
                        choices.push(Choice::Tick(node));
                    }
                    self.metrics.record_tick();
                    if let Some(trace) = &mut self.trace {
                        trace.push(TraceEvent::Tick {
                            node,
                            step: self.steps,
                        });
                    }
                    shard.dispatch(node, emits, |n, ctx| n.on_tick(ctx));
                    (node, 1)
                }
            };
            for emit in emits.drain(..) {
                match emit.expect("one entry per emission") {
                    Emit::Send {
                        dst,
                        msg,
                        ids,
                        aux_bits,
                        kind,
                    } => {
                        self.metrics.record(kind, ids, aux_bits);
                        if let Some(trace) = &mut self.trace {
                            trace.push(TraceEvent::Send {
                                src: src_node,
                                dst,
                                kind,
                                seq: self.seq,
                                step: self.steps,
                            });
                        }
                        self.seq += 1;
                        self.note_payload_enqueued(msg.payload_heap_bytes());
                        let slot = self.intern_link_slot(src_node, dst);
                        if slot as usize >= pending.len() {
                            pending.resize(slot as usize + 1, 0);
                        }
                        pending[slot as usize] += 1;
                        self.metrics.observe_link_queue(pending[slot as usize] as usize);
                        next_round.push(Ev::Deliver {
                            src: src_node,
                            dst,
                            msg,
                            depth: next_depth,
                            slot,
                        });
                    }
                    Emit::Tick => next_round.push(Ev::Tick(src_node)),
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn merge_round(
        &mut self,
        metas: &mut Vec<EvMeta>,
        chunk: usize,
        slices: &mut [Option<RoundSlice<'_, P::Message>>],
        pending: &mut Vec<u32>,
        next_round: &mut Vec<Ev<P::Message>>,
        record: &mut Option<&mut Vec<Choice>>,
        executed: &mut u64,
    ) {
        for meta in metas.drain(..) {
            *executed += 1;
            self.steps += 1;
            let (shard_of, next_depth) = match meta {
                EvMeta::Wake(node) | EvMeta::Tick(node) => (node.index() / chunk, 1),
                EvMeta::Deliver { dst, depth, .. } => (dst.index() / chunk, depth + 1),
            };
            let slice = slices[shard_of]
                .as_mut()
                .expect("round output from every shard with events");
            let out = slice.outs[slice.cursor];
            slice.cursor += 1;
            let src_node = match meta {
                EvMeta::Wake(node) => {
                    if let Some(choices) = record.as_deref_mut() {
                        choices.push(Choice::Wake(node));
                    }
                    if out.woke {
                        self.metrics.record_wakeup();
                        if let Some(trace) = &mut self.trace {
                            trace.push(TraceEvent::Wake {
                                node,
                                step: self.steps,
                            });
                        }
                    }
                    node
                }
                EvMeta::Deliver {
                    src,
                    dst,
                    kind,
                    depth,
                    payload_bytes,
                    slot,
                } => {
                    if let Some(choices) = record.as_deref_mut() {
                        choices.push(Choice::Deliver { src, dst });
                    }
                    debug_assert_eq!(self.existing_link_slot(src, dst), Some(slot));
                    pending[slot as usize] -= 1;
                    self.payload_inflight -= payload_bytes as u64;
                    self.metrics.record_delivery(depth);
                    if let Some(trace) = &mut self.trace {
                        trace.push(TraceEvent::Deliver {
                            src,
                            dst,
                            kind,
                            step: self.steps,
                        });
                    }
                    if out.woke {
                        self.metrics.record_wakeup();
                        if let Some(trace) = &mut self.trace {
                            trace.push(TraceEvent::Wake {
                                node: dst,
                                step: self.steps,
                            });
                        }
                    }
                    dst
                }
                EvMeta::Tick(node) => {
                    if let Some(choices) = record.as_deref_mut() {
                        choices.push(Choice::Tick(node));
                    }
                    self.metrics.record_tick();
                    if let Some(trace) = &mut self.trace {
                        trace.push(TraceEvent::Tick {
                            node,
                            step: self.steps,
                        });
                    }
                    node
                }
            };
            for e in 0..out.emit_count {
                let emit = slice.emits[(out.emit_start + e) as usize]
                    .take()
                    .expect("one entry per emission");
                match emit {
                    Emit::Send {
                        dst,
                        msg,
                        ids,
                        aux_bits,
                        kind,
                    } => {
                        self.metrics.record(kind, ids, aux_bits);
                        if let Some(trace) = &mut self.trace {
                            trace.push(TraceEvent::Send {
                                src: src_node,
                                dst,
                                kind,
                                seq: self.seq,
                                step: self.steps,
                            });
                        }
                        self.seq += 1;
                        self.note_payload_enqueued(msg.payload_heap_bytes());
                        let slot = self.intern_link_slot(src_node, dst);
                        if slot as usize >= pending.len() {
                            pending.resize(slot as usize + 1, 0);
                        }
                        pending[slot as usize] += 1;
                        self.metrics.observe_link_queue(pending[slot as usize] as usize);
                        next_round.push(Ev::Deliver {
                            src: src_node,
                            dst,
                            msg,
                            depth: next_depth,
                            slot,
                        });
                    }
                    Emit::Tick => next_round.push(Ev::Tick(src_node)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FifoScheduler, Runner};

    /// Flood protocol (as in the runner tests): forward a token to all
    /// initially-known peers on wake.
    #[derive(Debug)]
    struct Flood {
        peers: Vec<NodeId>,
        seen: bool,
    }

    #[derive(Clone, Debug)]
    struct Tok;

    impl Envelope for Tok {
        fn kind(&self) -> &'static str {
            "tok"
        }
        fn for_each_carried_id(&self, _f: &mut dyn FnMut(NodeId)) {}
        fn aux_bits(&self) -> u64 {
            0
        }
    }

    impl Protocol for Flood {
        type Message = Tok;
        fn on_wake(&mut self, ctx: &mut Context<'_, Tok>) {
            if !self.seen {
                self.seen = true;
                for &p in &self.peers {
                    ctx.send(p, Tok);
                }
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: Tok, _ctx: &mut Context<'_, Tok>) {}
    }

    fn ring(n: usize) -> Runner<Flood> {
        let nodes = (0..n)
            .map(|i| Flood {
                peers: vec![NodeId::new((i + 1) % n)],
                seen: false,
            })
            .collect();
        let knowledge = (0..n).map(|i| vec![NodeId::new((i + 1) % n)]).collect();
        Runner::new(nodes, knowledge)
    }

    fn sequential(n: usize, max_steps: u64) -> (Result<u64, LivelockError>, Runner<Flood>) {
        let mut r = ring(n);
        r.enable_trace();
        let mut s = FifoScheduler::new();
        r.enqueue_wake_all(&mut s);
        let result = r.run(&mut s, max_steps);
        (result, r)
    }

    #[test]
    fn sharded_matches_sequential_at_any_shard_count() {
        let (seq_result, seq) = sequential(25, 10_000);
        seq_result.unwrap();
        for shards in [1, 2, 3, 4, 8, 25, 64] {
            let mut r = ring(25);
            r.enable_trace();
            let steps = r.run_sharded(shards, 10_000).unwrap();
            assert_eq!(steps, seq.steps_executed(), "shards={shards}");
            assert_eq!(r.metrics(), seq.metrics(), "shards={shards}");
            assert_eq!(
                r.trace().unwrap().events(),
                seq.trace().unwrap().events(),
                "shards={shards}"
            );
            for id in r.ids().collect::<Vec<_>>() {
                assert_eq!(r.is_awake(id), seq.is_awake(id));
                for other in r.ids().collect::<Vec<_>>() {
                    assert_eq!(r.knows(id, other), seq.knows(id, other));
                }
            }
        }
    }

    #[test]
    fn sharded_livelock_matches_sequential_cutoff() {
        let budget = 13;
        let (seq_result, seq) = sequential(25, budget);
        let seq_err = seq_result.unwrap_err();
        for shards in [1, 3, 8] {
            let mut r = ring(25);
            r.enable_trace();
            let err = r.run_sharded(shards, budget).unwrap_err();
            assert_eq!(err, seq_err, "shards={shards}");
            assert_eq!(r.metrics(), seq.metrics(), "shards={shards}");
            assert_eq!(r.trace().unwrap().events(), seq.trace().unwrap().events());
        }
    }

    #[test]
    fn sharded_recording_matches_sequential_recording() {
        let mut seq = ring(9);
        let mut sched = crate::RecordingScheduler::new(FifoScheduler::new());
        seq.enqueue_wake_all(&mut sched);
        seq.run(&mut sched, 10_000).unwrap();
        let want = sched.into_schedule();

        let mut r = ring(9);
        let (result, got) = r.run_sharded_recorded(4, 10_000);
        result.unwrap();
        assert_eq!(got.to_text(), want.to_text());
    }

    #[test]
    fn empty_network_is_trivially_quiescent() {
        let mut r: Runner<Flood> = Runner::new(Vec::new(), Vec::new());
        assert_eq!(r.run_sharded(4, 100), Ok(0));
    }

    #[test]
    #[should_panic(expected = "knowledge violation")]
    fn knowledge_violation_panics_through_the_shard_boundary() {
        struct Bad;
        impl Protocol for Bad {
            type Message = Tok;
            fn on_wake(&mut self, ctx: &mut Context<'_, Tok>) {
                ctx.send(NodeId::new(1), Tok);
            }
            fn on_message(&mut self, _: NodeId, _: Tok, _: &mut Context<'_, Tok>) {}
        }
        let mut r = Runner::new(vec![Bad, Bad], vec![vec![], vec![]]);
        let _ = r.run_sharded(2, 100);
    }
}
