//! Recycling arena for message payload buffers.
//!
//! Protocol messages that carry id lists (query replies, cluster handover
//! payloads) used to allocate a fresh `Vec` per send and drop it at the
//! receiver — at n = 10⁶ that is millions of short-lived heap round trips
//! on the hot path. A [`MessageArena`] keeps a small pool of emptied
//! buffers per node: senders [`alloc`](MessageArena::alloc) from it,
//! receivers hand consumed payloads back via
//! [`recycle`](MessageArena::recycle). Pooling is per node (no cross-thread
//! traffic), so a node's arena migrates with it under the sharded engine.

/// A bounded pool of reusable `Vec<T>` payload buffers.
///
/// # Example
///
/// ```
/// use ard_netsim::MessageArena;
///
/// let mut arena: MessageArena<u32> = MessageArena::new();
/// let mut buf = arena.alloc();
/// buf.extend([1, 2, 3]);
/// let capacity = buf.capacity();
/// arena.recycle(buf);
/// let reused = arena.alloc();
/// assert!(reused.is_empty());
/// assert_eq!(reused.capacity(), capacity, "allocation was reused");
/// ```
#[derive(Debug)]
pub struct MessageArena<T> {
    pool: Vec<Vec<T>>,
    cap: usize,
}

/// Default bound on pooled buffers per arena.
///
/// A node rarely has more than a handful of payload-carrying messages in
/// flight at once; a small cap keeps worst-case retained memory bounded.
const DEFAULT_POOL_CAP: usize = 8;

impl<T> MessageArena<T> {
    /// An empty arena holding at most [`DEFAULT_POOL_CAP`] spare buffers.
    pub fn new() -> Self {
        MessageArena {
            pool: Vec::new(),
            cap: DEFAULT_POOL_CAP,
        }
    }

    /// An empty arena holding at most `cap` spare buffers.
    pub fn with_pool_cap(cap: usize) -> Self {
        MessageArena {
            pool: Vec::new(),
            cap,
        }
    }

    /// Hands out an empty buffer, reusing a recycled one when available.
    pub fn alloc(&mut self) -> Vec<T> {
        self.pool.pop().unwrap_or_default()
    }

    /// Returns a consumed buffer to the pool (cleared; dropped if the pool
    /// is full).
    pub fn recycle(&mut self, mut buf: Vec<T>) {
        if self.pool.len() < self.cap && buf.capacity() > 0 {
            buf.clear();
            self.pool.push(buf);
        }
    }

    /// Number of spare buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

impl<T> Default for MessageArena<T> {
    fn default() -> Self {
        MessageArena::new()
    }
}

/// Cloning an arena clones no spare buffers: the pool is a cache, not
/// state, so a forked node starts with an empty one.
impl<T> Clone for MessageArena<T> {
    fn clone(&self) -> Self {
        MessageArena {
            pool: Vec::new(),
            cap: self.cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_bounded_and_buffers_cleared() {
        let mut arena: MessageArena<u8> = MessageArena::with_pool_cap(2);
        arena.recycle(Vec::with_capacity(4));
        arena.recycle(Vec::with_capacity(4));
        arena.recycle(Vec::with_capacity(4)); // over cap: dropped
        assert_eq!(arena.pooled(), 2);
        let buf = arena.alloc();
        assert!(buf.is_empty());
        assert_eq!(arena.pooled(), 1);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let mut arena: MessageArena<u8> = MessageArena::new();
        arena.recycle(Vec::new());
        assert_eq!(arena.pooled(), 0);
    }

    #[test]
    fn clone_starts_empty() {
        let mut arena: MessageArena<u8> = MessageArena::new();
        arena.recycle(Vec::with_capacity(1));
        let cloned = arena.clone();
        assert_eq!(cloned.pooled(), 0);
    }
}
