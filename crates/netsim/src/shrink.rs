//! Delta-debugging minimization of failing schedules.
//!
//! A schedule found by the [explorer](crate::explore) typically interleaves
//! the handful of events that race with dozens that are irrelevant. This
//! module applies ddmin-style chunk removal: repeatedly delete spans of
//! choices, keep any candidate that still fails, and halve the chunk size
//! until single-choice removals stop helping — yielding a **1-minimal**
//! failing schedule (removing any one remaining choice makes the failure
//! disappear).
//!
//! Candidates are executed under a *lenient* [`ReplayScheduler`] wrapped in
//! a [`RecordingScheduler`]: deleting a choice can disable later recorded
//! choices (a message can't be delivered if the send that produces it was
//! skipped), and lenient replay simply drops those. The re-recorded
//! sequence of choices that *actually executed* becomes the new baseline,
//! so the minimized schedule is always strict-replayable — what you check
//! into a corpus replays byte-for-byte.
//!
//! [`shrink_jobs`] evaluates each round's candidate removals speculatively
//! on worker threads but consumes the outcomes in the exact order the
//! sequential loop would, accepting the same candidate it would accept —
//! the result (schedule, reason, even the `attempts` counter) is
//! byte-identical at any job count.

use crate::par;
use crate::record::{RecordingScheduler, ReplayScheduler, Schedule};
use crate::scheduler::{Choice, Scheduler};

/// Outcome of a [`shrink`] call.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimized schedule; still fails, strict-replayable.
    pub schedule: Schedule,
    /// The failure message the minimized schedule produces.
    pub reason: String,
    /// Choice count of the input schedule.
    pub original_len: usize,
    /// Number of candidate schedules executed during minimization (counting
    /// only candidates the sequential order consumed, so the number is
    /// identical at any job count).
    pub attempts: u64,
}

impl ShrinkResult {
    /// Fraction of the original choices removed, in `[0, 1]`.
    pub fn reduction(&self) -> f64 {
        if self.original_len == 0 {
            return 0.0;
        }
        1.0 - self.schedule.len() as f64 / self.original_len as f64
    }
}

/// Minimizes a failing schedule to a 1-minimal subsequence that still fails.
///
/// `factory` is the same system factory the explorer takes: each call
/// builds a fresh `run_one` closure that constructs the system from
/// scratch, drives it with the given scheduler and returns `Err(reason)`
/// on violation. The input `schedule` must fail under it.
///
/// The returned schedule keeps the input's metadata, with `shrunk-from`
/// recording the original length. Runs in at most
/// `O(len²)` candidate executions (ddmin's worst case); each candidate run
/// is capped by the schedule length, so the whole pass is cheap at the
/// sizes the explorer emits.
///
/// # Panics
///
/// Panics if `schedule` does not fail under `run_one` — a shrinker fed a
/// passing schedule indicates a non-deterministic `run_one`.
pub fn shrink<F, R>(schedule: &Schedule, factory: F) -> ShrinkResult
where
    F: Fn() -> R + Sync,
    R: FnMut(&mut dyn Scheduler) -> Result<(), String>,
{
    shrink_jobs(schedule, 1, factory)
}

/// [`shrink`] with `jobs` worker threads evaluating each ddmin round's
/// candidate removals speculatively. The accepted candidates, the final
/// schedule and every counter are byte-identical to `jobs = 1`.
///
/// # Panics
///
/// Panics if `schedule` does not fail under `run_one` (see [`shrink`]).
pub fn shrink_jobs<F, R>(schedule: &Schedule, jobs: usize, factory: F) -> ShrinkResult
where
    F: Fn() -> R + Sync,
    R: FnMut(&mut dyn Scheduler) -> Result<(), String>,
{
    let jobs = jobs.max(1);
    // Runs a candidate leniently; on failure returns the re-recorded
    // (normalized) sequence, the failure reason and the terminal-state
    // digest of the candidate run (when the system reports one).
    let try_choices = |choices: &[Choice]| -> Option<(Vec<Choice>, String, Option<u64>)> {
        let mut run_one = factory();
        let mut sched = RecordingScheduler::new(ReplayScheduler::lenient(choices));
        let result = run_one(&mut sched);
        let reason = result.err()?;
        Some((sched.recorded().to_vec(), reason, sched.terminal_digest()))
    };

    let mut attempts: u64 = 1; // the initial validation below
    let (mut best, mut reason, mut digest) = try_choices(schedule.choices())
        .expect("shrink: input schedule does not fail under run_one");
    let original_len = schedule.len();

    let mut chunk = best.len().div_ceil(2).max(1);
    loop {
        let mut shrunk_this_pass = false;
        let mut start = 0;
        while start < best.len() {
            // Speculative batch: the candidates the sequential loop would
            // try next, in order — removals at start, start + chunk, … of
            // the *current* best. Outcomes are consumed in that order; an
            // acceptance invalidates the rest of the batch (they were cut
            // from a stale baseline), so they are discarded unconsumed and
            // the next batch is cut from the new best at the same start.
            let batch_cap = if jobs <= 1 { 1 } else { jobs * 2 };
            let mut starts = Vec::with_capacity(batch_cap);
            let mut s = start;
            while s < best.len() && starts.len() < batch_cap {
                starts.push(s);
                s += chunk;
            }
            let candidates: Vec<Vec<Choice>> = starts
                .iter()
                .map(|&s| {
                    let end = (s + chunk).min(best.len());
                    let mut candidate = Vec::with_capacity(best.len() - (end - s));
                    candidate.extend_from_slice(&best[..s]);
                    candidate.extend_from_slice(&best[end..]);
                    candidate
                })
                .collect();
            let outcomes = par::parallel_map(jobs, candidates, |c| try_choices(&c));
            for (s, outcome) in starts.into_iter().zip(outcomes) {
                attempts += 1;
                match outcome {
                    Some((normalized, r, d)) if normalized.len() < best.len() => {
                        best = normalized;
                        reason = r;
                        digest = d;
                        shrunk_this_pass = true;
                        // Re-test the same position: the slice shifted left.
                        start = s;
                        break;
                    }
                    _ => start = (s + chunk).min(best.len()),
                }
            }
        }
        if chunk == 1 {
            if !shrunk_this_pass {
                break;
            }
            // Keep doing single-choice passes until a full pass removes
            // nothing — that is the 1-minimality fixpoint.
        } else {
            chunk = (chunk / 2).max(1);
        }
    }

    let mut out = Schedule::new(best);
    for (k, v) in schedule.meta_iter() {
        out.set_meta(k, v);
    }
    out.set_meta("shrunk-from", original_len.to_string());
    // A `terminal-digest` on the input (reduction-mode explorations stamp
    // one) describes the *unminimized* run; refresh it to the minimized
    // run's digest so the corpus entry stays truthful. Schedules without
    // the meta never gain one here — default-mode outputs stay
    // byte-identical.
    if schedule.meta("terminal-digest").is_some() {
        if let Some(digest) = digest {
            out.set_meta("terminal-digest", format!("{digest:016x}"));
        }
    }
    ShrinkResult {
        schedule: out,
        reason,
        original_len,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, fixtures, ExploreConfig};
    use crate::record::ReplayScheduler;

    fn find_failure(clients: usize) -> Schedule {
        let report = explore(&ExploreConfig::default(), move || {
            move |sched: &mut dyn Scheduler| fixtures::run_racy(clients, sched)
        });
        report.failure.expect("explorer should find the race").schedule
    }

    #[test]
    fn shrinks_the_planted_race_by_at_least_half() {
        let schedule = find_failure(4);
        let result = shrink(&schedule, || {
            |sched: &mut dyn Scheduler| fixtures::run_racy(4, sched)
        });
        assert!(
            result.reduction() >= 0.5,
            "only shrank {} → {} choices",
            result.original_len,
            result.schedule.len()
        );
        assert!(result.reason.contains("highest-id client"));
        // The race needs at least the highest client's wake and delivery.
        assert!(result.schedule.len() >= 2);
    }

    #[test]
    fn minimized_schedule_strict_replays_to_the_same_failure() {
        let schedule = find_failure(3);
        let result = shrink(&schedule, || {
            |sched: &mut dyn Scheduler| fixtures::run_racy(3, sched)
        });
        let mut replay = ReplayScheduler::strict(&result.schedule);
        let err = fixtures::run_racy(3, &mut replay).unwrap_err();
        assert_eq!(err, result.reason);
        // Minimization truncates the run: the cut events stay pending.
        assert!(replay.leftover() > 0);
    }

    #[test]
    fn minimized_schedule_is_one_minimal() {
        let schedule = find_failure(3);
        let result = shrink(&schedule, || {
            |sched: &mut dyn Scheduler| fixtures::run_racy(3, sched)
        });
        let best = result.schedule.choices();
        for skip in 0..best.len() {
            let mut candidate: Vec<Choice> = best.to_vec();
            candidate.remove(skip);
            let mut sched = ReplayScheduler::lenient(&candidate);
            assert!(
                fixtures::run_racy(3, &mut sched).is_ok(),
                "removing choice {skip} should break the failure"
            );
        }
    }

    #[test]
    fn shrink_records_provenance_meta() {
        let mut schedule = find_failure(2);
        schedule.set_meta("case", "demo");
        let result = shrink(&schedule, || {
            |sched: &mut dyn Scheduler| fixtures::run_racy(2, sched)
        });
        assert_eq!(result.schedule.meta("case"), Some("demo"));
        assert_eq!(
            result.schedule.meta("shrunk-from"),
            Some(result.original_len.to_string().as_str())
        );
        assert!(result.attempts > 0);
    }

    #[test]
    fn parallel_shrink_is_byte_identical_to_sequential() {
        let schedule = find_failure(4);
        let sequential = shrink_jobs(&schedule, 1, || {
            |sched: &mut dyn Scheduler| fixtures::run_racy(4, sched)
        });
        for jobs in [2, 4, 8] {
            let parallel = shrink_jobs(&schedule, jobs, || {
                |sched: &mut dyn Scheduler| fixtures::run_racy(4, sched)
            });
            assert_eq!(parallel.schedule, sequential.schedule, "jobs={jobs}");
            assert_eq!(parallel.reason, sequential.reason, "jobs={jobs}");
            assert_eq!(parallel.attempts, sequential.attempts, "jobs={jobs}");
        }
    }

    #[test]
    fn shrink_refreshes_the_terminal_digest_of_reduced_finds() {
        use crate::explore::{explore_fork, ReduceMode};
        let config = ExploreConfig {
            reduce: ReduceMode::Sleep,
            ..ExploreConfig::default()
        };
        let report = explore_fork(&config, &fixtures::RacySystem::new(3));
        let schedule = report.failure.expect("reduced explorer finds the race").schedule;
        assert!(schedule.meta("terminal-digest").is_some());
        let result = shrink(&schedule, || {
            |sched: &mut dyn Scheduler| fixtures::run_racy(3, sched)
        });
        let stamped = result
            .schedule
            .meta("terminal-digest")
            .expect("shrink refreshes the digest")
            .to_string();
        // Strict replay of the minimized schedule lands in exactly the
        // state the stamp describes.
        let mut replay = RecordingScheduler::new(ReplayScheduler::strict(&result.schedule));
        let _ = fixtures::run_racy(3, &mut replay);
        let replayed = replay.terminal_digest().expect("replay reports a digest");
        assert_eq!(stamped, format!("{replayed:016x}"));
    }

    #[test]
    #[should_panic(expected = "input schedule does not fail")]
    fn passing_schedule_is_rejected() {
        // A FIFO-recorded run of the fixture passes; shrinking it is a bug.
        let mut sched = RecordingScheduler::new(crate::FifoScheduler::new());
        fixtures::run_racy(2, &mut sched).unwrap();
        let schedule = sched.into_schedule();
        shrink(&schedule, || {
            |s: &mut dyn Scheduler| fixtures::run_racy(2, s)
        });
    }
}
