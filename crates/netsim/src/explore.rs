//! Systematic interleaving exploration.
//!
//! The paper's guarantees are quantified over *every* asynchronous schedule
//! (finite but unbounded delays); a handful of seeded random runs samples
//! that space thinly. This module searches it deliberately, in the style of
//! deterministic-simulation testing: a caller-supplied closure builds and
//! runs the system under test against a scheduler the explorer controls and
//! reports whether the run satisfied its properties; the explorer tries
//! many schedules — a bounded **random walk** over seeds plus a
//! depth-bounded **branch-point DFS** that systematically enumerates which
//! pending event fires at each of the first few steps — and, on the first
//! failure, hands back the exact [`Schedule`] so the failure replays
//! forever (and can be [shrunk](crate::shrink)).
//!
//! # Example
//!
//! ```
//! use ard_netsim::explore::{explore, ExploreConfig};
//!
//! // A "system" whose property always holds: the explorer finds nothing.
//! let report = explore(&ExploreConfig::default(), |sched| {
//!     let mut r = ard_netsim::explore::fixtures::racy_network(2);
//!     r.enqueue_wake_all(sched);
//!     r.run(sched, 1_000).map_err(|e| e.to_string())?;
//!     Ok(()) // ignore the planted bug: pretend all is well
//! });
//! assert!(report.failure.is_none());
//! assert!(report.runs > 0);
//! ```

use std::collections::VecDeque;

use crate::fault::{FaultPlan, FaultScheduler};
use crate::record::{RecordingScheduler, Schedule};
use crate::scheduler::{Choice, RandomScheduler, Scheduler, SendToken};
use crate::NodeId;

/// Budget and shape of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Number of random-walk schedules to try first (seeds `seed`,
    /// `seed + 1`, …).
    pub random_walks: u64,
    /// Maximum number of DFS schedules to try after the walks.
    pub dfs_budget: u64,
    /// Branch-point depth: the DFS enumerates every combination of "which
    /// pending event fires" for the first `dfs_depth` steps (later steps
    /// fall back to oldest-first).
    pub dfs_depth: usize,
    /// Base seed for the random-walk phase.
    pub seed: u64,
    /// Optional fault plan: every candidate schedule runs under a
    /// [`FaultScheduler`] injecting these faults, so fault choices join
    /// the search space (the random-walk phase re-seeds the fault RNG per
    /// walk; the DFS phase keeps the plan's own seed).
    pub fault: Option<FaultPlan>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            random_walks: 32,
            dfs_budget: 32,
            dfs_depth: 4,
            seed: 0,
            fault: None,
        }
    }
}

/// Where a failing schedule came from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Origin {
    /// Found by the random-walk phase, under this seed.
    RandomWalk {
        /// The seed of the failing walk.
        seed: u64,
    },
    /// Found by the DFS phase, with this branch-decision prefix.
    Dfs {
        /// Pending-event index chosen at each of the first steps.
        prefix: Vec<usize>,
    },
}

impl std::fmt::Display for Origin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Origin::RandomWalk { seed } => write!(f, "random-walk seed={seed}"),
            Origin::Dfs { prefix } => {
                let p: Vec<String> = prefix.iter().map(usize::to_string).collect();
                write!(f, "dfs prefix=[{}]", p.join(","))
            }
        }
    }
}

/// A property violation found during exploration.
#[derive(Clone, Debug)]
pub struct ExploreFailure {
    /// The exact schedule that produced the violation (strict-replayable).
    pub schedule: Schedule,
    /// The property-check failure message.
    pub reason: String,
    /// 0-based index of the failing run within the exploration.
    pub run_index: u64,
    /// Which search phase found it.
    pub origin: Origin,
}

/// Summary of one exploration.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Total schedules executed.
    pub runs: u64,
    /// Schedules executed by the random-walk phase.
    pub random_walks: u64,
    /// Schedules executed by the DFS phase.
    pub dfs_runs: u64,
    /// The first violation found, if any (the exploration stops there).
    pub failure: Option<ExploreFailure>,
}

/// A deterministic scheduler steered by a branch-decision prefix.
///
/// Pending events are kept in arrival order. At step `i` the scheduler
/// fires the event at index `prefix[i]` (clamped to the pending count);
/// past the prefix it fires the oldest pending event, i.e. degenerates to
/// global FIFO. While running it records how many events were pending at
/// each of the first `depth` steps — the branching factors the DFS driver
/// uses to enumerate sibling schedules.
#[derive(Debug)]
pub struct DfsScheduler {
    pending: VecDeque<Choice>,
    prefix: Vec<usize>,
    depth: usize,
    step: usize,
    branch_counts: Vec<usize>,
}

impl DfsScheduler {
    /// A scheduler following `prefix`, recording branch counts for the
    /// first `depth` steps.
    pub fn new(prefix: Vec<usize>, depth: usize) -> Self {
        DfsScheduler {
            pending: VecDeque::new(),
            prefix,
            depth,
            step: 0,
            branch_counts: Vec::new(),
        }
    }

    /// Pending-event counts observed at each of the first `depth` steps.
    pub fn branch_counts(&self) -> &[usize] {
        &self.branch_counts
    }
}

impl Scheduler for DfsScheduler {
    fn note_wake(&mut self, node: NodeId) {
        self.pending.push_back(Choice::Wake(node));
    }
    fn note_send(&mut self, token: SendToken) {
        self.pending.push_back(Choice::Deliver {
            src: token.src,
            dst: token.dst,
        });
    }
    fn note_tick(&mut self, node: NodeId) {
        self.pending.push_back(Choice::Tick(node));
    }
    fn choose(&mut self) -> Option<Choice> {
        if self.pending.is_empty() {
            return None;
        }
        if self.step < self.depth {
            self.branch_counts.push(self.pending.len());
        }
        let want = self.prefix.get(self.step).copied().unwrap_or(0);
        let idx = want.min(self.pending.len() - 1);
        self.step += 1;
        self.pending.remove(idx)
    }
    fn pending(&self) -> usize {
        self.pending.len()
    }
}

/// Searches schedules for a property violation.
///
/// `run_one` is called once per candidate schedule. It must build the
/// system under test *from scratch*, drive it with the given scheduler and
/// return `Err(reason)` on any property violation (requirements, budgets,
/// livelock, a fixture invariant, …). Determinism of `run_one` given the
/// choice sequence is what makes the returned schedule replayable.
///
/// The search runs `config.random_walks` seeded random schedules, then up
/// to `config.dfs_budget` DFS schedules enumerating the first
/// `config.dfs_depth` branch points, and stops at the first failure. Every
/// run is recorded, so the failing schedule comes back verbatim with
/// `origin` and `reason` metadata attached.
pub fn explore<F>(config: &ExploreConfig, mut run_one: F) -> ExploreReport
where
    F: FnMut(&mut dyn Scheduler) -> Result<(), String>,
{
    let mut report = ExploreReport::default();

    // Phase 1: bounded random walk over seeds. The fault wrapper is
    // applied unconditionally (it is transparent without a plan); with a
    // plan, each walk also re-seeds the fault RNG so the walk phase
    // explores fault placements, not just interleavings.
    for i in 0..config.random_walks {
        let seed = config.seed.wrapping_add(i);
        let fault_seed = config.fault.as_ref().map_or(0, |p| p.seed ^ seed);
        let mut sched = RecordingScheduler::new(FaultScheduler::seeded(
            RandomScheduler::seeded(seed),
            config.fault.clone(),
            fault_seed,
        ));
        let result = run_one(&mut sched);
        report.random_walks += 1;
        report.runs += 1;
        if let Err(reason) = result {
            report.failure = Some(failure(
                sched.into_schedule(),
                reason,
                report.runs - 1,
                Origin::RandomWalk { seed },
            ));
            return report;
        }
    }

    // Phase 2: depth-bounded branch-point DFS. A run with prefix `p`
    // implicitly decides index 0 at every step past `p`, so the children
    // enqueued after running `p` are exactly the prefixes
    // `p + [0]*k + [i]` (`i ≥ 1`, within the observed branching factor):
    // every decision path through the first `dfs_depth` steps is generated
    // exactly once.
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    while report.dfs_runs < config.dfs_budget {
        let Some(prefix) = stack.pop() else { break };
        let mut sched = RecordingScheduler::new(FaultScheduler::new(
            DfsScheduler::new(prefix.clone(), config.dfs_depth),
            config.fault.clone(),
        ));
        let result = run_one(&mut sched);
        report.dfs_runs += 1;
        report.runs += 1;
        let (fault_sched, schedule) = sched.into_parts();
        if let Err(reason) = result {
            report.failure = Some(failure(
                schedule,
                reason,
                report.runs - 1,
                Origin::Dfs { prefix },
            ));
            return report;
        }
        let counts = fault_sched.inner().branch_counts();
        // Reverse push order so the stack pops children in lexicographic
        // (earliest-position, smallest-index) order.
        for j in (prefix.len()..counts.len()).rev() {
            for i in (1..counts[j]).rev() {
                let mut child = Vec::with_capacity(j + 1);
                child.extend_from_slice(&prefix);
                child.resize(j, 0);
                child.push(i);
                stack.push(child);
            }
        }
    }
    report
}

fn failure(mut schedule: Schedule, reason: String, run_index: u64, origin: Origin) -> ExploreFailure {
    schedule.set_meta("origin", origin.to_string());
    schedule.set_meta("reason", reason.replace('\n', " "));
    ExploreFailure {
        schedule,
        reason,
        run_index,
        origin,
    }
}

pub mod fixtures {
    //! Deliberately buggy protocols for exercising the explorer and
    //! shrinker — test fixtures, not part of the discovery reproduction.
    //!
    //! [`RacyNode`] plants a classic ordering bug: clients race their
    //! requests to a coordinator that implicitly assumes the lowest-id
    //! client's request always arrives first. Benign schedules (global
    //! FIFO over index-ordered wake-ups) never violate the assumption;
    //! an adversarial schedule that wakes the highest-id client early and
    //! rushes its message through does — which is exactly the kind of
    //! corner [`explore`](super::explore) exists to find and
    //! [`shrink`](crate::shrink) to minimize.

    use crate::envelope::Envelope;
    use crate::runner::{Protocol, Runner};
    use crate::scheduler::Scheduler;
    use crate::{Context, NodeId};

    /// The fixture's only message: a client's request for the lease.
    #[derive(Clone, Debug)]
    pub struct Request;

    impl Envelope for Request {
        fn kind(&self) -> &'static str {
            "request"
        }
        fn for_each_carried_id(&self, _f: &mut dyn FnMut(NodeId)) {}
        fn aux_bits(&self) -> u64 {
            0
        }
    }

    /// One node of the planted-bug network: node 0 is the coordinator,
    /// every other node a client that requests a lease on wake-up.
    ///
    /// The planted bug: the coordinator grants the lease to the *first*
    /// request it receives, written against the (wrong) assumption that
    /// requests arrive in client-id order — so a schedule in which the
    /// highest-id client's request arrives first hands the lease to a
    /// client the coordinator's bookkeeping believes cannot hold it.
    #[derive(Debug)]
    pub enum RacyNode {
        /// The coordinator: remembers who was granted the lease.
        Coordinator {
            /// First requester, once a request arrived.
            granted: Option<NodeId>,
        },
        /// A client: knows the coordinator's id.
        Client,
    }

    impl Protocol for RacyNode {
        type Message = Request;

        fn on_wake(&mut self, ctx: &mut Context<'_, Request>) {
            if matches!(self, RacyNode::Client) {
                ctx.send(NodeId::new(0), Request);
            }
        }

        fn on_message(&mut self, from: NodeId, _msg: Request, _ctx: &mut Context<'_, Request>) {
            if let RacyNode::Coordinator { granted } = self {
                granted.get_or_insert(from);
            }
        }
    }

    /// Builds the fixture network: one coordinator plus `clients` clients,
    /// each client initially knowing only the coordinator.
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0`.
    pub fn racy_network(clients: usize) -> Runner<RacyNode> {
        assert!(clients >= 1, "the race needs at least one client");
        let mut nodes = vec![RacyNode::Coordinator { granted: None }];
        let mut knowledge = vec![vec![]];
        for _ in 0..clients {
            nodes.push(RacyNode::Client);
            knowledge.push(vec![NodeId::new(0)]);
        }
        Runner::new(nodes, knowledge)
    }

    /// The fixture's property check: the lease must not sit with the
    /// highest-id client (the coordinator's bookkeeping assumes it never
    /// can). Returns a failure description when the planted bug fired.
    pub fn racy_violation(runner: &Runner<RacyNode>) -> Option<String> {
        let highest = NodeId::new(runner.len() - 1);
        match runner.node(NodeId::new(0)) {
            RacyNode::Coordinator {
                granted: Some(winner),
            } if *winner == highest => Some(format!(
                "lease granted to highest-id client {winner}: its request outran every other"
            )),
            _ => None,
        }
    }

    /// Runs the fixture under `sched` to quiescence (or a small step
    /// budget) and applies [`racy_violation`] — the `run_one` closure the
    /// explorer and shrinker tests use.
    ///
    /// # Errors
    ///
    /// Returns the violation description (or a livelock report) as `Err`.
    pub fn run_racy(clients: usize, sched: &mut dyn Scheduler) -> Result<(), String> {
        let mut runner = racy_network(clients);
        runner.enqueue_wake_all(sched);
        runner
            .run(sched, 10_000)
            .map_err(|e| format!("fixture livelocked: {e}"))?;
        match racy_violation(&runner) {
            Some(reason) => Err(reason),
            None => Ok(()),
        }
    }

    /// Messages of the *fragile* fixture: a hub's ping and a client's pong.
    #[derive(Clone, Debug)]
    pub enum PingPong {
        /// Hub → client.
        Ping,
        /// Client → hub.
        Pong,
    }

    impl Envelope for PingPong {
        fn kind(&self) -> &'static str {
            match self {
                PingPong::Ping => "ping",
                PingPong::Pong => "pong",
            }
        }
        fn for_each_carried_id(&self, _f: &mut dyn FnMut(NodeId)) {}
        fn aux_bits(&self) -> u64 {
            1
        }
    }

    /// One node of the planted *fault-dependent* bug network: node 0 is a
    /// hub that pings every client once on wake-up and counts pongs;
    /// clients pong every ping.
    ///
    /// The planted bug: the hub assumes the network is lossless and
    /// crash-free — with no faults every ping begets a pong and the
    /// invariant `pongs == clients` holds at quiescence under *any*
    /// schedule, but a single dropped message (or a delivery discarded by
    /// a crashed client) silences a client forever. This is the fixture
    /// the explorer's fault search exists to break.
    #[derive(Debug)]
    pub enum FragileNode {
        /// The hub: counts the pongs it has heard.
        Hub {
            /// Pongs received so far.
            pongs: usize,
            /// Clients it pinged.
            clients: usize,
        },
        /// A client: pongs every ping.
        Client,
    }

    impl Protocol for FragileNode {
        type Message = PingPong;

        fn on_wake(&mut self, ctx: &mut Context<'_, PingPong>) {
            if let FragileNode::Hub { clients, .. } = self {
                for c in 1..=*clients {
                    ctx.send(NodeId::new(c), PingPong::Ping);
                }
            }
        }

        fn on_message(&mut self, from: NodeId, msg: PingPong, ctx: &mut Context<'_, PingPong>) {
            match (self, msg) {
                (FragileNode::Client, PingPong::Ping) => ctx.send(from, PingPong::Pong),
                (FragileNode::Hub { pongs, .. }, PingPong::Pong) => *pongs += 1,
                _ => {}
            }
        }
    }

    /// Builds the fragile network: one hub plus `clients` clients, with
    /// mutual knowledge between the hub and each client.
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0`.
    pub fn fragile_network(clients: usize) -> Runner<FragileNode> {
        assert!(clients >= 1, "the fragile hub needs at least one client");
        let mut nodes = vec![FragileNode::Hub { pongs: 0, clients }];
        let mut knowledge = vec![(1..=clients).map(NodeId::new).collect::<Vec<_>>()];
        for _ in 0..clients {
            nodes.push(FragileNode::Client);
            knowledge.push(vec![NodeId::new(0)]);
        }
        Runner::new(nodes, knowledge)
    }

    /// Runs the fragile fixture under `sched` and checks its (fault-naive)
    /// invariant. A violation is only declared against a *complete* state
    /// — hub awake, no messages in flight — so schedule shrinking cannot
    /// fake a failure by merely truncating deliveries.
    ///
    /// # Errors
    ///
    /// Returns the violation description (or a livelock report) as `Err`.
    pub fn run_fragile(clients: usize, sched: &mut dyn Scheduler) -> Result<(), String> {
        let mut runner = fragile_network(clients);
        runner.enqueue_wake_all(sched);
        runner
            .run(sched, 10_000)
            .map_err(|e| format!("fixture livelocked: {e}"))?;
        if !runner.links_empty() || !runner.is_awake(NodeId::new(0)) {
            return Ok(());
        }
        match runner.node(NodeId::new(0)) {
            FragileNode::Hub { pongs, clients } if pongs < clients => Err(format!(
                "fragile hub heard only {pongs} of {clients} pongs: a fault silenced a client"
            )),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ReplayScheduler;
    use crate::FifoScheduler;

    #[test]
    fn fixture_is_clean_under_fifo() {
        let mut sched = FifoScheduler::new();
        assert!(fixtures::run_racy(3, &mut sched).is_ok());
    }

    #[test]
    fn dfs_scheduler_degenerates_to_fifo_beyond_prefix() {
        let mut s = DfsScheduler::new(vec![], 2);
        for i in 0..4 {
            s.note_wake(NodeId::new(i));
        }
        for i in 0..4 {
            assert_eq!(s.choose(), Some(Choice::Wake(NodeId::new(i))));
        }
        assert_eq!(s.branch_counts(), &[4, 3]);
    }

    #[test]
    fn dfs_scheduler_follows_and_clamps_the_prefix() {
        let mut s = DfsScheduler::new(vec![2, 99], 4);
        for i in 0..3 {
            s.note_wake(NodeId::new(i));
        }
        assert_eq!(s.choose(), Some(Choice::Wake(NodeId::new(2))));
        // Index 99 clamps to the last pending event.
        assert_eq!(s.choose(), Some(Choice::Wake(NodeId::new(1))));
        assert_eq!(s.choose(), Some(Choice::Wake(NodeId::new(0))));
    }

    #[test]
    fn random_walk_finds_the_planted_race() {
        let config = ExploreConfig {
            random_walks: 64,
            dfs_budget: 0,
            dfs_depth: 0,
            seed: 0,
            fault: None,
        };
        let report = explore(&config, |sched| fixtures::run_racy(4, sched));
        let failure = report.failure.expect("walk should find the race");
        assert!(matches!(failure.origin, Origin::RandomWalk { .. }));
        assert!(failure.reason.contains("highest-id client"));
        assert_eq!(failure.schedule.meta("reason"), Some(failure.reason.as_str()));
    }

    #[test]
    fn dfs_alone_finds_the_planted_race() {
        let config = ExploreConfig {
            random_walks: 0,
            dfs_budget: 128,
            dfs_depth: 4,
            seed: 0,
            fault: None,
        };
        let report = explore(&config, |sched| fixtures::run_racy(2, sched));
        let failure = report.failure.expect("dfs should find the race");
        assert!(matches!(failure.origin, Origin::Dfs { .. }));
    }

    #[test]
    fn found_schedules_replay_to_the_same_failure() {
        let config = ExploreConfig::default();
        let report = explore(&config, |sched| fixtures::run_racy(4, sched));
        let failure = report.failure.expect("should find the race");
        let mut replay = ReplayScheduler::strict(&failure.schedule);
        let err = fixtures::run_racy(4, &mut replay).unwrap_err();
        assert_eq!(err, failure.reason);
        assert_eq!(replay.leftover(), 0, "recorded run was complete");
    }

    #[test]
    fn exploration_respects_its_budget_and_counts_runs() {
        let config = ExploreConfig {
            random_walks: 3,
            dfs_budget: 5,
            dfs_depth: 3,
            seed: 9,
            fault: None,
        };
        let report = explore(&config, |sched| {
            // Never fails: drain the schedule against a trivial system.
            let mut r = fixtures::racy_network(2);
            r.enqueue_wake_all(sched);
            r.run(sched, 1_000).map_err(|e| e.to_string())?;
            Ok(())
        });
        assert!(report.failure.is_none());
        assert_eq!(report.random_walks, 3);
        assert!(report.dfs_runs <= 5);
        assert_eq!(report.runs, report.random_walks + report.dfs_runs);
    }

    #[test]
    fn fragile_fixture_is_clean_without_faults() {
        // Even a full exploration finds nothing: the fixture only breaks
        // when a fault silences a client.
        let report = explore(&ExploreConfig::default(), |sched| {
            fixtures::run_fragile(3, sched)
        });
        assert!(report.failure.is_none());
    }

    #[test]
    fn fault_search_finds_and_shrinks_the_planted_fragile_bug() {
        let config = ExploreConfig {
            random_walks: 64,
            dfs_budget: 0,
            dfs_depth: 0,
            seed: 0,
            fault: Some(FaultPlan::new(1).with_drop(0.25)),
        };
        let report = explore(&config, |sched| fixtures::run_fragile(1, sched));
        let failure = report.failure.expect("fault search should silence the client");
        assert!(failure.reason.contains("pongs"));

        // Strict replay without any fault machinery — the injected faults
        // are ordinary recorded choices.
        let mut replay = ReplayScheduler::strict(&failure.schedule);
        let err = fixtures::run_fragile(1, &mut replay).unwrap_err();
        assert_eq!(err, failure.reason);

        // The shrinker minimizes it to the essence: the hub's wake plus the
        // fault that silences its client (a dropped ping, or a delivered
        // ping whose pong is dropped).
        let result = crate::shrink::shrink(&failure.schedule, |sched| {
            fixtures::run_fragile(1, sched)
        });
        assert!(
            (2..=3).contains(&result.schedule.len()),
            "expected a 2-3 choice witness, got:\n{}",
            result.schedule.to_text()
        );
        let mut replay = ReplayScheduler::strict(&result.schedule);
        assert_eq!(
            fixtures::run_fragile(1, &mut replay).unwrap_err(),
            result.reason
        );
    }

    #[test]
    fn dfs_enumerates_distinct_interleavings() {
        // Every DFS run on a benign system produces a distinct choice
        // sequence: the prefix enumeration never repeats a decision path.
        let mut seen: Vec<Vec<Choice>> = Vec::new();
        let config = ExploreConfig {
            random_walks: 0,
            dfs_budget: 40,
            dfs_depth: 3,
            seed: 0,
            fault: None,
        };
        let report = explore(&config, |sched| {
            let mut recorder = RecordingScheduler::new(&mut *sched);
            let mut r = fixtures::racy_network(2);
            r.enqueue_wake_all(&mut recorder);
            r.run(&mut recorder, 1_000).map_err(|e| e.to_string())?;
            seen.push(recorder.recorded().to_vec());
            Ok(())
        });
        assert!(report.failure.is_none());
        assert!(seen.len() > 5, "expected a real enumeration");
        for a in 0..seen.len() {
            for b in a + 1..seen.len() {
                assert_ne!(seen[a], seen[b], "schedules {a} and {b} coincide");
            }
        }
    }
}
